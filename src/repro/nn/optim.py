"""Optimisers for the NumPy NN substrate.

The paper trains every client with **Adam** (learning rate ``1e-4``, no
weight decay); plain SGD with optional momentum is also provided for the
weight-divergence analysis of §4.2, which is stated for SGD-style updates.
"""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the zero_grad helper."""

    def __init__(self, model: Module):
        self.model = model
        self.params: list[Parameter] = model.parameters()
        if not self.params:
            raise ValueError("model has no parameters to optimise")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, model: Module, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(model)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.value -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) — the paper's client-side optimiser."""

    def __init__(self, model: Module, lr: float = 1e-4, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(model)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1 - self.beta1**self._t
        bias2 = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
