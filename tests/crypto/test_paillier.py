"""Unit and property-based tests for the Paillier cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=128, rng=random.Random(2024))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


class TestKeyGeneration:
    def test_key_size_matches_request(self, pk):
        assert pk.key_size == 128

    def test_keypair_unpacking(self):
        kp = generate_keypair(key_size=64, rng=random.Random(1))
        public, private = kp
        assert public is kp.public_key
        assert private is kp.private_key

    def test_private_key_requires_matching_factors(self, pk):
        with pytest.raises(ValueError):
            PaillierPrivateKey(pk, 3, 5)

    def test_equal_factors_rejected(self):
        kp = generate_keypair(key_size=64, rng=random.Random(3))
        p = kp.private_key.p
        with pytest.raises(ValueError):
            PaillierPrivateKey(PaillierPublicKey(p * p), p, p)

    def test_tiny_key_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(key_size=8)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError):
            PaillierPublicKey(2)

    def test_public_key_equality_and_hash(self, pk):
        clone = PaillierPublicKey(pk.n)
        assert clone == pk
        assert hash(clone) == hash(pk)

    def test_reproducible_keygen_with_seed(self):
        a = generate_keypair(key_size=64, rng=random.Random(99))
        b = generate_keypair(key_size=64, rng=random.Random(99))
        assert a.public_key.n == b.public_key.n


class TestEncryptDecrypt:
    @pytest.mark.parametrize("m", [0, 1, 2, 255, 10_000, 123456789])
    def test_roundtrip_small_values(self, pk, sk, m):
        assert sk.raw_decrypt(pk.raw_encrypt(m)) == m

    def test_roundtrip_near_modulus(self, pk, sk):
        m = pk.n - 1
        assert sk.raw_decrypt(pk.raw_encrypt(m)) == m

    def test_ciphertext_is_randomised(self, pk):
        assert pk.raw_encrypt(42) != pk.raw_encrypt(42)

    def test_fixed_r_is_deterministic(self, pk):
        assert pk.raw_encrypt(42, r_value=12345) == pk.raw_encrypt(42, r_value=12345)

    def test_signed_decrypt_maps_upper_half_to_negative(self, pk, sk):
        c = pk.raw_encrypt(-5 % pk.n)
        assert sk.decrypt_signed(c) == -5

    def test_non_int_plaintext_rejected(self, pk):
        with pytest.raises(TypeError):
            pk.raw_encrypt(1.5)

    def test_non_int_ciphertext_rejected(self, sk):
        with pytest.raises(TypeError):
            sk.raw_decrypt("junk")

    def test_ciphertext_bytes_positive(self, pk):
        assert pk.ciphertext_bytes() == (pk.nsquare.bit_length() + 7) // 8


class TestHomomorphism:
    def test_add_two_ciphertexts(self, pk, sk):
        c = pk.raw_add(pk.raw_encrypt(17), pk.raw_encrypt(25))
        assert sk.raw_decrypt(c) == 42

    def test_add_plaintext(self, pk, sk):
        c = pk.raw_add_plain(pk.raw_encrypt(17), 25)
        assert sk.raw_decrypt(c) == 42

    def test_scalar_multiplication(self, pk, sk):
        c = pk.raw_mul(pk.raw_encrypt(7), 6)
        assert sk.raw_decrypt(c) == 42

    def test_sum_of_many(self, pk, sk):
        values = list(range(50))
        total = pk.raw_encrypt(0)
        for v in values:
            total = pk.raw_add(total, pk.raw_encrypt(v))
        assert sk.raw_decrypt(total) == sum(values)

    def test_addition_wraps_modulo_n(self, pk, sk):
        c = pk.raw_add(pk.raw_encrypt(pk.n - 1), pk.raw_encrypt(2))
        assert sk.raw_decrypt(c) == 1


@settings(max_examples=scaled_max_examples(25), deadline=None)
@given(a=st.integers(min_value=0, max_value=10**12),
       b=st.integers(min_value=0, max_value=10**12))
def test_property_additive_homomorphism(a, b):
    """Dec(Enc(a) ⊕ Enc(b)) == a + b for arbitrary bounded integers."""
    kp = _module_keypair()
    pk, sk = kp.public_key, kp.private_key
    c = pk.raw_add(pk.raw_encrypt(a), pk.raw_encrypt(b))
    assert sk.raw_decrypt(c) == a + b


@settings(max_examples=scaled_max_examples(25), deadline=None)
@given(a=st.integers(min_value=0, max_value=10**9),
       k=st.integers(min_value=0, max_value=10**4))
def test_property_scalar_homomorphism(a, k):
    """Dec(Enc(a)^k) == k * a for arbitrary bounded integers."""
    kp = _module_keypair()
    pk, sk = kp.public_key, kp.private_key
    assert sk.raw_decrypt(pk.raw_mul(pk.raw_encrypt(a), k)) == a * k


_CACHED_KEYPAIR = None


def _module_keypair():
    global _CACHED_KEYPAIR
    if _CACHED_KEYPAIR is None:
        _CACHED_KEYPAIR = generate_keypair(key_size=128, rng=random.Random(7))
    return _CACHED_KEYPAIR
