"""Module and parameter plumbing for the NumPy neural-network substrate.

This is the reproduction's stand-in for ``torch.nn.Module``.  The federated
stack needs four things from a model:

1. forward / backward passes (layer-local, no autograd graph needed),
2. an ordered collection of named parameters and their gradients,
3. ``state_dict`` / ``load_state_dict`` so the server can ship weights to
   clients and aggregate the returned updates, and
4. flatten / unflatten of all parameters into one vector, used by the
   weight-divergence analysis (eq. (2)) and by tests.

Every layer stores its parameters as :class:`Parameter` objects (a value
array plus a gradient array of the same shape).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor: value plus accumulated gradient."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class of all layers and models.

    Subclasses implement :meth:`forward` and :meth:`backward`; parameters are
    discovered automatically from instance attributes (both direct
    :class:`Parameter` attributes and nested :class:`Module` attributes or
    lists of modules).
    """

    training: bool = True

    # -- forward / backward ---------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- training mode ---------------------------------------------------------

    def train(self) -> "Module":
        """Put the module (recursively) into training mode."""
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) into evaluation mode."""
        self.training = False
        for child in self.children():
            child.eval()
        return self

    # -- parameter discovery ----------------------------------------------------

    def children(self) -> Iterator["Module"]:
        """Direct sub-modules (attributes and lists/tuples of modules)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs in a deterministic order."""
        for attr, value in self.__dict__.items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module (in named order)."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for p in self.parameters():
            p.zero_grad()

    # -- state dict / flattening ---------------------------------------------------

    def state_dict(self, copy: bool = True) -> dict[str, np.ndarray]:
        """Every parameter value keyed by its name.

        With ``copy=False`` the returned arrays are *read-only views* of the
        live parameters — no allocation or memcpy.  Safe whenever the dict is
        consumed before the module trains again (e.g. shipping the global
        state to in-process workers, which copy on load anyway).
        """
        if copy:
            return {name: p.value.copy() for name, p in self.named_parameters()}
        state = {}
        for name, p in self.named_parameters():
            view = p.value.view()
            view.flags.writeable = False
            state[name] = view
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values (shapes must match exactly)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {p.value.shape}"
                )
            p.value = value.copy()

    def flatten_parameters(self) -> np.ndarray:
        """Concatenate all parameter values into a single 1-D vector."""
        params = self.parameters()
        if not params:
            return np.empty(0)
        return np.concatenate([p.value.ravel() for p in params])

    def load_flat_parameters(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`flatten_parameters`."""
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(f"expected {expected} values, got {flat.size}")
        offset = 0
        for p in self.parameters():
            p.value = flat[offset : offset + p.size].reshape(p.shape).copy()
            offset += p.size

    def flatten_gradients(self) -> np.ndarray:
        """Concatenate all parameter gradients into a single 1-D vector."""
        params = self.parameters()
        if not params:
            return np.empty(0)
        return np.concatenate([p.grad.ravel() for p in params])

    # -- misc -----------------------------------------------------------------------

    def clone(self) -> "Module":
        """A deep copy of this module (used to fork the global model per client)."""
        import copy

        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_parameters()})"


def seeded_rng(seed: Optional[int]) -> np.random.Generator:
    """Shared helper so every layer seeds its initialiser the same way."""
    return np.random.default_rng(seed)
