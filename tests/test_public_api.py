"""Tests of the top-level public API (`import repro`)."""

import numpy as np
import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.crypto
        import repro.data
        import repro.federated
        import repro.nn

        for module in (repro.analysis, repro.core, repro.crypto, repro.data,
                       repro.federated, repro.nn):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestQuickFederation:
    def test_mnist_flavour(self):
        partition, generator = repro.quick_federation(n_clients=30, rho=5.0,
                                                      emd_avg=1.0, seed=0)
        assert partition.n_clients == 30
        assert generator.num_classes == 10
        assert generator.image_shape[0] == 1

    def test_cifar_flavour(self):
        _, generator = repro.quick_federation(n_clients=10, dataset="cifar", seed=0)
        assert generator.image_shape[0] == 3

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            repro.quick_federation(n_clients=10, dataset="imagenet")

    def test_docstring_quickstart_flow(self):
        # the flow shown in the package docstring must actually work
        partition, _ = repro.quick_federation(n_clients=50, rho=10.0, emd_avg=1.5, seed=0)
        config = repro.DubheConfig(num_classes=10, participants_per_round=10,
                                   thresholds={1: 0.7, 2: 0.1, 10: 0.0})
        selector = repro.DubheSelector(partition.client_distributions(), config, seed=0)
        selected = selector.select(round_index=0)
        assert len(selected) == 10
        assert len(np.unique(selected)) == 10
