"""Tests for the key-agent role of the secure registration protocol."""

import random

import numpy as np
import pytest

from repro.crypto.keyagent import AgentStats, KeyAgent
from repro.crypto.vector import EncryptedVector


@pytest.fixture()
def agent():
    return KeyAgent(key_size=128, rng=random.Random(42))


class TestKeyLifecycle:
    def test_lazy_keypair(self, agent):
        kp = agent.keypair
        assert kp.public_key.key_size == 128
        assert agent.stats.keypairs_generated == 1

    def test_new_round_rotates_key(self, agent):
        first = agent.new_round().public_key.n
        second = agent.new_round().public_key.n
        assert first != second
        assert agent.stats.keypairs_generated == 2

    def test_dispatch_counts(self, agent):
        agent.dispatch_public_key(100)
        agent.dispatch_private_key(100)
        assert agent.stats.key_dispatches == 200

    def test_negative_dispatch_rejected(self, agent):
        with pytest.raises(ValueError):
            agent.dispatch_public_key(-1)

    def test_stats_reset(self, agent):
        agent.dispatch_public_key(5)
        agent.stats.reset()
        assert agent.stats == AgentStats()


class TestDecryptionServices:
    def test_decrypt_vector_counts_and_times(self, agent):
        pk = agent.dispatch_public_key(1)
        vec = EncryptedVector.encrypt(pk, [0.25, 0.75])
        out = agent.decrypt_vector(vec)
        np.testing.assert_allclose(out, [0.25, 0.75], atol=1e-9)
        assert agent.stats.decryptions == 1
        assert agent.stats.decrypt_seconds > 0

    def test_score_population_uniform_is_zero(self, agent):
        pk = agent.dispatch_public_key(1)
        # two clients with mirrored distributions -> aggregated sum is uniform
        a = EncryptedVector.encrypt(pk, [0.8, 0.2])
        b = EncryptedVector.encrypt(pk, [0.2, 0.8])
        score = agent.score_population(a + b, np.array([0.5, 0.5]))
        assert score == pytest.approx(0.0, abs=1e-8)

    def test_score_population_skewed_is_positive(self, agent):
        pk = agent.dispatch_public_key(1)
        a = EncryptedVector.encrypt(pk, [1.0, 0.0])
        score = agent.score_population(a, np.array([0.5, 0.5]))
        assert score == pytest.approx(1.0, abs=1e-8)

    def test_score_population_empty_aggregate(self, agent):
        pk = agent.dispatch_public_key(1)
        zero = EncryptedVector.encrypt(pk, [0.0, 0.0])
        score = agent.score_population(zero, np.array([0.5, 0.5]))
        assert score > 1.0
