"""The unified front door: ``repro.api.Session`` drives every kind of run.

One builder chain replaces the three historical entry points (direct
:class:`~repro.federated.FederatedSimulation` construction,
:func:`repro.scenarios.run_scenario`, and hand-threaded ledger config)::

    from repro.api import Session

    result = (Session(config)
              .with_recipe("repro.ledger.recipes:quick_mlp", n_clients=16)
              .with_scenario(spec)
              .with_ledger("runs.db")
              .run(rounds=20))

See :mod:`repro.api.session` for the migration table and
``docs/session.md`` for the narrative guide.
"""

from .session import Session, SessionResult

__all__ = ["Session", "SessionResult"]
