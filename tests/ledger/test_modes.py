"""Tests of the three ledger run modes (repro/ledger/modes.py)."""

import dataclasses

import numpy as np
import pytest

from repro.federated.history import RoundRecord
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.ledger import (LedgerError, LedgerMismatchError,
                          LedgerVerificationError, RoundDiff, RunLedger,
                          RunRecipe, VerifyReport, diff_records)
from repro.scenarios import ScenarioSpec
from repro.scenarios.spec import DropoutSpec, StragglerSpec

RECIPE = RunRecipe("repro.ledger.recipes:quick_mlp",
                   {"n_clients": 12, "participants": 3, "seed": 0})


@pytest.fixture
def ledger_path(tmp_path):
    return str(tmp_path / "runs.db")


def build(ledger_path, run_mode="live", recipe=RECIPE, rounds=3, **over):
    kwargs = dict(rounds=rounds, seed=0, ledger_path=ledger_path,
                  run_mode=run_mode)
    kwargs.update(over)
    return FederatedSimulation(config=FederatedConfig(**kwargs),
                               recipe=recipe, **recipe.build())


def record_run(ledger_path, rounds=3, stop_after=None, **over):
    with build(ledger_path, rounds=rounds, **over) as sim:
        history = sim.run(stop_after)
        return sim.ledger_session.run_id, history


class TestConfigValidation:
    def test_resume_requires_ledger_path(self):
        with pytest.raises(ValueError, match="requires ledger_path"):
            FederatedConfig(run_mode="resume")

    def test_replay_source_invalid_with_live(self):
        with pytest.raises(ValueError, match="invalid with run_mode='live'"):
            FederatedConfig(ledger_path="x.db", replay_source_run_id="abc")

    def test_unknown_run_mode(self):
        with pytest.raises(ValueError, match="run mode"):
            FederatedConfig(run_mode="replay", ledger_path="x.db")


class TestLiveMode:
    def test_every_round_committed(self, ledger_path):
        run_id, history = record_run(ledger_path)
        with RunLedger(ledger_path, create=False) as ledger:
            info = ledger.run(run_id)
            assert info.is_complete()
            assert info.rounds_committed == len(history) == 3
            rounds = ledger.rounds(run_id)
        for payload, record in zip(rounds, history.records):
            rebuilt = RoundRecord.from_dict(payload)
            assert rebuilt.selected_clients == record.selected_clients
            assert rebuilt.test_accuracy == record.test_accuracy

    def test_run_row_carries_context(self, ledger_path):
        run_id, _ = record_run(ledger_path, run_name="ctx")
        with RunLedger(ledger_path, create=False) as ledger:
            info = ledger.run(run_id)
        assert info.name == "ctx"
        assert info.config["rounds"] == 3
        assert info.seeds["config_seed"] == 0
        assert info.recipe == RECIPE.to_dict()
        assert info.bench["cpu_count"] >= 1
        assert info.report["rounds"] == 3

    def test_checkpoint_matches_server_state(self, ledger_path):
        with build(ledger_path) as sim:
            sim.run()
            run_id = sim.ledger_session.run_id
            final_state = sim.server.global_state()
        with RunLedger(ledger_path, create=False) as ledger:
            index, state = ledger.checkpoint(run_id)
        assert index == 2
        for key in final_state:
            np.testing.assert_array_equal(state[key], final_state[key])

    def test_without_ledger_path_no_session(self):
        with FederatedSimulation(config=FederatedConfig(rounds=1, seed=0),
                                 **RECIPE.build()) as sim:
            assert sim.ledger_session is None
            sim.run()


class TestResumeMode:
    def test_resume_reproduces_uninterrupted_run(self, ledger_path):
        _, uninterrupted = record_run(ledger_path, rounds=5)
        partial_id, _ = record_run(ledger_path, rounds=5, stop_after=2)
        with build(ledger_path, "resume", rounds=5,
                   replay_source_run_id=partial_id) as sim:
            resumed = sim.run()
            final_state = sim.server.global_state()
        np.testing.assert_array_equal(resumed.accuracies(),
                                      uninterrupted.accuracies())
        assert len(resumed) == 5
        with RunLedger(ledger_path, create=False) as ledger:
            assert ledger.run(partial_id).rounds_committed == 5
            assert ledger.run(partial_id).is_complete()
        # and the resumed run's checkpoint equals its in-memory final state
        with RunLedger(ledger_path, create=False) as ledger:
            _, state = ledger.checkpoint(partial_id)
        for key in final_state:
            np.testing.assert_array_equal(state[key], final_state[key])

    def test_resume_refuses_config_drift(self, ledger_path):
        partial_id, _ = record_run(ledger_path, stop_after=2)
        with pytest.raises(LedgerMismatchError, match="seed"):
            build(ledger_path, "resume", replay_source_run_id=partial_id,
                  seed=1)

    def test_resume_refuses_selector_drift(self, ledger_path):
        partial_id, _ = record_run(ledger_path, stop_after=2)
        other = RunRecipe("repro.ledger.recipes:quick_mlp",
                          dict(RECIPE.kwargs, selector="greedy"))
        with pytest.raises(LedgerMismatchError, match="selector"):
            build(ledger_path, "resume", recipe=other,
                  replay_source_run_id=partial_id)

    def test_resume_completed_run_is_a_no_op(self, ledger_path):
        run_id, history = record_run(ledger_path)
        with build(ledger_path, "resume",
                   replay_source_run_id=run_id) as sim:
            resumed = sim.run()
        np.testing.assert_array_equal(resumed.accuracies(),
                                      history.accuracies())
        with RunLedger(ledger_path, create=False) as ledger:
            assert ledger.run(run_id).rounds_committed == 3

    def test_resume_defaults_to_latest_run(self, ledger_path):
        record_run(ledger_path)  # an older, completed run
        partial_id, _ = record_run(ledger_path, stop_after=1)
        with build(ledger_path, "resume") as sim:
            sim.run()
            assert sim.ledger_session.run_id == partial_id


class TestVerifyMode:
    def test_verify_ok(self, ledger_path):
        run_id, _ = record_run(ledger_path)
        with build(ledger_path, "verify",
                   replay_source_run_id=run_id) as sim:
            sim.run()
            report = sim.ledger_session.report
        assert report.ok()
        assert report.rounds_checked == 3
        assert report.run_id == run_id

    def test_verify_across_backends(self, ledger_path):
        run_id, _ = record_run(ledger_path)
        for executor_mode in ("vectorized", "parallel"):
            over = ({"num_workers": 2} if executor_mode == "parallel" else {})
            with build(ledger_path, "verify", replay_source_run_id=run_id,
                       executor_mode=executor_mode, **over) as sim:
                sim.run()
                assert sim.ledger_session.report.ok(), executor_mode

    def test_verify_detects_tampered_record(self, ledger_path):
        import json
        import sqlite3

        run_id, _ = record_run(ledger_path)
        conn = sqlite3.connect(ledger_path)
        row = conn.execute(
            "SELECT record_json FROM rounds WHERE run_id = ? AND "
            "round_index = 1", (run_id,)).fetchone()
        payload = json.loads(row[0])
        payload["test_accuracy"] = 0.999
        conn.execute(
            "UPDATE rounds SET record_json = ? WHERE run_id = ? AND "
            "round_index = 1", (json.dumps(payload), run_id))
        conn.commit()
        conn.close()
        with build(ledger_path, "verify",
                   replay_source_run_id=run_id) as sim:
            with pytest.raises(LedgerVerificationError) as excinfo:
                sim.run()
        report = excinfo.value.report
        assert not report.ok()
        assert [m.field for m in report.mismatches] == ["test_accuracy"]
        assert report.mismatches[0].round_index == 1
        assert "test_accuracy" in report.format()

    def test_verify_empty_run_refused(self, ledger_path):
        from repro.ledger import config_to_dict

        recorded = config_to_dict(FederatedConfig(rounds=3, seed=0))
        with RunLedger(ledger_path) as ledger:
            ledger.begin_run("empty", recorded, {}, 3)
        with pytest.raises(LedgerError, match="no committed rounds"):
            build(ledger_path, "verify")

    def test_verify_never_writes(self, ledger_path):
        run_id, _ = record_run(ledger_path)
        with RunLedger(ledger_path, create=False) as ledger:
            before = ledger.rounds(run_id)
        with build(ledger_path, "verify",
                   replay_source_run_id=run_id) as sim:
            sim.run()
            sim.ledger_session.attach_report({"x": 1}, name="ignored")
        with RunLedger(ledger_path, create=False) as ledger:
            assert ledger.rounds(run_id) == before
            assert ledger.run(run_id).name != "ignored"


class TestScenarioRuns:
    SPEC = ScenarioSpec(dropouts=DropoutSpec(probability=0.25),
                        stragglers=StragglerSpec(probability=0.3,
                                                 mean_delay=1.0),
                        seed=7)

    def test_scenario_resume_and_verify(self, ledger_path):
        _, uninterrupted = record_run(ledger_path, rounds=5,
                                      scenario=self.SPEC)
        partial_id, _ = record_run(ledger_path, rounds=5, stop_after=3,
                                   scenario=self.SPEC)
        with build(ledger_path, "resume", rounds=5, scenario=self.SPEC,
                   replay_source_run_id=partial_id) as sim:
            resumed = sim.run()
        np.testing.assert_array_equal(resumed.accuracies(),
                                      uninterrupted.accuracies())
        assert resumed.failure_totals() == uninterrupted.failure_totals()
        with build(ledger_path, "verify", rounds=5, scenario=self.SPEC,
                   replay_source_run_id=partial_id) as sim:
            sim.run()
            assert sim.ledger_session.report.ok()

    def test_scenario_spec_recorded(self, ledger_path):
        run_id, _ = record_run(ledger_path, scenario=self.SPEC)
        with RunLedger(ledger_path, create=False) as ledger:
            info = ledger.run(run_id)
        assert info.scenario["seed"] == 7
        assert info.config["scenario"]["dropouts"]["probability"] == 0.25

    def test_run_scenario_attaches_report(self, ledger_path):
        from repro.scenarios.report import run_scenario

        with build(ledger_path, scenario=self.SPEC,
                   run_name="scenario") as sim:
            run_scenario(sim, name="dropout-study")
            run_id = sim.ledger_session.run_id
        with RunLedger(ledger_path, create=False) as ledger:
            info = ledger.run(run_id)
        assert info.name == "dropout-study"
        assert "final_accuracy" in info.report


class TestDiffRecords:
    def make(self, **over):
        base = dict(round_index=0, selected_clients=(1, 2),
                    population_distribution=np.array([0.5, 0.5]),
                    population_bias=0.5, test_accuracy=0.8)
        base.update(over)
        return RoundRecord(**base)

    def test_identical_records_no_diff(self):
        assert diff_records(self.make(), self.make()) == []

    def test_fallback_reason_not_compared(self):
        assert diff_records(self.make(),
                            self.make(fallback_reason="degraded")) == []

    def test_tolerance_respected(self):
        within = self.make(test_accuracy=0.8 + 1e-12)
        beyond = self.make(test_accuracy=0.8 + 1e-6)
        assert diff_records(self.make(), within) == []
        diffs = diff_records(self.make(), beyond)
        assert [d.field for d in diffs] == ["test_accuracy"]

    def test_nan_equals_nan(self):
        left = self.make(actual_population_bias=float("nan"))
        right = self.make(actual_population_bias=float("nan"))
        assert diff_records(left, right) == []
        asymmetric = diff_records(left, self.make(actual_population_bias=0.1))
        assert [d.field for d in asymmetric] == ["actual_population_bias"]

    def test_selection_mismatch_reported(self):
        diffs = diff_records(self.make(), self.make(selected_clients=(1, 3)))
        assert [d.field for d in diffs] == ["selected_clients"]
        assert "recorded (1, 2)" in diffs[0].format()

    def test_distribution_mismatch_reported(self):
        other = self.make(population_distribution=np.array([0.4, 0.6]))
        diffs = diff_records(self.make(), other)
        assert [d.field for d in diffs] == ["population_distribution"]

    def test_report_to_dict(self):
        diff = RoundDiff(1, "test_accuracy", 0.5, 0.6)
        report = VerifyReport("run", 3, (diff,), 1e-10)
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["mismatches"][0]["round_index"] == 1
        assert "FAILED" in report.format()
