"""§6.4 — encryption and communication overhead of Dubhe.

Paper numbers (Paillier with 2048-bit keys, pure-Python implementation):

* registries of length 56 / 53 → plaintext 0.47–0.49 KB, ciphertext
  29.6–31.28 KB, encryption ≈ 6.9 s, decryption ≈ 1.9 s;
* the multi-time distribution vector (C = 52) → plaintext 0.68 KB,
  ciphertext 29.1 KB, encryption ≈ 6.8 s, decryption ≈ 1.7 s;
* communication: ``K`` check-ins per round as in any FL system, plus ``N``
  registry messages per re-registration and ``≈ H·K`` messages per round for
  multi-time client determination.

The registry/ciphertext sizes depend only on the key size and the vector
length, so they are reproduced exactly.  Timing depends on the machine and
the bignum implementation; this benchmark measures the real encrypt/decrypt
cost of this repository's Paillier at several key sizes (including the
paper's 2048 bits) so the scaling — seconds per registry, negligible next to
hours of training — is visible.
"""

from __future__ import annotations

import pytest

from helpers import print_table
from repro.core import communication_overhead, measure_encryption_overhead

REGISTRY_LENGTHS = (56, 53)
DISTRIBUTION_LENGTH = 52
KEY_SIZES = (256, 1024, 2048)


def paper_scale() -> dict:
    return {"key_size": 2048,
            "paper_registry": {"plaintext_kb": (0.47, 0.49), "ciphertext_kb": (29.6, 31.28),
                               "encrypt_s": 6.9, "decrypt_s": 1.9},
            "paper_distribution": {"plaintext_kb": 0.68, "ciphertext_kb": 29.1,
                                   "encrypt_s": 6.8, "decrypt_s": 1.7}}


@pytest.mark.benchmark(group="sec64")
def test_sec64_encryption_overhead(benchmark):
    """Registry / distribution-vector encryption cost across key sizes."""

    def experiment():
        reports = []
        for key_size in KEY_SIZES:
            for length in (*REGISTRY_LENGTHS, DISTRIBUTION_LENGTH):
                reports.append(measure_encryption_overhead(
                    vector_length=length, key_size=key_size, trials=1, rng_seed=0,
                ))
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("§6.4: measured encryption overhead", [r.as_row() for r in reports])

    by_key = {k: [r for r in reports if r.key_size == k] for k in KEY_SIZES}

    # ciphertext expansion: tens of KB at 2048 bits for a length-56 registry,
    # matching the paper's 29.6-31.3 KB
    paper_scale_report = next(r for r in by_key[2048] if r.vector_length == 56)
    assert 25.0 <= paper_scale_report.ciphertext_kb <= 40.0
    assert 0.3 <= paper_scale_report.plaintext_kb <= 0.7
    assert paper_scale_report.expansion_factor > 25

    # cost grows with the key size (both bytes and time)
    for length in (56,):
        small = next(r for r in by_key[256] if r.vector_length == length)
        large = next(r for r in by_key[2048] if r.vector_length == length)
        assert large.ciphertext_bytes > small.ciphertext_bytes
        assert large.encrypt_seconds > small.encrypt_seconds

    # even at 2048 bits the per-registry cost is seconds, not minutes —
    # negligible next to a training round (the paper's argument)
    assert paper_scale_report.encrypt_seconds < 60
    assert paper_scale_report.decrypt_seconds < 60


@pytest.mark.benchmark(group="sec64")
def test_sec64_communication_overhead(benchmark):
    """Per-round message counts for the paper's two federation sizes."""

    def experiment():
        rows = []
        for n_clients, k in ((1000, 20), (8962, 20)):
            for h, multitime in ((1, False), (10, True)):
                report = communication_overhead(
                    n_clients=n_clients, participants_per_round=k,
                    tentative_selections=h, reregistration=True,
                    multitime_determination=multitime,
                )
                rows.append({
                    "N": n_clients, "K": k, "H": h,
                    "baseline": report.baseline_messages,
                    "registration": report.registration_messages,
                    "multi_time": report.multitime_messages,
                    "total": report.dubhe_total,
                })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("§6.4: communication messages per round", rows)

    # registration costs exactly N messages; multi-time costs H*K
    for row in rows:
        assert row["registration"] == row["N"]
        assert row["multi_time"] in (0, row["H"] * row["K"])
        assert row["total"] == row["baseline"] + row["registration"] + row["multi_time"]
