"""Shared machinery for the reproduction benchmarks.

Every benchmark file regenerates one table or figure of the paper.  The
experiments all share the same skeleton — build a federation with a given
(ρ, EMD_avg), plug in a selector, either measure selection bias or run
federated training — so that skeleton lives here.

Scale note
----------
The paper trains ResNet18/CNNs on real MNIST/CIFAR10/FEMNIST for up to 1500
rounds on a GPU.  The benchmarks default to a reduced scale (documented in
each file and in EXPERIMENTS.md): fewer clients, fewer rounds, an MLP/compact
CNN on synthetic data.  The *shape* of each result — which method wins, how
the ordering changes with ρ, EMD_avg, K and H — is what the reproduction
checks.  ``paper_scale()`` in each benchmark file records the full-size
configuration for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import DubheConfig, DubheSelector, GreedySelector, RandomSelector
from repro.core.parameter_search import search_thresholds
from repro.data import EMDTargetPartitioner, half_normal_class_proportions, make_uniform_test_set
from repro.data.partition import ClientPartition
from repro.data.synthetic import SyntheticImageGenerator, make_synthetic_cifar, make_synthetic_mnist
from repro.federated import FederatedConfig, FederatedSimulation, LocalTrainingConfig, TrainingHistory
from repro.nn.models import MLP, CifarCNN

__all__ = [
    "BenchFederation",
    "build_federation",
    "make_selector",
    "settle_dubhe_config",
    "run_training",
    "print_table",
]

GROUP1_THRESHOLDS = {1: 0.7, 2: 0.1, 10: 0.0}   # the paper's searched optimum (Fig. 10)


@dataclass
class BenchFederation:
    """A federation plus everything the benchmarks need to train on it."""

    partition: ClientPartition
    generator: SyntheticImageGenerator
    distributions: np.ndarray
    name: str

    @property
    def num_classes(self) -> int:
        return self.partition.num_classes


def build_federation(dataset: str, rho: float, emd_avg: float, n_clients: int,
                     samples_per_client: int = 32, seed: int = 0) -> BenchFederation:
    """Build a ``<dataset>-<rho>/<emd>`` federation (the paper's naming scheme)."""
    global_dist = half_normal_class_proportions(10, rho)
    partition = EMDTargetPartitioner(
        n_clients=n_clients, samples_per_client=samples_per_client,
        emd_target=emd_avg, seed=seed,
    ).partition(global_dist)
    if dataset == "mnist":
        generator = make_synthetic_mnist(seed=seed)
    elif dataset == "cifar":
        generator = make_synthetic_cifar(seed=seed)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    return BenchFederation(
        partition=partition,
        generator=generator,
        distributions=partition.client_distributions(),
        name=f"{dataset.upper()}-{rho:g}/{emd_avg:g}",
    )


def settle_dubhe_config(distributions: np.ndarray, k: int, h: int = 1,
                        num_classes: int = 10, reference_set=(1, 2, 10),
                        thresholds: Optional[dict] = None, seed: int = 0) -> DubheConfig:
    """A settled DubheConfig: fixed thresholds if given, else parameter search."""
    if thresholds is None:
        unsettled = DubheConfig(num_classes=num_classes, reference_set=reference_set,
                                participants_per_round=k, tentative_selections=3, seed=seed)
        thresholds = search_thresholds(distributions, unsettled,
                                       sigma_grid=(0.1, 0.3, 0.5, 0.7), seed=seed).thresholds
    return DubheConfig(num_classes=num_classes, reference_set=reference_set,
                       thresholds=thresholds, participants_per_round=k,
                       tentative_selections=h, seed=seed)


def make_selector(name: str, fed: BenchFederation, k: int, h: int = 1,
                  thresholds: Optional[dict] = GROUP1_THRESHOLDS, seed: int = 0):
    """Instantiate one of the three strategies on a benchmark federation."""
    if name == "random":
        return RandomSelector(fed.distributions, k, seed=seed)
    if name == "greedy":
        return GreedySelector(fed.distributions, k, seed=seed)
    if name == "dubhe":
        config = settle_dubhe_config(fed.distributions, k, h=h,
                                     num_classes=fed.num_classes,
                                     thresholds=thresholds, seed=seed)
        return DubheSelector(fed.distributions, config, seed=seed)
    raise ValueError(f"unknown selector {name!r}")


def run_training(fed: BenchFederation, selector, rounds: int, k: int,
                 model: str = "mlp", eval_every: int = 1,
                 learning_rate: float = 3e-3, local_epochs: int = 1,
                 test_samples_per_class: int = 20, seed: int = 0) -> TrainingHistory:
    """Run a reduced-scale federated training and return its history."""
    test_set = make_uniform_test_set(fed.generator, samples_per_class=test_samples_per_class,
                                     seed=seed + 1)
    channels, image_size, _ = fed.generator.image_shape

    def model_factory():
        if model == "mlp":
            return MLP(fed.generator.flat_feature_dim(), fed.num_classes,
                       hidden=(32,), seed=seed + 11)
        if model == "cifar_cnn":
            return CifarCNN(channels, image_size, fed.num_classes,
                            channels=(8, 16, 16), hidden=32, seed=seed + 11)
        raise ValueError(f"unknown model {model!r}")

    sim = FederatedSimulation(
        partition=fed.partition,
        generator=fed.generator,
        model_factory=model_factory,
        selector=selector,
        test_set=test_set,
        config=FederatedConfig(
            rounds=rounds,
            eval_every=eval_every,
            local=LocalTrainingConfig(batch_size=8, local_epochs=local_epochs,
                                      learning_rate=learning_rate),
            seed=seed,
        ),
    )
    return sim.run()


def print_table(title: str, rows: list[dict]) -> None:
    """Print a list of dict rows as an aligned text table (benchmark output)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
