"""Learnable synthetic image-classification datasets.

The paper evaluates on MNIST and CIFAR10.  This environment has no network
access, so the reproduction uses procedurally generated datasets that keep
the two properties the experiments actually depend on:

1. a ``C``-class label space with a *learnable* class-conditional structure
   (so accuracy climbs during training and degrades when the population
   distribution is biased), and
2. a tunable difficulty so that the "MNIST-like" task converges quickly and
   the "CIFAR-like" task is substantially harder (more inter-class overlap
   and noise), mirroring the relative behaviour of the real datasets.

Each class ``c`` owns a random smooth prototype image; samples are the
prototype plus per-sample deformation (random affine-ish jitter implemented
as shifted blends) and pixel noise.  Class overlap is injected by mixing a
shared background component into every prototype.

The generator object is kept around by the experiment harness so that a
class-balanced test set (the paper's uniform test distribution) and the
skewed federated training pool are drawn from the *same* distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "SyntheticImageGenerator",
    "make_synthetic_mnist",
    "make_synthetic_cifar",
    "make_uniform_test_set",
]


def _smooth_random_image(rng: np.random.Generator, channels: int, size: int,
                         max_frequency: float = 1.5) -> np.ndarray:
    """A smooth random image, standardised to zero mean and unit variance.

    Prototypes built from a handful of random low-frequency cosines are smooth
    (so small spatial jitter does not destroy them) while standardisation keeps
    distinct prototypes far apart relative to the per-pixel sample noise.
    """
    yy, xx = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    img = np.zeros((channels, size, size))
    for ch in range(channels):
        acc = np.zeros((size, size))
        for _ in range(6):
            fx, fy = rng.uniform(0.3, max_frequency, size=2)
            px, py = rng.uniform(0, 2 * np.pi, size=2)
            acc += rng.uniform(0.3, 1.0) * np.cos(2 * np.pi * fx * xx + px) * np.cos(
                2 * np.pi * fy * yy + py
            )
        acc -= acc.mean()
        std = acc.std()
        if std > 0:
            acc /= std
        img[ch] = acc
    return img


@dataclass
class SyntheticImageGenerator:
    """Generator of a ``C``-class synthetic image classification problem.

    Parameters
    ----------
    num_classes:
        Label-space size ``C``.
    image_shape:
        ``(channels, height, width)`` of generated images.
    noise_scale:
        Standard deviation of per-pixel Gaussian noise; the main difficulty
        knob.
    class_overlap:
        Fraction of a shared background mixed into every class prototype
        (0 = fully separable prototypes, 1 = identical prototypes).
    jitter:
        Magnitude of per-sample prototype deformation (random pixel shifts).
    max_frequency:
        Highest spatial frequency (cycles per image) of the prototype
        patterns.  Lower frequencies make prototypes robust to jitter (easier
        task); higher frequencies plus overlap make the task harder.
    seed:
        Seed of the prototype RNG; generators with the same seed define the
        same classification problem.
    """

    num_classes: int
    image_shape: tuple[int, int, int] = (1, 8, 8)
    noise_scale: float = 0.35
    class_overlap: float = 0.3
    jitter: int = 1
    max_frequency: float = 1.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        channels, height, width = self.image_shape
        if height != width:
            raise ValueError("only square images are supported")
        if not 0 <= self.class_overlap <= 1:
            raise ValueError("class_overlap must lie in [0, 1]")
        if self.noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        if self.max_frequency <= 0:
            raise ValueError("max_frequency must be positive")
        rng = np.random.default_rng(self.seed)
        background = _smooth_random_image(rng, channels, height, self.max_frequency)
        prototypes = np.stack(
            [
                _smooth_random_image(rng, channels, height, self.max_frequency)
                for _ in range(self.num_classes)
            ]
        )
        self.prototypes = (
            (1 - self.class_overlap) * prototypes + self.class_overlap * background[None]
        )
        self._rng = rng

    # -- sampling -------------------------------------------------------------

    def _deform(self, prototype: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Random small cyclic shift of the prototype (cheap deformation)."""
        if self.jitter <= 0:
            return prototype
        dy = int(rng.integers(-self.jitter, self.jitter + 1))
        dx = int(rng.integers(-self.jitter, self.jitter + 1))
        return np.roll(np.roll(prototype, dy, axis=1), dx, axis=2)

    def sample_class(self, label: int, n: int,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw *n* samples of class *label*; returns ``(n, C, H, W)`` floats."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} out of range")
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = rng if rng is not None else self._rng
        out = np.empty((n, *self.image_shape), dtype=np.float32)
        proto = self.prototypes[label]
        for i in range(n):
            deformed = self._deform(proto, rng)
            out[i] = deformed + rng.normal(0.0, self.noise_scale, size=self.image_shape)
        return out

    def generate(self, class_counts: Sequence[int] | np.ndarray,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> ArrayDataset:
        """Generate a dataset with the given per-class sample counts."""
        counts = np.asarray(class_counts, dtype=int)
        if counts.size != self.num_classes:
            raise ValueError("class_counts length must equal num_classes")
        if np.any(counts < 0):
            raise ValueError("class_counts must be non-negative")
        rng = rng if rng is not None else self._rng
        xs, ys = [], []
        for c, n in enumerate(counts):
            if n == 0:
                continue
            xs.append(self.sample_class(c, int(n), rng=rng))
            ys.append(np.full(int(n), c, dtype=int))
        if not xs:
            x = np.empty((0, *self.image_shape), dtype=np.float32)
            y = np.empty(0, dtype=int)
        else:
            x = np.concatenate(xs)
            y = np.concatenate(ys)
        if shuffle and len(y):
            order = rng.permutation(len(y))
            x, y = x[order], y[order]
        return ArrayDataset(x, y, num_classes=self.num_classes)

    def flat_feature_dim(self) -> int:
        """Number of features per flattened sample (for MLP models)."""
        c, h, w = self.image_shape
        return c * h * w


def make_synthetic_mnist(num_classes: int = 10, image_size: int = 8,
                         seed: Optional[int] = None) -> SyntheticImageGenerator:
    """An MNIST-like synthetic task: single channel, well separated classes."""
    return SyntheticImageGenerator(
        num_classes=num_classes,
        image_shape=(1, image_size, image_size),
        noise_scale=0.3,
        class_overlap=0.25,
        jitter=1,
        max_frequency=1.2,
        seed=seed,
    )


def make_synthetic_cifar(num_classes: int = 10, image_size: int = 8,
                         seed: Optional[int] = None) -> SyntheticImageGenerator:
    """A CIFAR-like synthetic task: three channels, heavier overlap and noise."""
    return SyntheticImageGenerator(
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        noise_scale=0.6,
        class_overlap=0.55,
        jitter=1,
        max_frequency=1.6,
        seed=seed,
    )


def make_uniform_test_set(generator: SyntheticImageGenerator, samples_per_class: int = 50,
                          seed: Optional[int] = None) -> ArrayDataset:
    """A class-balanced test set (the paper's uniform test distribution)."""
    if samples_per_class < 1:
        raise ValueError("samples_per_class must be positive")
    rng = np.random.default_rng(seed)
    counts = np.full(generator.num_classes, samples_per_class, dtype=int)
    return generator.generate(counts, rng=rng)
