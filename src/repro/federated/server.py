"""The federated server: holds the global model and aggregates client updates.

The server in Dubhe is honest-but-curious: it orchestrates rounds and
aggregates both model updates and (encrypted) registries, but it never sees
private keys.  This class only handles the model side; the encrypted
registry/ distribution aggregation lives in :mod:`repro.core.secure`, keeping
the two concerns — learning and selection privacy — cleanly separated, which
is also what makes Dubhe "pluggable".
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.batched import UnvectorizableModelError
from ..nn.metrics import BatchedEvaluator, evaluate_model
from ..nn.module import Module
from .aggregation import average_states, weighted_average_states

__all__ = ["EVAL_BACKENDS", "FederatedServer"]

StateDict = dict[str, np.ndarray]

EVAL_BACKENDS = ("batched", "sequential")


class FederatedServer:
    """Holds the global model and performs FedAvg/FedVC aggregation.

    ``eval_backend`` selects how :meth:`evaluate` runs the test pass:
    ``"batched"`` (default) pushes the test set through the forward-only
    cohort kernels (:class:`repro.nn.metrics.BatchedEvaluator`, built once
    and reused every round), falling back to the sequential loop for models
    without a registered cohort chain; ``"sequential"`` always uses the
    per-batch Python loop.  Both produce identical metrics.

    Example
    -------
    >>> from repro.nn.models import MLP
    >>> server = FederatedServer(lambda: MLP(8, 2, hidden=(4,), seed=0))
    >>> sorted(server.global_state())[:2]
    ['net.layers.1.bias', 'net.layers.1.weight']
    >>> server.rounds_completed
    0
    """

    def __init__(self, model_factory: Callable[[], Module], aggregation: str = "uniform",
                 eval_backend: str = "batched"):
        if aggregation not in ("uniform", "weighted"):
            raise ValueError("aggregation must be 'uniform' or 'weighted'")
        if eval_backend not in EVAL_BACKENDS:
            raise ValueError(f"eval_backend must be one of {EVAL_BACKENDS}")
        self.model_factory = model_factory
        self.global_model = model_factory()
        self.aggregation = aggregation
        self.eval_backend = eval_backend
        self.rounds_completed = 0
        #: rounds whose aggregation was skipped (survivors below the floor)
        self.rounds_skipped = 0
        #: whether the most recent :meth:`aggregate` call skipped the round
        self.last_aggregation_skipped = False
        self._evaluator: Optional[BatchedEvaluator] = None
        #: why batched evaluation is unavailable for this model (or None)
        self.eval_fallback_reason: Optional[str] = None

    # -- weights -----------------------------------------------------------------

    def global_state(self, copy: bool = True) -> StateDict:
        """The current global weights (what gets sent to clients).

        ``copy=False`` returns read-only views instead of copies — the round
        loop uses this to share one global state across all workers, since
        every back-end copies on load (copy-on-write) and aggregation only
        happens after all local updates finish.
        """
        return self.global_model.state_dict(copy=copy)

    def restore(self, state: StateDict, rounds_completed: int = 0,
                rounds_skipped: int = 0) -> None:
        """Load a checkpointed global state (the run ledger's RESUME path).

        Replaces the global model's weights with *state* — a state dict
        recorded by :class:`repro.ledger.RunLedger` after some earlier
        round's aggregation — and restores the server's round counters, so a
        resumed run continues exactly where the recorded one stopped.  The
        cached batched evaluator (if any) reloads the weights on its next
        :meth:`evaluate` call, nothing else needs rebuilding.

        Example
        -------
        >>> from repro.nn.models import MLP
        >>> server = FederatedServer(lambda: MLP(8, 2, hidden=(4,), seed=0))
        >>> server.restore(server.global_state(), rounds_completed=3)
        >>> server.rounds_completed
        3
        """
        if rounds_completed < 0 or rounds_skipped < 0:
            raise ValueError("round counters must be >= 0")
        self.global_model.load_state_dict(state)
        self.rounds_completed = rounds_completed
        self.rounds_skipped = rounds_skipped
        self.last_aggregation_skipped = False

    def aggregate(self, client_states: Sequence[StateDict],
                  client_weights: Sequence[float] | None = None,
                  expected_count: Optional[int] = None,
                  min_participation: float = 0.0) -> StateDict:
        """Aggregate client updates into the new global model.

        With ``aggregation == "uniform"`` this is eq. (1) (virtual clients of
        equal size); with ``"weighted"`` the classical sample-weighted FedAvg
        is used and *client_weights* must be given (one weight per state; the
        weights are normalised over the states present, so a partial round
        stays a convex combination of the updates that arrived).

        *expected_count* opts into **partial-round aggregation** (the
        fault-injection path): it is the planned cohort size, of which only
        ``len(client_states)`` survivors reported back.  When the survivor
        fraction falls below *min_participation* — or nobody survived — the
        round is *skipped*: the global model is carried forward unchanged,
        :attr:`rounds_skipped` is incremented and
        :attr:`last_aggregation_skipped` is set, and the (unchanged) global
        state is returned.  Without *expected_count* an empty update list is
        a caller bug and raises, exactly as before.
        """
        self.last_aggregation_skipped = False
        if expected_count is not None:
            if expected_count < 1:
                raise ValueError("expected_count must be positive when given")
            if not 0.0 <= min_participation <= 1.0:
                raise ValueError("min_participation must lie in [0, 1]")
            participation = len(client_states) / expected_count
            if not client_states or participation < min_participation:
                self.rounds_skipped += 1
                self.last_aggregation_skipped = True
                return self.global_state()
        if not client_states:
            raise ValueError("no client updates to aggregate")
        if self.aggregation == "uniform":
            new_state = average_states(client_states)
        else:
            if client_weights is None:
                raise ValueError("weighted aggregation requires client_weights")
            new_state = weighted_average_states(client_states, client_weights)
        self.global_model.load_state_dict(new_state)
        self.rounds_completed += 1
        return new_state

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, test_set: ArrayDataset, batch_size: int = 64) -> dict:
        """Evaluate the current global model on a (uniform) test set.

        With the ``"batched"`` backend the round-persistent evaluator reuses
        its one-client parameter stack across rounds and *batch_size* is
        irrelevant (chunking is internal); the metrics are identical to the
        sequential loop's either way.
        """
        if self.eval_backend == "batched":
            evaluator = self._ensure_evaluator()
            if evaluator is not None:
                evaluator.load_state(self.global_state(copy=False))
                return evaluator.evaluate(test_set)
        return evaluate_model(self.global_model, test_set, batch_size=batch_size)

    def _ensure_evaluator(self) -> Optional[BatchedEvaluator]:
        """The cached batched evaluator, or None when the model rules it out."""
        if self._evaluator is None and self.eval_fallback_reason is None:
            try:
                self._evaluator = BatchedEvaluator(self.model_factory())
            except UnvectorizableModelError as exc:
                self.eval_fallback_reason = str(exc)
        return self._evaluator

    def new_client_model(self) -> Module:
        """A fresh model instance for a client (weights loaded by the executor)."""
        return self.model_factory()

    def close(self) -> None:
        """Drop the cached batched evaluator and its test-set cast caches.

        Idempotent; the next :meth:`evaluate` rebuilds the evaluator on
        demand.  Part of the simulation's clean-shutdown path — the batched
        evaluator pins its parameter stack and one float64 cast per test set
        for the server's lifetime, which outlives short-lived runs.
        """
        self._evaluator = None
        self.eval_fallback_reason = None
