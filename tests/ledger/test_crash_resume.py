"""Crash-safety integration tests: SIGKILL a recording run, then resume it.

The ledger's core promise is that a killed process loses at most the round
in flight.  These tests exercise it for real: a child process records a run
into a ledger, the test kills it (SIGKILL — no cleanup, no atexit) once
enough rounds are durably committed, then resumes from the surviving file
and asserts the completed trajectory is bit-identical to an uninterrupted
run of the same configuration.  The parallel variant kills the whole
process group, taking the worker fleet down with the scheduler.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.ledger import LedgerError, RunLedger, RunRecipe

TOTAL_ROUNDS = 8
KILL_AFTER = 2  # committed rounds to wait for before killing

RECIPE = RunRecipe("repro.ledger.recipes:quick_mlp",
                   {"n_clients": 12, "participants": 3, "seed": 0})

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")

_CHILD = textwrap.dedent("""
    import json, sys, time
    from repro.federated.simulation import FederatedConfig, FederatedSimulation
    from repro.ledger import RunRecipe

    ledger_path, recipe_json, config_json = sys.argv[1:4]
    recipe = RunRecipe.from_dict(json.loads(recipe_json))
    config = FederatedConfig(ledger_path=ledger_path,
                             **json.loads(config_json))
    sim = FederatedSimulation(config=config, recipe=recipe, **recipe.build())
    # the pause after each commit gives the test a window to SIGKILL this
    # process mid-run; it never changes what gets recorded
    sim.run(progress=lambda record: time.sleep(0.1))
""")


def spawn_recorder(ledger_path, **config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0)
    config.update(config_kwargs)
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, ledger_path,
         json.dumps(RECIPE.to_dict()), json.dumps(config)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )


def wait_for_rounds(ledger_path, child, minimum, timeout=120.0):
    """Poll the ledger until *minimum* rounds are durably committed."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                "recorder exited early: "
                + child.stderr.read().decode(errors="replace"))
        try:
            with RunLedger(ledger_path, create=False) as ledger:
                info = ledger.run()
                if info.rounds_committed >= minimum:
                    return info.run_id
        except LedgerError:
            pass  # ledger (or first run row) not created yet
        time.sleep(0.01)
    raise AssertionError(f"no {minimum} committed rounds within {timeout}s")


def kill_group(child, sig=signal.SIGKILL):
    try:
        os.killpg(os.getpgid(child.pid), sig)
    except ProcessLookupError:
        pass
    child.wait(timeout=30)
    if child.stderr is not None:
        child.stderr.close()


def uninterrupted_run(**config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0)
    config.update(config_kwargs)
    with FederatedSimulation(config=FederatedConfig(**config),
                             **RECIPE.build()) as sim:
        history = sim.run()
        return history, sim.server.global_state()


def resume(ledger_path, run_id, **config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0, ledger_path=ledger_path,
                  run_mode="resume", replay_source_run_id=run_id)
    config.update(config_kwargs)
    with FederatedSimulation(config=FederatedConfig(**config), recipe=RECIPE,
                             **RECIPE.build()) as sim:
        history = sim.run()
        return history, sim.server.global_state()


@pytest.mark.parametrize("executor_mode", ["sequential", "vectorized"])
def test_sigkill_mid_run_then_resume_bit_identical(tmp_path, executor_mode):
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path, executor_mode=executor_mode)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)

    with RunLedger(ledger_path, create=False) as ledger:
        info = ledger.run(run_id)
        committed = info.rounds_committed
        assert KILL_AFTER <= committed < TOTAL_ROUNDS  # genuinely interrupted
        assert info.status == "running"  # the kill never reached finish_run
        ledger.rounds(run_id)  # the surviving prefix is contiguous and intact

    resumed, resumed_state = resume(ledger_path, run_id,
                                    executor_mode=executor_mode)
    reference, reference_state = uninterrupted_run(
        executor_mode=executor_mode)

    assert len(resumed) == TOTAL_ROUNDS
    np.testing.assert_array_equal(resumed.accuracies(),
                                  reference.accuracies())
    for key in reference_state:
        np.testing.assert_array_equal(resumed_state[key],
                                      reference_state[key])
    with RunLedger(ledger_path, create=False) as ledger:
        final = ledger.run(run_id)
        assert final.is_complete()
        assert final.rounds_committed == TOTAL_ROUNDS


def test_kill_parallel_worker_fleet_then_resume(tmp_path):
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path, executor_mode="parallel",
                           num_workers=2)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)  # SIGKILL the whole group: scheduler AND workers

    # resume on a *different* back-end: determinism holds across executors
    resumed, resumed_state = resume(ledger_path, run_id,
                                    executor_mode="sequential")
    reference, reference_state = uninterrupted_run(executor_mode="sequential")
    np.testing.assert_array_equal(resumed.accuracies(),
                                  reference.accuracies())
    for key in reference_state:
        np.testing.assert_array_equal(resumed_state[key],
                                      reference_state[key])


def test_verify_after_crash_resume(tmp_path):
    """The resumed run's full record (pre- and post-kill rounds) verifies."""
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)
    resume(ledger_path, run_id)

    config = FederatedConfig(rounds=TOTAL_ROUNDS, seed=0,
                             ledger_path=ledger_path, run_mode="verify",
                             replay_source_run_id=run_id)
    with FederatedSimulation(config=config, recipe=RECIPE,
                             **RECIPE.build()) as sim:
        sim.run()
        report = sim.ledger_session.report
    assert report.ok()
    assert report.rounds_checked == TOTAL_ROUNDS
