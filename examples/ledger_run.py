#!/usr/bin/env python
"""Run ledger walkthrough: record a run, kill it, resume it, verify it.

The run ledger (:mod:`repro.ledger`) makes long federated runs durable and
auditable: every completed round is committed to a SQLite file together with
a checksummed global-model checkpoint, so a crashed run loses at most the
round in flight, and any finished run can later be re-executed and checked
bit-for-bit.  This example demonstrates the whole lifecycle in one process:

1. record a short LIVE run (interrupted on purpose partway through);
2. RESUME it from the last committed checkpoint and run it to completion;
3. VERIFY the completed run — re-execute every round and assert selections
   and metrics match the record exactly, including on a different executor
   back-end;
4. show that the resumed trajectory is bit-identical to an uninterrupted
   run of the same configuration.

Run it with::

    python examples/ledger_run.py
    python examples/ledger_run.py --ledger /tmp/runs.db --rounds 8

The same lifecycle is scriptable from the shell via
``python -m repro.ledger {list,show,verify,resume}``.
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from repro.api import Session
from repro.federated import FederatedConfig, FederatedSimulation
from repro.ledger import RunLedger, RunRecipe


def build_simulation(recipe: RunRecipe, **config_kwargs) -> FederatedSimulation:
    """A simulation built from the recipe, so resume/verify can rebuild it."""
    return Session(FederatedConfig(**config_kwargs)).with_recipe(recipe).build()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ledger", default=None,
                        help="ledger file (default: a temporary one)")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--interrupt-after", type=int, default=3,
                        help="rounds to record before the simulated crash")
    args = parser.parse_args()

    path = args.ledger or os.path.join(tempfile.mkdtemp(), "runs.db")
    recipe = RunRecipe("repro.ledger.recipes:quick_mlp",
                       {"n_clients": 24, "participants": 6,
                        "selector": "dubhe", "seed": 0})
    base = dict(rounds=args.rounds, seed=0, ledger_path=path)

    print(f"[1/4] recording {args.interrupt_after} of {args.rounds} rounds, "
          f"then 'crashing' (ledger: {path})")
    with build_simulation(recipe, run_name="ledger-demo", **base) as sim:
        sim.run(args.interrupt_after)
        run_id = sim.ledger_session.run_id
    with RunLedger(path, create=False) as ledger:
        print(f"      committed {ledger.round_count(run_id)} round(s) "
              f"of run {run_id}")

    print(f"[2/4] resuming run {run_id} to completion")
    with build_simulation(recipe, run_mode="resume",
                          replay_source_run_id=run_id, **base) as sim:
        resumed = sim.run()
    print(f"      final accuracy {resumed.final_accuracy():.4f} after "
          f"{len(resumed)} rounds")

    print("[3/4] verifying the recorded run (sequential, then vectorized)")
    for executor_mode in ("sequential", "vectorized"):
        with build_simulation(recipe, run_mode="verify",
                              replay_source_run_id=run_id,
                              executor_mode=executor_mode, **base) as sim:
            sim.run()
            report = sim.ledger_session.report
        print(f"      [{executor_mode}] {report.format()}")

    print("[4/4] comparing against an uninterrupted run")
    with build_simulation(recipe, **dict(base, ledger_path=None)) as sim:
        uninterrupted = sim.run()
    identical = np.array_equal(np.asarray(resumed.accuracies()),
                               np.asarray(uninterrupted.accuracies()))
    print(f"      resumed accuracies bit-identical to uninterrupted: "
          f"{identical}")
    if not identical:
        raise SystemExit("resume determinism violated")


if __name__ == "__main__":
    main()
