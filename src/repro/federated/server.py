"""The federated server: holds the global model and aggregates client updates.

The server in Dubhe is honest-but-curious: it orchestrates rounds and
aggregates both model updates and (encrypted) registries, but it never sees
private keys.  This class only handles the model side; the encrypted
registry/ distribution aggregation lives in :mod:`repro.core.secure`, keeping
the two concerns — learning and selection privacy — cleanly separated, which
is also what makes Dubhe "pluggable".
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.metrics import evaluate_model
from ..nn.module import Module
from .aggregation import average_states, weighted_average_states

__all__ = ["FederatedServer"]

StateDict = dict[str, np.ndarray]


class FederatedServer:
    """Holds the global model and performs FedAvg/FedVC aggregation."""

    def __init__(self, model_factory: Callable[[], Module], aggregation: str = "uniform"):
        if aggregation not in ("uniform", "weighted"):
            raise ValueError("aggregation must be 'uniform' or 'weighted'")
        self.model_factory = model_factory
        self.global_model = model_factory()
        self.aggregation = aggregation
        self.rounds_completed = 0

    # -- weights -----------------------------------------------------------------

    def global_state(self, copy: bool = True) -> StateDict:
        """The current global weights (what gets sent to clients).

        ``copy=False`` returns read-only views instead of copies — the round
        loop uses this to share one global state across all workers, since
        every back-end copies on load (copy-on-write) and aggregation only
        happens after all local updates finish.
        """
        return self.global_model.state_dict(copy=copy)

    def aggregate(self, client_states: Sequence[StateDict],
                  client_weights: Sequence[float] | None = None) -> StateDict:
        """Aggregate client updates into the new global model.

        With ``aggregation == "uniform"`` this is eq. (1) (virtual clients of
        equal size); with ``"weighted"`` the classical sample-weighted FedAvg
        is used and *client_weights* must be given.
        """
        if not client_states:
            raise ValueError("no client updates to aggregate")
        if self.aggregation == "uniform":
            new_state = average_states(client_states)
        else:
            if client_weights is None:
                raise ValueError("weighted aggregation requires client_weights")
            new_state = weighted_average_states(client_states, client_weights)
        self.global_model.load_state_dict(new_state)
        self.rounds_completed += 1
        return new_state

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, test_set: ArrayDataset, batch_size: int = 64) -> dict:
        """Evaluate the current global model on a (uniform) test set."""
        return evaluate_model(self.global_model, test_set, batch_size=batch_size)

    def new_client_model(self) -> Module:
        """A fresh model instance for a client (weights loaded by the executor)."""
        return self.model_factory()
