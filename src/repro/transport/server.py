"""The asyncio TCP server driving Dubhe rounds over real sockets.

:class:`SocketTransport` implements the :class:`~repro.transport.base.Transport`
contract over localhost (or LAN) TCP.  It owns a private asyncio event loop
on a daemon thread, so the synchronous simulation loop stays unchanged —
``run_round`` bridges into the loop with ``run_coroutine_threadsafe`` and
blocks until the round's deltas are in (or timed out).

Per-connection handling
-----------------------
Each accepted connection gets a reader task (frame parsing via
``readexactly`` on the header, then exactly the announced payload) and a
writer task draining a **bounded** send queue — a slow client applies
backpressure to its own queue without stalling the other clients or
unbounding server memory.  A frame that fails the structured wire checks
(:class:`~repro.transport.wire.CorruptFrameError` and friends) earns the
peer an :class:`~repro.transport.messages.ErrorNotice` and a disconnect.

Round protocol
--------------
``run_round`` waits (with exponential backoff, bounded by
``connect_timeout`` / ``retries``) until every cohort client is registered,
resolves injected faults *server-side* — a client marked as dropped by the
scenario's :class:`~repro.scenarios.engine.FaultInjector` is never
dispatched to, so scenario outcomes are byte-identical across back-ends —
then sends each survivor a :class:`~repro.transport.messages.SelectionNotice`
and awaits their :class:`~repro.transport.messages.ModelDelta` replies under
``round_timeout``.  A client that misses the deadline is recorded as a
``"straggler"`` and a disconnected one as ``"offline"`` (both members of
:data:`repro.scenarios.engine.FAILURE_CAUSES`), and the partial survivor
set flows into :meth:`repro.federated.server.FederatedServer.aggregate`'s
``expected_count`` / ``min_participation`` skip policy exactly like an
injected fault would.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.config import TransportConfig
from ..federated.client import FederatedClient, LocalTrainingConfig
from ..nn.module import Module
from .base import Transport
from .messages import (
    ErrorNotice,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    encode_message,
)
from .wire import WireError, frame_header

__all__ = ["SocketTransport", "TransportClosedError", "TransportError"]

StateDict = dict[str, np.ndarray]

#: wire-frame header size (magic + version + type + length)
_HEADER_SIZE = 8
#: wire-frame trailer size (crc32)
_TRAILER_SIZE = 4


class TransportError(RuntimeError):
    """A round could not be driven over the socket transport."""


class TransportClosedError(TransportError):
    """The transport was closed while a round was still pending."""


class _ClientSession:
    """Server-side state of one connected client (private)."""

    def __init__(self, writer: asyncio.StreamWriter, send_queue: int):
        self.writer = writer
        self.queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(maxsize=send_queue)
        self.client_id: Optional[int] = None
        self.position: Optional[int] = None
        self.closed = False

    async def send(self, message) -> None:
        """Enqueue a message (blocks when the bounded queue is full)."""
        if not self.closed:
            await self.queue.put(encode_message(message))

    async def drain(self) -> None:
        """Writer task body: flush queued frames to the socket in order."""
        try:
            while True:
                frame = await self.queue.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def close(self) -> None:
        """Tear down the connection (safe to call twice)."""
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
        except Exception:
            pass


async def _read_message(reader: asyncio.StreamReader, max_frame_bytes: int):
    """Read exactly one protocol message off a stream.

    Validates the header (magic/version/length cap) before allocating the
    payload, then runs the full structured decode including the CRC.
    """
    from .messages import decode_message

    head = await reader.readexactly(_HEADER_SIZE)
    _, length = frame_header(head, max_frame_bytes)
    body = await reader.readexactly(length + _TRAILER_SIZE)
    message, _ = decode_message(head + body)
    return message


class SocketTransport(Transport):
    """Drive Dubhe rounds over TCP against :class:`~repro.transport.client.
    TransportClient` peers.

    The server starts lazily (first ``run_round`` or an explicit
    :meth:`start`) and binds ``config.host:config.port`` — port ``0`` picks
    a free port, readable from :attr:`address`.  Fault-free rounds under
    float64 are bit-identical to the in-process sequential executor: the
    remote peers run the very same
    :meth:`~repro.federated.client.FederatedClient.local_train` from the
    very same broadcast state.

    Example
    -------
    >>> from repro.core.config import TransportConfig
    >>> transport = SocketTransport(TransportConfig(kind="socket", port=0))
    >>> host, port = transport.start()
    >>> port > 0
    True
    >>> transport.close()
    """

    def __init__(self, config: Optional[TransportConfig] = None):
        super().__init__()
        self.config = config or TransportConfig(kind="socket")
        #: ``(host, port)`` actually bound (after :meth:`start`)
        self.address: Optional[Tuple[str, int]] = None
        #: encrypted uploads received so far: client_id -> tag -> vector
        self.uploads: "Dict[int, dict]" = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: "Dict[int, _ClientSession]" = {}
        self._pending: "Dict[Tuple[int, int], asyncio.Future]" = {}
        self._roster_changed: Optional[asyncio.Event] = None
        self._closing = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind the listening socket and return ``(host, port)``.

        Idempotent: a started transport returns its existing address.  The
        event loop runs on a daemon thread, so the caller's thread (the
        simulation loop) never blocks on socket readiness.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() == transport.address
        True
        >>> transport.close()
        """
        if self._loop is not None:
            assert self.address is not None
            return self.address
        self._closing = False
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever,
                                  name="repro-transport-server", daemon=True)
        thread.start()
        self._loop = loop
        self._thread = thread
        future = asyncio.run_coroutine_threadsafe(self._start_async(), loop)
        self.address = future.result(timeout=self.config.connect_timeout)
        return self.address

    async def _start_async(self) -> Tuple[str, int]:
        self._roster_changed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def close(self) -> None:
        """Stop the server, notifying clients and failing any pending round.

        Idempotent and safe to call from any thread at any time — including
        while a round is mid-flight: pending reply futures are cancelled
        (the blocked ``run_round`` raises :class:`TransportClosedError`
        instead of hanging), every client gets a best-effort
        :class:`~repro.transport.messages.Shutdown`, and the loop thread is
        joined.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.close()  # never started: a no-op
        >>> transport.close()
        """
        loop, thread = self._loop, self._thread
        # latch even when never started: a closed transport stays closed
        # until someone explicitly start()s it again
        self._closing = True
        if loop is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(self._shutdown_async(), loop)
            future.result(timeout=self.config.connect_timeout)
        except Exception:
            pass  # a wedged loop still gets stopped below
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=self.config.connect_timeout)
        if not loop.is_running() and not loop.is_closed():
            loop.close()
        self._loop = None
        self._thread = None
        self._server = None
        self._sessions = {}
        self._pending = {}
        self.address = None

    async def _shutdown_async(self) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.cancel()
        self._pending.clear()
        notice = Shutdown("server closing")
        for session in list(self._sessions.values()):
            try:
                # bypass the bounded queue: shutdown must not block on a
                # slow client's backlog
                session.writer.write(encode_message(notice))
                await asyncio.wait_for(session.writer.drain(), timeout=1.0)
            except Exception:
                pass
            session.close()
        self._sessions.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # reap the per-connection reader/writer tasks before the loop stops,
        # so none are destroyed while still pending
        current = asyncio.current_task()
        leftovers = [task for task in asyncio.all_tasks()
                     if task is not current]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session = _ClientSession(writer, self.config.send_queue)
        drain_task = asyncio.ensure_future(session.drain())
        try:
            while True:
                message = await _read_message(reader, self.config.max_frame_bytes)
                await self._dispatch(session, message)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away
        except WireError as exc:
            try:
                writer.write(encode_message(ErrorNotice(str(exc))))
                await asyncio.wait_for(writer.drain(), timeout=1.0)
            except Exception:
                pass
        except asyncio.CancelledError:
            raise
        finally:
            drain_task.cancel()
            session.close()
            if session.client_id is not None:
                if self._sessions.get(session.client_id) is session:
                    del self._sessions[session.client_id]
                self._fail_pending_for(session.client_id)

    def _fail_pending_for(self, client_id: int) -> None:
        """A client vanished: fail its outstanding reply futures as offline."""
        for (round_index, cid), future in list(self._pending.items()):
            if cid == client_id and not future.done():
                future.set_exception(
                    TransportError(f"client {client_id} disconnected mid-round")
                )

    async def _dispatch(self, session: _ClientSession, message) -> None:
        if isinstance(message, Register):
            stale = self._sessions.get(message.client_id)
            if stale is not None and stale is not session:
                stale.close()  # reconnect replaces the old connection
            session.client_id = message.client_id
            self._sessions[message.client_id] = session
            session.position = len(self._sessions) - 1
            assert self._roster_changed is not None
            self._roster_changed.set()
            await session.send(RegisterAck(message.client_id, session.position,
                                           len(self._sessions)))
        elif isinstance(message, PackedCiphertextUpload):
            self.uploads.setdefault(message.client_id, {})[message.tag] = \
                message.vector
        elif isinstance(message, ModelDelta):
            future = self._pending.get((message.round_index, message.client_id))
            if future is not None and not future.done():
                future.set_result(message.state)
        elif isinstance(message, ErrorNotice):
            self.last_fallback_reason = f"client error: {message.detail}"
        # other message types are server→client only; ignore echoes

    # -- protocol broadcasts ----------------------------------------------------

    def broadcast_probabilities(self, round_index: int,
                                probabilities: Sequence[float]) -> None:
        """Send every registered client this round's ``q_k`` probabilities.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() is not None
        True
        >>> transport.broadcast_probabilities(0, [0.5, 0.5])  # no clients: no-op
        >>> transport.close()
        """
        message = ProbabilityBroadcast(round_index,
                                       tuple(float(p) for p in probabilities))
        self._broadcast(message)

    def on_round_complete(self, record) -> None:
        """Broadcast the closed round's outcome as a ``RoundResult``.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() is not None
        True
        >>> transport.close()
        """
        message = RoundResult(
            round_index=record.round_index,
            skipped=bool(record.aggregation_skipped),
            accuracy=record.test_accuracy,
            failures=dict(record.failures),
        )
        self._broadcast(message)

    def _broadcast(self, message) -> None:
        if self._loop is None or self._closing:
            return

        async def _send_all() -> None:
            for session in list(self._sessions.values()):
                await session.send(message)

        try:
            asyncio.run_coroutine_threadsafe(_send_all(), self._loop).result(
                timeout=self.config.connect_timeout)
        except (concurrent.futures.TimeoutError, TimeoutError):
            # broadcasts are advisory; a saturated client queue (backpressure)
            # must not fail the round
            self.last_fallback_reason = "broadcast timed out on a full queue"

    # -- the round --------------------------------------------------------------

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0,
                  faults=None) -> "list[StateDict]":
        """Dispatch the cohort's selection notices and collect their deltas.

        Mirrors :meth:`repro.federated.executor.LocalUpdateExecutor.run_round`:
        returns the survivors' states in cohort order; injected *faults* are
        resolved server-side (failed positions are never dispatched), real
        deadline misses become ``"straggler"`` and disconnects ``"offline"``
        in :attr:`last_round_failures`.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.run_round([], lambda: None, {}, LocalTrainingConfig())
        []
        >>> transport.close()
        """
        self.last_round_failures = {}
        self.last_round_delay = 0.0
        self.last_fallback_reason = None
        if not clients:
            return []
        if self._closing:
            raise TransportClosedError("transport is closed")
        self.start()
        assert self._loop is not None
        injected: dict[int, str] = {}
        if faults is not None:
            injected = {p: c for p, c in faults.resolve().items()
                        if p < len(clients)}
            self.last_round_delay = faults.round_delay()
        ids = [client.client_id for client in clients]
        future = asyncio.run_coroutine_threadsafe(
            self._run_round_async(ids, global_state, config, round_index,
                                  injected),
            self._loop,
        )
        budget = self.config.connect_timeout * (self.config.retries + 2)
        if self.config.round_timeout is not None:
            budget += self.config.round_timeout
            result_timeout: Optional[float] = budget
        else:
            result_timeout = None
        try:
            states_by_position, real_failures = future.result(
                timeout=result_timeout)
        except (asyncio.CancelledError, concurrent.futures.CancelledError):
            # the bridging future raises the concurrent.futures flavour,
            # which is not the asyncio class on every interpreter
            raise TransportClosedError(
                f"transport closed while round {round_index} was pending"
            )
        except (concurrent.futures.TimeoutError, TimeoutError):
            future.cancel()
            raise TransportError(
                f"round {round_index} did not complete within the "
                f"{budget:.1f}s transport budget"
            )
        self.last_round_failures = dict(injected)
        self.last_round_failures.update(real_failures)
        survivors = [p for p in range(len(clients))
                     if p not in self.last_round_failures]
        # remote peers incremented their own participation counters; mirror
        # that on the simulation-side stubs so bookkeeping matches in-process
        for position in survivors:
            clients[position].rounds_participated += 1
        return [states_by_position[p] for p in survivors]

    async def _run_round_async(self, ids: Sequence[int],
                               global_state: StateDict,
                               config: LocalTrainingConfig,
                               round_index: int,
                               injected: "dict[int, str]"):
        await self._wait_for_clients(ids)
        assert self._loop is not None
        deadline = self.config.round_timeout
        pending: "dict[int, tuple[int, asyncio.Future]]" = {}
        for position, client_id in enumerate(ids):
            if position in injected:
                continue  # resolved server-side: dropped clients never train
            reply: asyncio.Future = self._loop.create_future()
            self._pending[(round_index, client_id)] = reply
            notice = SelectionNotice(round_index=round_index,
                                     client_id=client_id, config=config,
                                     state=global_state, deadline=deadline)
            await self._sessions[client_id].send(notice)
            pending[position] = (client_id, reply)
        real_failures: "dict[int, str]" = {}
        states: "dict[int, StateDict]" = {}
        if pending:
            await asyncio.wait([reply for _, reply in pending.values()],
                               timeout=deadline)
        for position, (client_id, reply) in pending.items():
            self._pending.pop((round_index, client_id), None)
            if reply.cancelled():
                raise asyncio.CancelledError()
            if reply.done() and reply.exception() is None:
                states[position] = reply.result()
            elif reply.done():
                reply.exception()  # consume it
                real_failures[position] = "offline"
            else:
                reply.cancel()
                real_failures[position] = "straggler"
        return states, real_failures

    async def _wait_for_clients(self, ids: Sequence[int]) -> None:
        """Wait until every cohort client is registered (backoff + deadline)."""
        assert self._loop is not None and self._roster_changed is not None
        deadline = self._loop.time() + self.config.connect_timeout
        attempt = 0
        while True:
            missing = [cid for cid in ids if cid not in self._sessions]
            if not missing:
                return
            remaining = deadline - self._loop.time()
            if remaining <= 0 or attempt > self.config.retries:
                raise TransportError(
                    f"clients {missing} never registered within "
                    f"{self.config.connect_timeout}s "
                    f"({attempt} waits, backoff {self.config.backoff}s)"
                )
            step = min(max(self.config.backoff, 0.001) * (2 ** attempt),
                       remaining)
            self._roster_changed.clear()
            try:
                await asyncio.wait_for(self._roster_changed.wait(),
                                       timeout=step)
            except asyncio.TimeoutError:
                attempt += 1
