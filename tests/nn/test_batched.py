"""Tests for the batched (cohort) kernels in repro.nn.batched."""

import numpy as np
import pytest

from repro.nn.batched import (
    BatchedAdam,
    BatchedModel,
    BatchedSGD,
    UnvectorizableModelError,
    batched_cross_entropy,
    register_cohort_chain,
)
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sequential
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import MLP, CifarCNN, MnistCNN
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam


def clone_with_state(factory, state):
    model = factory()
    model.load_state_dict(state)
    return model


def batched_from(factory, k, state):
    batched = BatchedModel(factory(), k)
    batched.load_state_dict_broadcast(state)
    return batched


MODEL_FACTORIES = {
    "mlp": lambda: MLP(64, 10, hidden=(16,), seed=3),
    "mnist_cnn": lambda: MnistCNN(1, 8, 10, channels=(3, 5), hidden=12,
                                  dropout=0.0, seed=3),
    "cifar_cnn": lambda: CifarCNN(3, 8, 10, channels=(3, 4, 4), hidden=12, seed=3),
}

INPUT_SHAPES = {
    "mlp": (1, 8, 8),
    "mnist_cnn": (1, 8, 8),
    "cifar_cnn": (3, 8, 8),
}


class TestBatchedForwardBackward:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_matches_per_client_models(self, name):
        factory = MODEL_FACTORIES[name]
        k, b = 4, 6
        state = factory().state_dict()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((k, b, *INPUT_SHAPES[name]))
        grad_out = rng.standard_normal((k, b, 10))

        batched = batched_from(factory, k, state)
        out = batched.forward(x)
        grad_in = batched.backward(grad_out)

        for i in range(k):
            model = clone_with_state(factory, state)
            ref_out = model(x[i])
            model.zero_grad()
            ref_grad_in = model.backward(grad_out[i])
            np.testing.assert_allclose(out[i], ref_out, atol=1e-12)
            np.testing.assert_allclose(grad_in[i], ref_grad_in, atol=1e-12)
            ref_state = dict(model.named_parameters())
            for pname, bp in batched.named_parameters():
                np.testing.assert_allclose(bp.grad[i], ref_state[pname].grad,
                                           atol=1e-12)

    def test_distinct_client_weights_stay_independent(self):
        factory = MODEL_FACTORIES["mlp"]
        k = 3
        state = factory().state_dict()
        batched = batched_from(factory, k, state)
        # perturb one client's weights only
        name0, bp0 = batched.named_parameters()[0]
        bp0.value[1] += 0.5
        x = np.random.default_rng(1).standard_normal((k, 4, 1, 8, 8))
        out = batched.forward(x)
        ref = clone_with_state(factory, state)
        np.testing.assert_allclose(out[0], ref(x[0]), atol=1e-12)
        assert not np.allclose(out[1], ref(x[1]))

    def test_dropout_uses_one_shared_mask_stream(self):
        # the sequential back-end gives every client an identically-seeded
        # dropout RNG; the batched layer must reproduce those masks
        def factory():
            return Sequential(Flatten(), Linear(16, 8, seed=0), Dropout(0.5, seed=9),
                              Linear(8, 4, seed=1))

        k, b = 3, 5
        state = factory().state_dict()
        x = np.random.default_rng(2).standard_normal((k, b, 16))
        batched = batched_from(factory, k, state)
        batched.train()
        out = batched.forward(x)
        for i in range(k):
            model = clone_with_state(factory, state)
            model.train()
            np.testing.assert_allclose(out[i], model(x[i]), atol=1e-12)

    def test_unseeded_active_dropout_refuses_vectorization(self):
        # sequential clients would draw independent entropy-seeded masks,
        # which a shared broadcast mask cannot reproduce
        model = Sequential(Linear(6, 6, seed=0), Dropout(0.5))
        with pytest.raises(UnvectorizableModelError):
            BatchedModel(model, 2)
        # inactive dropout has no mask stream, so it stays vectorizable
        BatchedModel(Sequential(Linear(6, 6, seed=0), Dropout(0.0)), 2)

    def test_eval_mode_disables_dropout(self):
        def factory():
            return Sequential(Linear(6, 6, seed=0), Dropout(0.9, seed=1))

        state = factory().state_dict()
        batched = batched_from(factory, 2, state)
        x = np.ones((2, 4, 6))
        batched.eval()
        a = batched.forward(x)
        b = batched.forward(x)
        np.testing.assert_allclose(a, b)


class TestBatchedModelStructure:
    def test_unknown_model_raises(self):
        class Weird(Module):
            def __init__(self):
                self.lin = Linear(4, 2, seed=0)

            def forward(self, x):
                return self.lin(x) ** 2

        with pytest.raises(UnvectorizableModelError):
            BatchedModel(Weird(), 2)

    def test_incomplete_chain_raises(self):
        class Partial(Module):
            def __init__(self):
                self.a = Linear(4, 4, seed=0)
                self.b = Linear(4, 2, seed=1)

            def forward(self, x):
                return self.b(self.a(x))

        register_cohort_chain(Partial, lambda m: [m.a])  # forgets m.b
        try:
            with pytest.raises(UnvectorizableModelError):
                BatchedModel(Partial(), 2)
        finally:
            from repro.nn import batched as batched_mod

            del batched_mod._MODEL_CHAINS[Partial]

    def test_load_state_dict_broadcast_validation(self):
        factory = MODEL_FACTORIES["mlp"]
        batched = BatchedModel(factory(), 2)
        state = factory().state_dict()
        bad = dict(state)
        bad.pop(next(iter(bad)))
        with pytest.raises(KeyError):
            batched.load_state_dict_broadcast(bad)
        wrong = {k: (v.T if v.ndim == 2 and v.shape[0] != v.shape[1] else v)
                 for k, v in state.items()}
        with pytest.raises(ValueError):
            batched.load_state_dict_broadcast(wrong)

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            BatchedModel(MODEL_FACTORIES["mlp"](), 0)

    def test_state_dicts_are_views(self):
        factory = MODEL_FACTORIES["mlp"]
        batched = batched_from(factory, 3, factory().state_dict())
        states = batched.state_dicts()
        name, bp = batched.named_parameters()[0]
        bp.value[2] += 1.0
        np.testing.assert_allclose(states[2][name], bp.value[2])

    def test_mean_state_matches_manual_average(self):
        factory = MODEL_FACTORIES["mlp"]
        batched = batched_from(factory, 4, factory().state_dict())
        rng = np.random.default_rng(3)
        for _, bp in batched.named_parameters():
            bp.value += rng.standard_normal(bp.value.shape)
        mean = batched.mean_state()
        states = batched.state_dicts()
        for name in mean:
            np.testing.assert_allclose(
                mean[name], np.mean([s[name] for s in states], axis=0), atol=1e-15
            )

    def test_flat_pool_layout_is_contiguous_per_parameter(self):
        factory = MODEL_FACTORIES["mlp"]
        batched = BatchedModel(factory(), 3)
        assert batched.flat_values.size == batched.num_parameters()
        for _, bp in batched.named_parameters():
            assert bp.value.base is batched.flat_values
            assert bp.value.flags.c_contiguous
            assert bp.grad.base is batched.flat_grads


class TestBatchedOptimizers:
    def _grad_filled_models(self, optimizer_name):
        factory = MODEL_FACTORIES["mlp"]
        k = 3
        state = factory().state_dict()
        batched = batched_from(factory, k, state)
        rng = np.random.default_rng(7)
        grads = {name: rng.standard_normal(bp.value.shape)
                 for name, bp in batched.named_parameters()}
        refs = []
        for i in range(k):
            model = clone_with_state(factory, state)
            refs.append(model)
        return batched, refs, grads

    @pytest.mark.parametrize("steps", [1, 3])
    def test_batched_adam_matches_sequential_adam(self, steps):
        batched, refs, grads = self._grad_filled_models("adam")
        opt = BatchedAdam(batched, lr=1e-2)
        ref_opts = [Adam(m, lr=1e-2) for m in refs]
        for step in range(steps):
            for name, bp in batched.named_parameters():
                bp.grad[...] = grads[name] * (step + 1)
            opt.step()
            for i, (model, ref_opt) in enumerate(zip(refs, ref_opts)):
                for name, p in model.named_parameters():
                    p.grad[...] = grads[name][i] * (step + 1)
                ref_opt.step()
        for i, model in enumerate(refs):
            ref_state = model.state_dict()
            for name, bp in batched.named_parameters():
                np.testing.assert_array_equal(bp.value[i], ref_state[name])

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.1},
        {"lr": 0.1, "momentum": 0.9},
        {"lr": 0.1, "weight_decay": 0.01},
        {"lr": 0.1, "momentum": 0.5, "weight_decay": 0.01},
    ])
    def test_batched_sgd_matches_sequential_sgd(self, kwargs):
        batched, refs, grads = self._grad_filled_models("sgd")
        opt = BatchedSGD(batched, **kwargs)
        ref_opts = [SGD(m, **kwargs) for m in refs]
        for step in range(2):
            for name, bp in batched.named_parameters():
                bp.grad[...] = grads[name] * (step + 1)
            opt.step()
            for i, (model, ref_opt) in enumerate(zip(refs, ref_opts)):
                for name, p in model.named_parameters():
                    p.grad[...] = grads[name][i] * (step + 1)
                ref_opt.step()
        for i, model in enumerate(refs):
            ref_state = model.state_dict()
            for name, bp in batched.named_parameters():
                np.testing.assert_array_equal(bp.value[i], ref_state[name])

    def test_invalid_hyperparameters(self):
        batched = BatchedModel(MODEL_FACTORIES["mlp"](), 2)
        with pytest.raises(ValueError):
            BatchedAdam(batched, lr=0)
        with pytest.raises(ValueError):
            BatchedAdam(batched, betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            BatchedAdam(batched, eps=0)
        with pytest.raises(ValueError):
            BatchedSGD(batched, lr=-1)
        with pytest.raises(ValueError):
            BatchedSGD(batched, momentum=1.0)
        with pytest.raises(ValueError):
            BatchedSGD(batched, weight_decay=-0.1)


class TestBatchedCrossEntropy:
    def test_matches_sequential_loss_per_slice(self):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((4, 7, 10)) * 3
        targets = rng.integers(0, 10, size=(4, 7))
        losses, grad = batched_cross_entropy(logits, targets)
        ref = CrossEntropyLoss()
        for i in range(4):
            ref_loss, ref_grad = ref(logits[i], targets[i])
            assert losses[i] == pytest.approx(ref_loss, abs=1e-12)
            np.testing.assert_allclose(grad[i], ref_grad, atol=1e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            batched_cross_entropy(np.zeros((2, 3)), np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError):
            batched_cross_entropy(np.zeros((2, 3, 4)), np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            batched_cross_entropy(np.zeros((2, 3, 4)), np.full((2, 3), 9))
