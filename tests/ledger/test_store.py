"""Tests of the SQLite run-ledger store (repro/ledger/store.py)."""

import os
import sqlite3

import numpy as np
import pytest

from repro.ledger import (SCHEMA_VERSION, LedgerCorruptError, LedgerError,
                          LedgerSchemaError, RunLedger, state_sha256,
                          state_to_bytes)


@pytest.fixture
def ledger_path(tmp_path):
    return str(tmp_path / "runs.db")


def make_record(round_index, accuracy=0.5):
    return {"round_index": round_index, "selected_clients": [1, 2],
            "test_accuracy": accuracy}


def make_state(value=1.0):
    return {"layer.weight": np.full((2, 3), value),
            "layer.bias": np.zeros(3)}


class TestLifecycle:
    def test_begin_commit_finish(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {"rounds": 2}, {"seed": 0},
                                      rounds_planned=2)
            info = ledger.run(run_id)
            assert info.status == "running"
            assert not info.is_complete()
            assert info.rounds_committed == 0

            ledger.commit_round(run_id, make_record(0), make_state(), 0.5)
            ledger.commit_round(run_id, make_record(1), make_state(2.0), 0.4)
            ledger.finish_run(run_id, report={"final_accuracy": 0.5})

            info = ledger.run(run_id)
            assert info.is_complete()
            assert info.rounds_committed == 2
            assert info.report == {"final_accuracy": 0.5}
            assert info.wall_clock() is not None

    def test_round_payloads_survive(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 1)
            ledger.commit_round(run_id, make_record(0, accuracy=0.25),
                                make_state())
            rounds = ledger.rounds(run_id)
        assert rounds == [make_record(0, accuracy=0.25)]

    def test_checkpoint_round_trip(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 2)
            ledger.commit_round(run_id, make_record(0), make_state(1.0))
            ledger.commit_round(run_id, make_record(1), make_state(7.0))
            index, state = ledger.checkpoint(run_id)
            assert index == 1
            np.testing.assert_array_equal(state["layer.weight"],
                                          np.full((2, 3), 7.0))
            index, state = ledger.checkpoint(run_id, round_index=0)
            assert index == 0
            np.testing.assert_array_equal(state["layer.weight"],
                                          np.full((2, 3), 1.0))

    def test_reopen_flips_status_back(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 1)
            ledger.finish_run(run_id)
            assert ledger.run(run_id).is_complete()
            ledger.reopen_run(run_id)
            info = ledger.run(run_id)
            assert info.status == "running"
            assert info.finished_at is None

    def test_latest_run_and_listing(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            first = ledger.begin_run("one", {}, {}, 1)
            second = ledger.begin_run("two", {}, {}, 1)
            assert [r.run_id for r in ledger.runs()] == [first, second]
            assert ledger.run().run_id == second

    def test_metadata_columns_round_trip(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run(
                "demo", {"rounds": 1}, {"seed": 3}, 1,
                scenario={"seed": 9}, recipe={"target": "m:f", "kwargs": {}},
                bench={"git_sha": "a" * 40, "cpu_count": 4},
            )
            ledger.set_run_name(run_id, "renamed")
            ledger.attach_report(run_id, {"skipped_rounds": 1})
            info = ledger.run(run_id)
        assert info.name == "renamed"
        assert info.scenario == {"seed": 9}
        assert info.recipe == {"target": "m:f", "kwargs": {}}
        assert info.bench["cpu_count"] == 4
        assert info.report == {"skipped_rounds": 1}

    def test_close_is_idempotent(self, ledger_path):
        ledger = RunLedger(ledger_path)
        ledger.close()
        ledger.close()


class TestAppendOnly:
    def test_recommitting_a_round_raises(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 1)
            ledger.commit_round(run_id, make_record(0), make_state())
            with pytest.raises(LedgerError, match="append-only"):
                ledger.commit_round(run_id, make_record(0), make_state())
            # the original payload is untouched
            assert ledger.rounds(run_id) == [make_record(0)]

    def test_contiguity_gap_is_corruption(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 3)
            ledger.commit_round(run_id, make_record(0), make_state())
            ledger.commit_round(run_id, make_record(2), make_state())
            with pytest.raises(LedgerCorruptError, match="contiguous"):
                ledger.rounds(run_id)


class TestNeverOverwrite:
    def test_not_sqlite_refused(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("definitely not a database")
        with pytest.raises(LedgerCorruptError, match="refusing"):
            RunLedger(path)
        assert path.read_text() == "definitely not a database"

    def test_foreign_sqlite_refused(self, tmp_path):
        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerSchemaError, match="not a run ledger"):
            RunLedger(path)

    def test_wrong_schema_version_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA application_id = 0x44554248")
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerSchemaError, match="refusing to migrate"):
            RunLedger(path)

    def test_missing_file_without_create(self, tmp_path):
        with pytest.raises(LedgerError, match="no ledger"):
            RunLedger(tmp_path / "absent.db", create=False)

    def test_damaged_checkpoint_refused(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            run_id = ledger.begin_run("demo", {}, {}, 1)
            ledger.commit_round(run_id, make_record(0), make_state())
        conn = sqlite3.connect(ledger_path)
        conn.execute("UPDATE rounds SET state = ?",
                     (state_to_bytes(make_state(999.0)),))
        conn.commit()
        conn.close()
        with RunLedger(ledger_path, create=False) as ledger:
            with pytest.raises(LedgerCorruptError, match="SHA-256"):
                ledger.checkpoint(run_id)


class TestCrossProcessVisibility:
    def test_second_connection_sees_committed_rounds(self, ledger_path):
        writer = RunLedger(ledger_path)
        run_id = writer.begin_run("demo", {}, {}, 2)
        writer.commit_round(run_id, make_record(0), make_state())
        reader = RunLedger(ledger_path, create=False)
        try:
            assert reader.round_count(run_id) == 1
            writer.commit_round(run_id, make_record(1), make_state())
            assert reader.round_count(run_id) == 2
        finally:
            reader.close()
            writer.close()

    def test_unknown_run_operations_raise(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            with pytest.raises(LedgerError, match="contains no runs"):
                ledger.run()
            with pytest.raises(LedgerError, match="no run"):
                ledger.run("missing")
            with pytest.raises(LedgerError, match="no run"):
                ledger.finish_run("missing")
            run_id = ledger.begin_run("demo", {}, {}, 1)
            with pytest.raises(LedgerError, match="no committed checkpoint"):
                ledger.checkpoint(run_id)


def test_state_sha256_matches_blob():
    blob = state_to_bytes(make_state())
    assert len(state_sha256(blob)) == 64
    assert state_sha256(blob) == state_sha256(blob)
