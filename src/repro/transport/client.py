"""The asyncio client peer: a :class:`~repro.federated.client.FederatedClient`
behind a socket.

:class:`TransportClient` is the remote half of the service layer: it owns one
local :class:`~repro.federated.client.FederatedClient` (the dataset and the
deterministic local trainer) plus a model factory, connects to a
:class:`~repro.transport.server.SocketTransport` with exponential-backoff
retries, registers, and then serves the protocol loop — every
:class:`~repro.transport.messages.SelectionNotice` is answered with a locally
trained :class:`~repro.transport.messages.ModelDelta` until the server says
:class:`~repro.transport.messages.Shutdown`.

Because :meth:`FederatedClient.local_train` seeds its data loader purely from
``(client seed, round_index)`` and starts from the broadcast global state, a
remote update is bit-identical to the one the in-process executor would have
produced — the property the loopback tests assert end-to-end.

``delay`` / ``delay_round`` simulate a straggler: the client sleeps before
replying, so a server-side ``round_timeout`` turns it into a real
``"straggler"`` partial round (the transport-smoke CI path).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Optional, Tuple

from ..federated.client import FederatedClient
from ..nn.module import Module
from .messages import (
    ErrorNotice,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    encode_message,
)
from .server import TransportError, _read_message

__all__ = ["TransportClient"]


class TransportClient:
    """One federated client served over a TCP connection.

    Parameters mirror the server's :class:`~repro.core.config.TransportConfig`
    knobs where they matter client-side: ``retries`` / ``backoff`` govern the
    connect loop (``backoff * 2**attempt`` sleep between attempts),
    ``max_frame_bytes`` caps inbound frames.

    Example
    -------
    >>> # server side: transport = SocketTransport(...); transport.start()
    >>> # client side (its own thread or process):
    >>> # TransportClient(client, model_factory, *transport.address).run()
    >>> TransportClient.__name__
    'TransportClient'
    """

    def __init__(self, client: FederatedClient,
                 model_factory: Callable[[], Module],
                 host: str, port: int,
                 retries: int = 5, backoff: float = 0.05,
                 max_frame_bytes: int = 1 << 28,
                 delay: float = 0.0, delay_round: Optional[int] = None,
                 uploads: Optional[Iterable[Tuple[str, object]]] = None):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.client = client
        self.model_factory = model_factory
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.max_frame_bytes = max_frame_bytes
        self.delay = delay
        self.delay_round = delay_round
        #: ``(tag, PackedEncryptedVector)`` pairs sent right after Register
        self.uploads = list(uploads or [])
        #: cohort position assigned by the server's RegisterAck
        self.position: Optional[int] = None
        #: the last ProbabilityBroadcast received (round_index, probabilities)
        self.last_probabilities: Optional[Tuple[int, Tuple[float, ...]]] = None
        #: every RoundResult received, in order
        self.round_results: "list[RoundResult]" = []
        #: rounds this client actually trained for
        self.rounds_trained: "list[int]" = []
        #: why the server rejected us, if it did
        self.last_error: Optional[str] = None

    def run(self) -> None:
        """Serve the full protocol loop (blocking; run it on its own thread).

        Connects (with retries), registers, ships any queued encrypted
        uploads, then answers selection notices until shutdown or
        disconnect.

        Example
        -------
        >>> # TransportClient(client, make_model, "127.0.0.1", 9999).run()
        >>> hasattr(TransportClient, "run")
        True
        """
        asyncio.run(self._run_async())

    async def _run_async(self) -> None:
        reader, writer = await self._connect()
        try:
            await self._send(writer, Register(
                client_id=self.client.client_id,
                num_classes=self.client.num_classes,
                num_samples=int(self.client.num_samples),
            ))
            for tag, vector in self.uploads:
                await self._send(writer, PackedCiphertextUpload(
                    client_id=self.client.client_id, tag=tag, vector=vector))
            while True:
                message = await _read_message(reader, self.max_frame_bytes)
                if isinstance(message, Shutdown):
                    break
                await self._handle(writer, message)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # server went away; nothing left to serve
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connect(self):
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                return await asyncio.open_connection(self.host, self.port)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                await asyncio.sleep(self.backoff * (2 ** attempt))
        raise TransportError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    async def _send(self, writer: asyncio.StreamWriter, message) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _handle(self, writer: asyncio.StreamWriter, message) -> None:
        if isinstance(message, RegisterAck):
            self.position = message.position
        elif isinstance(message, ProbabilityBroadcast):
            self.last_probabilities = (message.round_index,
                                       message.probabilities)
        elif isinstance(message, SelectionNotice):
            await self._train_and_reply(writer, message)
        elif isinstance(message, RoundResult):
            self.round_results.append(message)
        elif isinstance(message, ErrorNotice):
            self.last_error = message.detail
        # Register/uploads/deltas are client→server only; ignore echoes

    async def _train_and_reply(self, writer: asyncio.StreamWriter,
                               notice: SelectionNotice) -> None:
        if self.delay > 0 and (self.delay_round is None
                               or self.delay_round == notice.round_index):
            await asyncio.sleep(self.delay)
        model = self.model_factory()
        model.load_state_dict(dict(notice.state))
        state = self.client.local_train(model, notice.config,
                                        round_index=notice.round_index)
        self.rounds_trained.append(notice.round_index)
        await self._send(writer, ModelDelta(
            round_index=notice.round_index,
            client_id=self.client.client_id,
            state=state,
        ))
