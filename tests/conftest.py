"""Pytest configuration shared by the whole tier-1 suite.

Makes ``tests/_hypothesis_support.py`` importable from every test file
(the tests directory is intentionally not a package), mirroring what
``benchmarks/conftest.py`` does for the benchmark helpers.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
