"""Validation tests for the declarative scenario specs."""

import pytest

from repro.scenarios import (
    AvailabilitySpec,
    ChurnSpec,
    DriftSpec,
    DropoutSpec,
    ScenarioSpec,
    StragglerSpec,
)


class TestAvailabilitySpec:
    def test_defaults_are_empty(self):
        spec = AvailabilitySpec()
        assert spec.is_empty()

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            AvailabilitySpec(offline_probability=1.5)
        with pytest.raises(ValueError):
            AvailabilitySpec(offline_probability=-0.1)

    def test_down_rounds_normalised_and_sorted(self):
        spec = AvailabilitySpec(down_rounds={2: [7, 3, 5]})
        assert spec.down_rounds[2] == (3, 5, 7)
        assert not spec.is_empty()

    def test_down_rounds_rejects_duplicates_and_negatives(self):
        with pytest.raises(ValueError):
            AvailabilitySpec(down_rounds={0: (1, 1)})
        with pytest.raises(ValueError):
            AvailabilitySpec(down_rounds={0: (-1,)})
        with pytest.raises(ValueError):
            AvailabilitySpec(down_rounds={-1: (0,)})


class TestChurnSpec:
    def test_defaults_are_empty(self):
        assert ChurnSpec().is_empty()

    def test_leave_must_follow_join(self):
        ChurnSpec(joins={3: 1}, leaves={3: 2})  # fine
        with pytest.raises(ValueError):
            ChurnSpec(joins={3: 5}, leaves={3: 5})
        with pytest.raises(ValueError):
            ChurnSpec(leaves={3: 0})  # implicit join at round 0

    def test_negative_ids_and_rounds_rejected(self):
        with pytest.raises(ValueError):
            ChurnSpec(joins={-1: 0})
        with pytest.raises(ValueError):
            ChurnSpec(joins={0: -1})


class TestStragglerSpec:
    def test_defaults_are_empty(self):
        assert StragglerSpec().is_empty()

    def test_probability_needs_mean_delay(self):
        with pytest.raises(ValueError):
            StragglerSpec(probability=0.5)
        assert not StragglerSpec(probability=0.5, mean_delay=1.0).is_empty()

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            StragglerSpec(probability=0.1, mean_delay=1.0, deadline=0.0)
        assert StragglerSpec(probability=0.1, mean_delay=1.0,
                             deadline=None).deadline is None


class TestDropoutSpec:
    def test_probability_validated(self):
        assert DropoutSpec().is_empty()
        with pytest.raises(ValueError):
            DropoutSpec(probability=2.0)


class TestDriftSpec:
    def test_defaults_are_empty(self):
        assert DriftSpec().is_empty()

    def test_period_with_zero_shift_rejected(self):
        with pytest.raises(ValueError):
            DriftSpec(period=5, shift=0)
        with pytest.raises(ValueError):
            DriftSpec(period=-1)

    def test_key_size_floor(self):
        with pytest.raises(ValueError):
            DriftSpec(period=2, key_size=8)


class TestScenarioSpec:
    def test_default_is_empty(self):
        assert ScenarioSpec().is_empty()

    def test_min_participation_alone_keeps_empty(self):
        # the participation floor is aggregation policy, not a fault source
        assert ScenarioSpec(min_participation=0.5).is_empty()

    def test_any_fault_source_makes_it_non_empty(self):
        assert not ScenarioSpec(dropouts=DropoutSpec(0.1)).is_empty()
        assert not ScenarioSpec(churn=ChurnSpec(joins={0: 1})).is_empty()
        assert not ScenarioSpec(drift=DriftSpec(period=3)).is_empty()
        assert not ScenarioSpec(
            stragglers=StragglerSpec(probability=0.1, mean_delay=1.0)).is_empty()
        assert not ScenarioSpec(
            availability=AvailabilitySpec(offline_probability=0.1)).is_empty()

    def test_component_types_enforced(self):
        with pytest.raises(TypeError):
            ScenarioSpec(dropouts=0.5)
        with pytest.raises(TypeError):
            ScenarioSpec(churn={"joins": {}})

    def test_min_participation_range(self):
        with pytest.raises(ValueError):
            ScenarioSpec(min_participation=1.5)

    def test_seed_must_be_nonnegative_integer(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0.5)

    def test_specs_are_frozen(self):
        spec = ScenarioSpec()
        with pytest.raises(AttributeError):
            spec.seed = 3
