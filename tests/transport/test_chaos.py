"""Chaos proxy tests: deterministic wire faults, and the zero-fault identity.

Two headline contracts from the chaos design:

* **zero-fault identity** — an empty :class:`NetworkSpec` interposes the
  proxy but induces nothing: a proxied socket run is bit-identical
  (``np.array_equal`` on the final global state, exact accuracy equality)
  to the in-process reference;
* **seeded determinism** — with the same seed the proxy damages the same
  frames of the same clients in the same rounds: the induced-event stream
  and the failure records the run produces are identical across repeats.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.scenarios import NetworkSpec, ScenarioSpec
from repro.transport import ChaosProxy, SocketTransport, TransportClient
from repro.transport.messages import Register, encode_message

RECIPE = dict(n_clients=6, participants=3, samples_per_client=12, seed=0)


def make_session(transport=None, scenario=None, rounds=2):
    config = FederatedConfig(
        rounds=rounds, eval_every=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
        transport=transport, scenario=scenario,
    )
    return Session(config).with_recipe("repro.ledger.recipes:quick_mlp",
                                       **RECIPE)


def start_clients(donor, host, port):
    peers, threads = [], []
    for client_id in range(RECIPE["n_clients"]):
        peer = TransportClient(donor.client(client_id),
                               donor.server.new_client_model, host, port)
        thread = threading.Thread(target=peer.run, daemon=True)
        thread.start()
        peers.append(peer)
        threads.append(thread)
    return peers, threads


def join_all(threads, timeout=15.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "client thread leaked past shutdown"


@pytest.fixture
def donor():
    session = make_session()
    simulation = session.build()
    yield simulation
    session.close()


def run_socket_scenario(donor, scenario, round_timeout=30.0,
                        heartbeat_interval=10.0):
    """One full socket run under *scenario*; returns (history, state, proxy)."""
    session = make_session(
        TransportConfig(kind="socket", round_timeout=round_timeout,
                        connect_timeout=15.0,
                        heartbeat_interval=heartbeat_interval),
        scenario=scenario,
    )
    simulation = session.build()
    host, port = simulation.transport.start()
    proxy = simulation.transport.proxy
    assert proxy is not None, "a NetworkSpec must interpose the chaos proxy"
    assert (host, port) == proxy.address
    peers, threads = start_clients(donor, host, port)
    try:
        history = simulation.run()
        state = simulation.server.global_state()
        events = list(proxy.events)
    finally:
        session.close()
    join_all(threads)
    return history, state, events


class TestZeroFaultIdentity:
    def test_empty_network_spec_through_the_proxy_is_bit_identical(
            self, donor):
        reference = make_session()
        ref_history = reference.run().history
        ref_state = reference.simulation.server.global_state()
        reference.close()

        history, state, events = run_socket_scenario(
            donor, ScenarioSpec(network=NetworkSpec()))

        assert events == []
        assert len(history) == len(ref_history) == 2
        for record, ref_record in zip(history.records, ref_history.records):
            assert record.selected_clients == ref_record.selected_clients
            assert record.test_accuracy == ref_record.test_accuracy
            assert record.failures == {}
        for name in ref_state:
            assert np.array_equal(state[name], ref_state[name]), (
                f"proxied run diverged from in-process at {name!r}")


class TestDeterministicFailureRecords:
    def test_partitioned_client_fails_identically_across_repeats(self, donor):
        # learn a client that is actually selected, then partition its
        # uplink: deltas are discarded, every selected round records the
        # same "straggler" failure — byte-identically, three times over
        probe = make_session()
        victim = probe.run().history.records[0].selected_clients[0]
        probe.close()

        scenario = ScenarioSpec(
            network=NetworkSpec(partitions={victim: "to_server"}), seed=11)
        runs = []
        for _ in range(3):
            history, _, events = run_socket_scenario(
                donor, scenario, round_timeout=1.5, heartbeat_interval=0.0)
            failure_records = [
                (r.round_index, dict(r.failures), r.actual_clients,
                 r.aggregation_skipped)
                for r in history.records
            ]
            runs.append((failure_records, events))

        assert runs[0] == runs[1] == runs[2]
        failure_records, events = runs[0]
        # the victim was selected in round 0, its delta was discarded, and
        # the loss surfaced as a straggler (still connected at the deadline)
        assert failure_records[0][1].get(victim) == "straggler"
        assert any(client == victim and kind == "partition"
                   for _, client, _, kind in events)


class _SinkServer:
    """A TCP server that reads and discards everything (never replies)."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen()
        self.address = self.sock.getsockname()
        self._stop = False
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        self.sock.settimeout(0.2)
        conns = []
        while not self._stop:
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(0.2)
            thread = threading.Thread(target=self._drain, args=(conn,),
                                      daemon=True)
            thread.start()
            conns.append(conn)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def _drain(self, conn):
        try:
            while not self._stop:
                try:
                    if not conn.recv(4096):
                        return
                except socket.timeout:
                    continue
        except OSError:
            pass

    def close(self):
        self._stop = True
        try:
            self.sock.close()
        except OSError:
            pass
        self.thread.join(timeout=5.0)


def _drive_proxy(spec, seed, connections=12, frames_per_connection=6):
    """Push a fixed frame schedule through a fresh proxy; return its events.

    The proxy decides frame-by-frame off its stream buffer, so the client
    may fire each connection's frames in one burst: the decision sequence
    depends only on ``(seed, round, client, direction, ordinal)``, never on
    how the bytes were batched on the wire.
    """
    sink = _SinkServer()
    proxy = ChaosProxy(sink.address, spec=spec, seed=seed)
    address = proxy.start()
    try:
        for connection in range(connections):
            burst = b"".join(
                encode_message(Register(connection, 10, index + 1))
                for index in range(frames_per_connection))
            sock = socket.create_connection(address, timeout=5.0)
            try:
                sock.sendall(burst)
            except OSError:
                pass  # the proxy already cut this connection
            finally:
                sock.close()
        # wait for the pumps to finish judging the in-flight frames: the
        # event count is stable once every connection has drained
        deadline = time.monotonic() + 5.0
        previous = -1
        while time.monotonic() < deadline:
            current = len(proxy.events)
            if current == previous:
                break
            previous = current
            time.sleep(0.05)
        return sorted(proxy.events)
    finally:
        proxy.close()
        sink.close()


class TestSeededEventStream:
    SPEC = NetworkSpec(flip_probability=0.25, truncate_probability=0.2,
                       reset_probability=0.2)

    def test_same_seed_same_damage(self):
        first = _drive_proxy(self.SPEC, seed=42)
        second = _drive_proxy(self.SPEC, seed=42)
        assert first == second
        assert first, "the spec's probabilities should induce some faults"
        assert {kind for _, _, _, kind in first} <= {
            "flip", "truncate", "reset"}

    def test_different_seed_different_damage(self):
        first = _drive_proxy(self.SPEC, seed=42)
        second = _drive_proxy(self.SPEC, seed=43)
        assert first != second

    def test_corruption_kinds_map_to_structured_wire_errors(self):
        # a flipped frame relayed to a real transport earns a structured
        # decode failure, not a crash: end-to-end through proxy AND server
        transport = SocketTransport(TransportConfig(
            kind="socket", connect_timeout=10.0))
        upstream = transport.start()
        proxy = ChaosProxy(upstream, spec=NetworkSpec(flip_probability=1.0),
                           seed=5)
        address = proxy.start()
        try:
            sock = socket.create_connection(address, timeout=5.0)
            sock.sendall(encode_message(Register(0, 10, 8)))
            sock.settimeout(2.0)
            try:
                while sock.recv(4096):
                    pass
            except (socket.timeout, ConnectionError, OSError):
                pass
            sock.close()
            deadline = time.monotonic() + 5.0
            while (not transport.decode_failures
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert sum(transport.decode_failures.values()) >= 1
            assert proxy.events and proxy.events[0][3] == "flip"
        finally:
            proxy.close()
            transport.close()
