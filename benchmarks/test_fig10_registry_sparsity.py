"""Figure 10 — the overall registry and the registry-sparsity effect.

Paper setup: the group-1 federation with N = 1000, ρ = 10, EMD_avg = 1.5,
G = {1, 2, 10} and the searched thresholds σ₁ = 0.7, σ₂ = 0.1.  The figure
shows (a) the contents of the overall registry — how many clients fall into
each category — and (b) the average participated class proportion over 100
selections: much flatter than the ρ = 10 global distribution, but minority
classes (8, 9) still sit below the 0.1 uniform share because *no client has
them as a dominating class* (registry sparsity).

This benchmark runs at the paper's federation size and reproduces both
panels: the registry description and the average population proportion, then
checks the sparsity effect (classes with no dominating clients stay the most
under-represented ones).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table
from repro.core import DubheConfig, DubheSelector
from repro.data import EMDTargetPartitioner, half_normal_class_proportions

N_CLIENTS = 1000
K = 20
RHO = 10.0
EMD_AVG = 1.5
REPETITIONS = 100
PAPER_THRESHOLDS = {1: 0.7, 2: 0.1, 10: 0.0}


def paper_scale() -> dict:
    return {"n_clients": 1000, "k": 20, "rho": 10, "emd_avg": 1.5,
            "thresholds": {"sigma_1": 0.7, "sigma_2": 0.1},
            "paper_minority_shares": {"class_8": 0.0753, "class_9": 0.0632}}


@pytest.mark.benchmark(group="fig10")
def test_fig10_registry_and_population(benchmark):
    global_dist = half_normal_class_proportions(10, RHO)
    partition = EMDTargetPartitioner(N_CLIENTS, 128, EMD_AVG, seed=8).partition(global_dist)
    distributions = partition.client_distributions()
    config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                         thresholds=PAPER_THRESHOLDS, participants_per_round=K,
                         tentative_selections=1, seed=8)

    def experiment():
        selector = DubheSelector(distributions, config, seed=8)
        populations = []
        for r in range(REPETITIONS):
            selected = selector.select(r)
            populations.append(distributions[np.asarray(selected)].mean(axis=0))
        return selector, np.mean(populations, axis=0)

    selector, avg_population = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # panel (a): the overall registry
    entries = selector.codebook.describe(selector.overall_registry, max_entries=12)
    print_table("Figure 10(a): overall registry (top categories by client count)", [
        {"category": str(e["category"]), "dominating": e["block"], "clients": int(e["count"])}
        for e in entries
    ])

    # panel (b): average participated class proportion vs global distribution
    rows = []
    for c in range(10):
        rows.append({
            "class": c,
            "global_share": round(float(global_dist[c]), 4),
            "participated_share": round(float(avg_population[c]), 4),
            "uniform_target": 0.1,
        })
    print_table("Figure 10(b): average participated class proportion (100 selections)", rows)

    # the participated proportion is flatter than the global distribution
    uniform = np.full(10, 0.1)
    assert np.abs(avg_population - uniform).sum() < np.abs(global_dist - uniform).sum()

    # registry sparsity: classes that never dominate any client stay the most
    # under-represented ones in the participated proportion
    single_block = selector.overall_registry[selector.codebook.block_slice(1)]
    pair_block = selector.overall_registry[selector.codebook.block_slice(2)]
    dominated_by_class = single_block.copy()
    for j, category in enumerate(selector.codebook.block_categories(2)):
        for c in category:
            dominated_by_class[c] += pair_block[j]
    rare_classes = np.flatnonzero(dominated_by_class == 0)
    print(f"\nclasses never dominating any client: {rare_classes.tolist()}")
    if rare_classes.size:
        assert avg_population[rare_classes].max() < 0.1
    # minority classes remain below their uniform share (the paper's 0.0753/0.0632)
    assert avg_population[9] < 0.1
