"""Multi-time (H-time) tentative selection (§5.3).

Because registries and label distributions travel under additive HE, the
federation can cheaply *rehearse* a selection several times before committing:
each tentative try produces a candidate participant set whose population
distribution is scored (by the agent) against the uniform distribution, and
the best try wins.  The same machinery scores candidate thresholds during the
parameter search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["TentativeTry", "MultiTimeResult", "multi_time_selection"]

T = TypeVar("T")


@dataclass(frozen=True)
class TentativeTry:
    """One tentative draw and its unbiasedness score ``||p_o,h − p_u||₁``."""

    index: int
    candidate: tuple
    score: float
    population: np.ndarray


@dataclass(frozen=True)
class MultiTimeResult:
    """Outcome of an H-time selection."""

    best: TentativeTry
    tries: tuple[TentativeTry, ...]

    @property
    def best_score(self) -> float:
        return self.best.score

    @property
    def scores(self) -> np.ndarray:
        return np.array([t.score for t in self.tries])

    @property
    def mean_population(self) -> np.ndarray:
        """``E_h(p_o,h)`` — the statistic scored by the parameter search."""
        return np.mean([t.population for t in self.tries], axis=0)


def multi_time_selection(
    draw: Callable[[int], Sequence[int]],
    population_of: Callable[[Sequence[int]], np.ndarray],
    uniform: np.ndarray,
    tries: int,
) -> MultiTimeResult:
    """Run *tries* tentative draws and keep the one closest to uniform.

    Parameters
    ----------
    draw:
        ``draw(h)`` produces the candidate participant set of tentative try
        ``h`` (client indices).
    population_of:
        Maps a candidate set to its population distribution ``p_o``.
    uniform:
        The target distribution ``p_u``.
    tries:
        Number of tentative selections ``H``.
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    uniform = np.asarray(uniform, dtype=float)
    results: list[TentativeTry] = []
    for h in range(tries):
        candidate = tuple(draw(h))
        if len(candidate) == 0:
            # an empty draw is maximally biased; keep it only if every try is empty
            population = uniform * 0.0
            score = float(np.abs(uniform).sum()) + 1.0
        else:
            population = np.asarray(population_of(candidate), dtype=float)
            score = float(np.abs(population - uniform).sum())
        results.append(TentativeTry(h, candidate, score, population))
    best = min(results, key=lambda t: t.score)
    return MultiTimeResult(best, tuple(results))
