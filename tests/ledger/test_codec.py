"""Tests of the ledger codecs (repro/ledger/codec.py) and run context."""

import json

import numpy as np
import pytest

from repro.federated.client import LocalTrainingConfig
from repro.federated.simulation import FederatedConfig
from repro.ledger import (RunRecipe, benchmark_context, config_from_dict,
                          config_to_dict, find_bench_files, git_sha,
                          scenario_from_dict, scenario_to_dict,
                          state_from_bytes, state_sha256, state_to_bytes)
from repro.ledger.codec import DETERMINISM_KEYS, LEDGER_FIELDS
from repro.scenarios import ScenarioSpec
from repro.scenarios.spec import (AvailabilitySpec, DriftSpec, DropoutSpec,
                                  StragglerSpec)


class TestStateCodec:
    def test_round_trip_preserves_arrays(self):
        state = {"fc1.weight": np.random.default_rng(0).normal(size=(4, 8)),
                 "fc1.bias": np.zeros(4), "scalar": np.asarray(3.5)}
        rebuilt = state_from_bytes(state_to_bytes(state))
        assert sorted(rebuilt) == sorted(state)
        for key in state:
            np.testing.assert_array_equal(rebuilt[key], state[key])
            assert rebuilt[key].dtype == np.asarray(state[key]).dtype

    def test_sha_detects_corruption(self):
        blob = state_to_bytes({"w": np.ones(4)})
        tampered = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        assert state_sha256(blob) != state_sha256(tampered)


class TestScenarioCodec:
    def test_none_round_trip(self):
        assert scenario_to_dict(None) is None
        assert scenario_from_dict(None) is None

    def test_full_spec_round_trip(self):
        spec = ScenarioSpec(
            availability=AvailabilitySpec(offline_probability=0.1,
                                          down_rounds={3: (0, 7)}),
            stragglers=StragglerSpec(probability=0.2, mean_delay=1.5),
            dropouts=DropoutSpec(probability=0.05),
            drift=DriftSpec(period=4, shift=2),
            min_participation=0.5,
            seed=11,
        )
        assert scenario_from_dict(scenario_to_dict(spec)) == spec

    def test_round_trip_survives_json(self):
        # JSON turns int mapping keys into strings; the spec constructors
        # must normalise them back
        spec = ScenarioSpec(
            availability=AvailabilitySpec(down_rounds={2: (1, 3)}), seed=5)
        payload = json.loads(json.dumps(scenario_to_dict(spec)))
        assert scenario_from_dict(payload) == spec


class TestConfigCodec:
    def test_ledger_fields_are_stripped(self):
        config = FederatedConfig(rounds=3, seed=1, ledger_path="x.db",
                                 run_name="demo")
        payload = config_to_dict(config)
        for name in LEDGER_FIELDS:
            assert name not in payload

    def test_round_trip_with_scenario_and_local(self):
        config = FederatedConfig(
            rounds=4, eval_every=2, seed=9,
            local=LocalTrainingConfig(batch_size=4, local_epochs=2),
            scenario=ScenarioSpec(dropouts=DropoutSpec(probability=0.1),
                                  seed=3),
        )
        payload = json.loads(json.dumps(config_to_dict(config)))
        rebuilt = config_from_dict(payload)
        assert rebuilt == config

    def test_overrides_reattach_ledger_plumbing(self):
        recorded = config_to_dict(FederatedConfig(rounds=3, seed=1))
        rebuilt = config_from_dict(recorded, run_mode="verify",
                                   ledger_path="runs.db",
                                   replay_source_run_id="abc")
        assert rebuilt.run_mode == "verify"
        assert rebuilt.ledger_path == "runs.db"
        assert rebuilt.rounds == 3

    def test_determinism_keys_exist_on_config(self):
        payload = config_to_dict(FederatedConfig())
        for key in DETERMINISM_KEYS:
            assert key in payload


class TestRunRecipe:
    def test_requires_module_colon_function(self):
        with pytest.raises(ValueError, match="package.module:function"):
            RunRecipe("no_colon_here")

    def test_resolve_unknown_attribute(self):
        with pytest.raises(ValueError, match="no attribute"):
            RunRecipe("repro.ledger.recipes:missing").resolve()

    def test_build_validates_components(self):
        recipe = RunRecipe("repro.ledger.recipes:np_prod",
                           {"shape": (2, 2)})
        with pytest.raises(ValueError, match="must return a dict"):
            recipe.build()

    def test_quick_mlp_builds_and_is_deterministic(self):
        recipe = RunRecipe("repro.ledger.recipes:quick_mlp",
                           {"n_clients": 8, "participants": 2, "seed": 4})
        first = recipe.build()
        second = RunRecipe.from_dict(recipe.to_dict()).build()
        np.testing.assert_array_equal(
            first["partition"].client_class_counts,
            second["partition"].client_class_counts)
        assert (tuple(first["selector"].select(0))
                == tuple(second["selector"].select(0)))

    @pytest.mark.parametrize("selector", ["random", "greedy", "dubhe"])
    def test_quick_mlp_selector_variants(self, selector):
        recipe = RunRecipe(
            "repro.ledger.recipes:quick_mlp",
            {"n_clients": 8, "participants": 2, "seed": 0,
             "selector": selector})
        components = recipe.build()
        assert len(components["selector"].select(0)) == 2

    def test_quick_mlp_rejects_unknown_selector(self):
        with pytest.raises(ValueError, match="selector must be"):
            RunRecipe("repro.ledger.recipes:quick_mlp",
                      {"selector": "mystery"}).build()

    def test_dict_round_trip(self):
        recipe = RunRecipe("m.o:d", {"x": 1})
        assert RunRecipe.from_dict(recipe.to_dict()) == recipe


class TestBenchmarkContext:
    def test_context_shape(self):
        context = benchmark_context()
        assert context["cpu_count"] >= 1
        assert isinstance(context["bench"], dict)
        assert context["python"]
        sha = context["git_sha"]
        assert sha is None or len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(tmp_path) is None

    def test_find_bench_files_empty_dir(self, tmp_path):
        assert find_bench_files(tmp_path) == []

    def test_bench_payloads_embedded(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps({"benchmark": "crypto_throughput", "results": []}))
        (tmp_path / "BENCH_huge.json").write_text(
            "[" + ",".join(["1"] * 100_000) + "]")
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        context = benchmark_context(tmp_path)
        assert context["bench"]["BENCH_demo"]["benchmark"] == "crypto_throughput"
        assert context["bench"]["BENCH_huge"]["skipped"] is True
        assert "BENCH_broken" not in context["bench"]
