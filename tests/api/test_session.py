"""The ``repro.api.Session`` facade: one builder for every run mode.

Pins the PR-8 API-redesign contract: a ``Session`` chain drives plain runs,
scenario runs and ledgered runs through one code path; the historical entry
points keep working but emit :class:`DeprecationWarning`; and the builder
refuses ambiguous or out-of-order configuration instead of guessing.
"""

import warnings

import numpy as np
import pytest

from repro import FederatedConfig, FederatedSimulation, Session, run_scenario
from repro.api.session import SessionResult, _amend
from repro.core.config import ExecutorConfig, TransportConfig
from repro.scenarios import ScenarioSpec

RECIPE_TARGET = "repro.ledger.recipes:quick_mlp"
RECIPE_KWARGS = dict(n_clients=8, participants=2, samples_per_client=12,
                     seed=0)


def make_session(config=None):
    return Session(config or FederatedConfig(rounds=2, eval_every=1, seed=0)
                   ).with_recipe(RECIPE_TARGET, **RECIPE_KWARGS)


class TestPlainRuns:
    def test_run_returns_history_only(self):
        with make_session() as session:
            result = session.run()
        assert isinstance(result, SessionResult)
        assert len(result.history) == 2
        assert result.report is None
        assert result.run_id is None

    def test_session_never_emits_the_deprecation_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with make_session() as session:
                session.run()

    def test_with_federation_components_path(self):
        from repro.ledger.codec import RunRecipe

        components = RunRecipe(RECIPE_TARGET, RECIPE_KWARGS).build()
        session = Session(FederatedConfig(rounds=1, seed=0))
        session.with_federation(
            partition=components["partition"],
            generator=components["generator"],
            model_factory=components["model_factory"],
            selector=components["selector"],
            test_set=components["test_set"],
        )
        with session:
            assert len(session.run().history) == 1

    def test_run_matches_the_direct_simulation(self):
        with make_session() as session:
            facade_state = session.run().history
            state_a = session.simulation.server.global_state()
        with make_session() as session:
            simulation = session.build()
            simulation.run()
            state_b = simulation.server.global_state()
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name])
        assert len(facade_state) == 2


class TestScenarioRuns:
    def test_with_scenario_yields_a_report(self):
        config = FederatedConfig(rounds=2, eval_every=1, seed=0)
        with make_session(config).with_scenario(ScenarioSpec(seed=3),
                                                name="churn") as session:
            result = session.run()
        assert result.report is not None
        assert result.report.name == "churn"
        assert result.report.rounds == 2

    def test_run_scenario_wrapper_warns_and_delegates(self):
        with make_session() as session:
            simulation = session.build()
            with pytest.warns(DeprecationWarning, match="repro.api.Session"):
                report = run_scenario(simulation, rounds=1, name="legacy")
        assert report.rounds == 1

    def test_compare_selectors_does_not_warn(self):
        from repro.scenarios import compare_selectors

        def build(selector_name):
            kwargs = dict(RECIPE_KWARGS, selector="random")
            return Session(FederatedConfig(rounds=1, seed=0)).with_recipe(
                RECIPE_TARGET, **kwargs).build()

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            reports = compare_selectors(build, names=("random",), rounds=1)
        assert set(reports) == {"random"}


class TestLedgerRuns:
    def test_with_ledger_records_and_returns_run_id(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with make_session().with_ledger(path, run_name="api") as session:
            result = session.run()
        assert result.run_id

        from repro.ledger.store import RunLedger

        with RunLedger(path, create=False) as ledger:
            info = ledger.run(result.run_id)
            assert info.name == "api"
            assert info.rounds_committed == 2

    def test_ledger_cli_round_trips_a_session_run(self, tmp_path, capsys):
        path = str(tmp_path / "runs.db")
        with make_session().with_ledger(path) as session:
            run_id = session.run().run_id

        from repro.ledger.cli import main

        assert main(["verify", path, run_id]) == 0
        assert run_id in capsys.readouterr().out


class TestBuilderGuards:
    def test_direct_simulation_construction_warns(self):
        from repro.ledger.codec import RunRecipe

        components = RunRecipe(RECIPE_TARGET, RECIPE_KWARGS).build()
        with pytest.warns(DeprecationWarning, match="repro.api.Session"):
            simulation = FederatedSimulation(
                config=FederatedConfig(rounds=1, seed=0), **components)
        simulation.close()

    def test_missing_federation_is_an_error(self):
        with pytest.raises(ValueError, match="with_federation"):
            Session(FederatedConfig()).build()

    def test_unknown_component_kwargs_are_rejected(self):
        with pytest.raises(TypeError, match="unknown component"):
            Session(FederatedConfig(), executor="nope")

    def test_configuring_after_build_is_an_error(self):
        with make_session() as session:
            session.build()
            with pytest.raises(RuntimeError, match="already built"):
                session.with_executor(mode="vectorized")

    def test_with_executor_rejects_both_spellings(self):
        with pytest.raises(TypeError, match="not both"):
            Session().with_executor(ExecutorConfig(), mode="sequential")

    def test_with_transport_sets_the_group(self):
        session = Session().with_transport(kind="socket", round_timeout=5.0)
        assert session.config.transport.kind == "socket"
        assert session.config.transport.round_timeout == 5.0

    def test_build_is_idempotent(self):
        with make_session() as session:
            assert session.build() is session.build()


class TestAmend:
    def test_amend_replaces_a_group_without_alias_conflicts(self):
        config = FederatedConfig(executor_mode="vectorized", rounds=5)
        amended = _amend(config, executor=ExecutorConfig(mode="sequential"))
        assert amended.executor_mode == "sequential"
        assert amended.rounds == 5

    def test_amend_keeps_unrelated_groups(self):
        config = FederatedConfig(
            transport=TransportConfig(kind="socket", round_timeout=9.0))
        amended = _amend(config, rounds=3)
        assert amended.transport.round_timeout == 9.0
        assert amended.rounds == 3
