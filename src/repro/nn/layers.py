"""Dense layers, activations and containers for the NumPy NN substrate.

Each layer implements an explicit ``forward`` that caches whatever the
matching ``backward`` needs.  Gradients are *accumulated* into
``Parameter.grad`` (cleared by ``Module.zero_grad`` / the optimiser), which
matches PyTorch semantics and keeps the local-training loop familiar.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .init import kaiming_uniform, zeros
from .module import Module, Parameter, seeded_rng

__all__ = ["Linear", "ReLU", "Flatten", "Dropout", "Sequential"]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None):
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        rng = seeded_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.value.T
        if self.bias is not None:
            out += self.bias.value  # in place: the matmul result is fresh
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        self.weight.grad += grad_output.T @ x
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training:
            # inference needs no backward mask, and np.maximum matches the
            # masked select for all finite inputs; NaN activations (a model
            # diverged in training) propagate here instead of flushing to 0,
            # either way yielding meaningless predictions
            self._mask = None
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        self._shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        if not 0 <= p < 1:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = p
        self.seed = seed  # retained so the cohort back-end can tell seeded from not
        self.rng = seeded_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Sequential(Module):
    """A chain of layers applied in order."""

    def __init__(self, *layers: Module):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
