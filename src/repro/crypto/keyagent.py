"""The key agent role in Dubhe's secure registration protocol.

In each registration round (§5.1) a randomly chosen client acts as the
*agent*: it generates a fresh Paillier keypair ``(pk_t, sk_t)``, dispatches
it to all clients, and later performs decryption duties (scoring tentative
selections, revealing the aggregated registry to clients).  The server never
receives the private key, so it only ever handles ciphertexts.

:class:`KeyAgent` models that role.  It also counts how many key dispatches
and decryptions it performed, feeding the communication-overhead study.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .paillier import DEFAULT_KEY_SIZE, PaillierKeypair, generate_keypair
from .vector import EncryptedVector

__all__ = ["KeyAgent", "AgentStats"]


@dataclass
class AgentStats:
    """Bookkeeping of the agent's work, used by the overhead benchmarks."""

    keypairs_generated: int = 0
    key_dispatches: int = 0
    decryptions: int = 0
    decrypt_seconds: float = 0.0

    def reset(self) -> None:
        self.keypairs_generated = 0
        self.key_dispatches = 0
        self.decryptions = 0
        self.decrypt_seconds = 0.0


@dataclass
class KeyAgent:
    """A client temporarily playing the agent role.

    Parameters
    ----------
    key_size:
        Paillier modulus size in bits.
    rng:
        Optional seeded random source for reproducible keys.
    """

    key_size: int = DEFAULT_KEY_SIZE
    rng: Optional[random.Random] = None
    stats: AgentStats = field(default_factory=AgentStats)
    _keypair: Optional[PaillierKeypair] = field(default=None, repr=False)

    # -- key management -------------------------------------------------------

    def new_round(self) -> PaillierKeypair:
        """Generate a fresh keypair for a new registration round."""
        self._keypair = generate_keypair(self.key_size, rng=self.rng)
        self.stats.keypairs_generated += 1
        return self._keypair

    @property
    def keypair(self) -> PaillierKeypair:
        """The current round's keypair (generated lazily)."""
        if self._keypair is None:
            self.new_round()
        assert self._keypair is not None
        return self._keypair

    def dispatch_public_key(self, n_clients: int):
        """Dispatch the public key to *n_clients* clients.

        Returns the public key; the dispatch count feeds the communication
        overhead accounting.
        """
        if n_clients < 0:
            raise ValueError("n_clients must be non-negative")
        self.stats.key_dispatches += n_clients
        return self.keypair.public_key

    def dispatch_private_key(self, n_clients: int):
        """Dispatch the private key to clients (clients may decrypt, server may not)."""
        if n_clients < 0:
            raise ValueError("n_clients must be non-negative")
        self.stats.key_dispatches += n_clients
        return self.keypair.private_key

    # -- decryption services ---------------------------------------------------

    def decrypt_vector(self, vector: EncryptedVector) -> np.ndarray:
        """Decrypt an aggregated vector on behalf of the federation."""
        start = time.perf_counter()
        result = vector.decrypt(self.keypair.private_key)
        self.stats.decrypt_seconds += time.perf_counter() - start
        self.stats.decryptions += 1
        return result

    def score_population(self, aggregated: EncryptedVector,
                         uniform: np.ndarray) -> float:
        """Return ``||p_o − p_u||₁`` for an encrypted aggregated distribution.

        The aggregated vector is the homomorphic sum of the selected clients'
        label distributions; dividing by the number of contributors is done by
        the caller (the agent is told the normalised target through
        *uniform*'s scale, so we normalise the decrypted sum here).
        """
        decrypted = self.decrypt_vector(aggregated)
        total = decrypted.sum()
        if total <= 0:
            # no participants: the population distribution is undefined and
            # maximally far from uniform
            return float(np.abs(uniform).sum() + 1.0)
        p_o = decrypted / total
        return float(np.abs(p_o - uniform).sum())
