"""Loss functions for the NumPy NN substrate.

The paper's analysis (§4.2) and all experiments use the cross-entropy loss
for ``C``-class classification, so that is the primary loss here.  The
implementation uses the log-sum-exp trick for numerical stability and
returns both the scalar loss and the gradient with respect to the logits, so
the training loop is a straightforward ``forward → loss → backward``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "CrossEntropyLoss"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax (log-sum-exp trick)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class CrossEntropyLoss:
    """Mean cross-entropy between logits and integer targets.

    Supports optional per-class weights (used by the cost-sensitive-learning
    ablation) — with ``weights=None`` this is the plain loss of the paper.
    """

    def __init__(self, class_weights: np.ndarray | None = None):
        self.class_weights = None if class_weights is None else np.asarray(class_weights, float)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        return self.forward(logits, targets)

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Return ``(loss, grad_logits)``.

        ``grad_logits`` is the gradient of the *mean* loss with respect to the
        logits, ready to feed into ``model.backward``.
        """
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=int)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        n, num_classes = logits.shape
        if targets.shape != (n,):
            raise ValueError(f"targets must have shape ({n},), got {targets.shape}")
        if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
            raise ValueError("targets out of range")
        log_probs = log_softmax(logits)
        probs = np.exp(log_probs)
        picked = log_probs[np.arange(n), targets]
        if self.class_weights is not None:
            if self.class_weights.shape != (num_classes,):
                raise ValueError("class_weights length must equal the number of classes")
            sample_weights = self.class_weights[targets]
        else:
            sample_weights = np.ones(n)
        weight_total = sample_weights.sum()
        loss = float(-(sample_weights * picked).sum() / weight_total)
        grad = probs * sample_weights[:, None]
        grad[np.arange(n), targets] -= sample_weights
        grad /= weight_total
        return loss, grad
