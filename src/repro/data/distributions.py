"""Label-distribution utilities shared across the whole reproduction.

The paper's statistical-heterogeneity machinery is built from three numbers:

* the **Earth Mover's Distance** (1-norm distance) between two label
  distributions, ``EMD(p, q) = ||p − q||₁`` (§3, §4.2),
* the **class imbalance ratio** ``ρ`` — most-frequent class count divided by
  least-frequent class count (§3, §6.1.1), and
* the **average client EMD** ``EMD_avg = Σ_k EMD_k / N`` where
  ``EMD_k = ||p_l^k − p_o||₁`` measures the discrepancy between client ``k``
  and the population distribution (§6.1.1).

All distributions are plain 1-D numpy arrays that sum to one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "validate_distribution",
    "uniform_distribution",
    "normalize_counts",
    "emd",
    "kl_divergence",
    "imbalance_ratio",
    "average_emd",
    "label_counts",
    "label_distribution",
    "population_distribution",
]


def validate_distribution(p: np.ndarray, atol: float = 1e-6) -> np.ndarray:
    """Check that *p* is a proper probability vector and return it as float64."""
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"distribution must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("distribution must be non-empty")
    if np.any(arr < -atol):
        raise ValueError("distribution has negative entries")
    total = arr.sum()
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"distribution sums to {total}, expected 1")
    return arr


def uniform_distribution(num_classes: int) -> np.ndarray:
    """The uniform distribution ``p_u`` over *num_classes* classes."""
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    return np.full(num_classes, 1.0 / num_classes)


def normalize_counts(counts: np.ndarray | Sequence[float]) -> np.ndarray:
    """Turn a non-negative count vector into a distribution.

    A zero count vector maps to the uniform distribution; this mirrors how
    the paper treats an empty selection (no information, assume uniform).
    """
    arr = np.asarray(counts, dtype=float)
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    total = arr.sum()
    if total == 0:
        return uniform_distribution(arr.size)
    return arr / total


def emd(p: np.ndarray, q: np.ndarray) -> float:
    """Earth Mover's Distance as defined in the paper: the 1-norm ``||p − q||₁``.

    For label distributions this lies in ``[0, 2]``.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL divergence ``D(p || q)`` used by the greedy (Astraea-style) selector."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    p_safe = np.clip(p, eps, None)
    q_safe = np.clip(q, eps, None)
    return float(np.sum(p * (np.log(p_safe) - np.log(q_safe))))


def imbalance_ratio(counts: np.ndarray | Sequence[float]) -> float:
    """Class imbalance ratio ρ = max class count / min class count.

    Classes with zero samples make ρ infinite, mirroring the paper's
    definition (the least frequent class count is the denominator).
    """
    arr = np.asarray(counts, dtype=float)
    if arr.size == 0:
        raise ValueError("counts must be non-empty")
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    low = arr.min()
    if low == 0:
        return float("inf")
    return float(arr.max() / low)


def label_counts(labels: np.ndarray | Iterable[int], num_classes: int) -> np.ndarray:
    """Per-class sample counts of an integer label array."""
    arr = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
    if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    return np.bincount(arr.astype(int), minlength=num_classes).astype(float)


def label_distribution(labels: np.ndarray | Iterable[int], num_classes: int) -> np.ndarray:
    """Empirical label distribution ``p_l`` of an integer label array."""
    return normalize_counts(label_counts(labels, num_classes))


def population_distribution(client_distributions: Sequence[np.ndarray]) -> np.ndarray:
    """Population distribution ``p_o`` of a selection (eq. after (2)).

    With FedVC virtual clients every client contributes the same number of
    samples, so ``p_o`` is the plain average of the selected clients' label
    distributions.
    """
    if len(client_distributions) == 0:
        raise ValueError("population of an empty selection is undefined")
    stacked = np.vstack([np.asarray(p, dtype=float) for p in client_distributions])
    return stacked.mean(axis=0)


def average_emd(client_distributions: Sequence[np.ndarray],
                reference: np.ndarray | None = None) -> float:
    """``EMD_avg`` of a federation: mean ``||p_l^k − reference||₁`` over clients.

    When *reference* is omitted the population distribution over **all**
    clients is used, matching §6.1.1 of the paper.
    """
    if len(client_distributions) == 0:
        raise ValueError("average EMD of an empty federation is undefined")
    if reference is None:
        reference = population_distribution(client_distributions)
    return float(np.mean([emd(p, reference) for p in client_distributions]))
