"""Run ledger: record, replay and verify federated runs with crash-safe resume.

Every run recorded through this package lands in one SQLite file holding the
resolved configuration, scenario spec, seeds, per-round selections,
planned-vs-actual participants, failure causes, aggregated metrics,
wall-clock and a checksummed global-state checkpoint per round.  Rounds are
committed append-only, one transaction each, so a killed process loses at
most the round that was in flight.

Three run modes (``FederatedConfig.run_mode``) build on that record:

* ``"live"`` — record as you go (the default whenever ``ledger_path`` is
  set).
* ``"resume"`` — reopen a ledger, restore the last committed checkpoint and
  continue the run bit-identically.
* ``"verify"`` — re-execute a recorded run and assert every round's
  selections and metrics match the record, with a structured diff report on
  mismatch.

The ``python -m repro.ledger`` CLI exposes ``list``, ``show``, ``verify``
and ``resume`` over any ledger file.

Example
-------
>>> from repro.ledger import RunLedger
>>> with RunLedger(":memory:") as ledger:
...     ledger.runs()
[]
"""

from .codec import (DETERMINISM_KEYS, LEDGER_FIELDS, RunRecipe,
                    config_from_dict, config_to_dict, scenario_from_dict,
                    scenario_to_dict, state_from_bytes, state_sha256,
                    state_to_bytes)
from .context import benchmark_context, find_bench_files, git_sha
from .modes import (VERIFY_ATOL, LedgerMismatchError, LedgerSession,
                    LedgerVerificationError, RoundDiff, VerifyReport,
                    diff_records)
from .store import (SCHEMA_VERSION, LedgerCorruptError, LedgerError,
                    LedgerSchemaError, RunInfo, RunLedger)

__all__ = [
    "DETERMINISM_KEYS",
    "LEDGER_FIELDS",
    "LedgerCorruptError",
    "LedgerError",
    "LedgerMismatchError",
    "LedgerSchemaError",
    "LedgerSession",
    "LedgerVerificationError",
    "RoundDiff",
    "RunInfo",
    "RunLedger",
    "RunRecipe",
    "SCHEMA_VERSION",
    "VERIFY_ATOL",
    "VerifyReport",
    "benchmark_context",
    "config_from_dict",
    "config_to_dict",
    "diff_records",
    "find_bench_files",
    "git_sha",
    "scenario_from_dict",
    "scenario_to_dict",
    "state_from_bytes",
    "state_sha256",
    "state_to_bytes",
]
