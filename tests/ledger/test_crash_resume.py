"""Crash-safety integration tests: SIGKILL a recording run, then resume it.

The ledger's core promise is that a killed process loses at most the round
in flight.  These tests exercise it for real: a child process records a run
into a ledger, the test kills it (SIGKILL — no cleanup, no atexit) once
enough rounds are durably committed, then resumes from the surviving file
and asserts the completed trajectory is bit-identical to an uninterrupted
run of the same configuration.  The parallel variant kills the whole
process group, taking the worker fleet down with the scheduler.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.core.config import TransportConfig
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.ledger import LedgerError, RunLedger, RunRecipe
from repro.transport import TransportClient

TOTAL_ROUNDS = 8
KILL_AFTER = 2  # committed rounds to wait for before killing

RECIPE = RunRecipe("repro.ledger.recipes:quick_mlp",
                   {"n_clients": 12, "participants": 3, "seed": 0})

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")

_CHILD = textwrap.dedent("""
    import json, sys, time
    from repro.federated.simulation import FederatedConfig, FederatedSimulation
    from repro.ledger import RunRecipe

    ledger_path, recipe_json, config_json = sys.argv[1:4]
    recipe = RunRecipe.from_dict(json.loads(recipe_json))
    config = FederatedConfig(ledger_path=ledger_path,
                             **json.loads(config_json))
    sim = FederatedSimulation(config=config, recipe=recipe, **recipe.build())
    # the pause after each commit gives the test a window to SIGKILL this
    # process mid-run; it never changes what gets recorded
    sim.run(progress=lambda record: time.sleep(0.1))
""")


def spawn_recorder(ledger_path, **config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0)
    config.update(config_kwargs)
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, ledger_path,
         json.dumps(RECIPE.to_dict()), json.dumps(config)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )


def wait_for_rounds(ledger_path, child, minimum, timeout=120.0):
    """Poll the ledger until *minimum* rounds are durably committed."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                "recorder exited early: "
                + child.stderr.read().decode(errors="replace"))
        try:
            with RunLedger(ledger_path, create=False) as ledger:
                info = ledger.run()
                if info.rounds_committed >= minimum:
                    return info.run_id
        except LedgerError:
            pass  # ledger (or first run row) not created yet
        time.sleep(0.01)
    raise AssertionError(f"no {minimum} committed rounds within {timeout}s")


def kill_group(child, sig=signal.SIGKILL):
    try:
        os.killpg(os.getpgid(child.pid), sig)
    except ProcessLookupError:
        pass
    child.wait(timeout=30)
    if child.stderr is not None:
        child.stderr.close()


def uninterrupted_run(**config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0)
    config.update(config_kwargs)
    with FederatedSimulation(config=FederatedConfig(**config),
                             **RECIPE.build()) as sim:
        history = sim.run()
        return history, sim.server.global_state()


def resume(ledger_path, run_id, **config_kwargs):
    config = dict(rounds=TOTAL_ROUNDS, seed=0, ledger_path=ledger_path,
                  run_mode="resume", replay_source_run_id=run_id)
    config.update(config_kwargs)
    with FederatedSimulation(config=FederatedConfig(**config), recipe=RECIPE,
                             **RECIPE.build()) as sim:
        history = sim.run()
        return history, sim.server.global_state()


@pytest.mark.parametrize("executor_mode", ["sequential", "vectorized"])
def test_sigkill_mid_run_then_resume_bit_identical(tmp_path, executor_mode):
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path, executor_mode=executor_mode)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)

    with RunLedger(ledger_path, create=False) as ledger:
        info = ledger.run(run_id)
        committed = info.rounds_committed
        assert KILL_AFTER <= committed < TOTAL_ROUNDS  # genuinely interrupted
        assert info.status == "running"  # the kill never reached finish_run
        ledger.rounds(run_id)  # the surviving prefix is contiguous and intact

    resumed, resumed_state = resume(ledger_path, run_id,
                                    executor_mode=executor_mode)
    reference, reference_state = uninterrupted_run(
        executor_mode=executor_mode)

    assert len(resumed) == TOTAL_ROUNDS
    np.testing.assert_array_equal(resumed.accuracies(),
                                  reference.accuracies())
    for key in reference_state:
        np.testing.assert_array_equal(resumed_state[key],
                                      reference_state[key])
    with RunLedger(ledger_path, create=False) as ledger:
        final = ledger.run(run_id)
        assert final.is_complete()
        assert final.rounds_committed == TOTAL_ROUNDS


def test_kill_parallel_worker_fleet_then_resume(tmp_path):
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path, executor_mode="parallel",
                           num_workers=2)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)  # SIGKILL the whole group: scheduler AND workers

    # resume on a *different* back-end: determinism holds across executors
    resumed, resumed_state = resume(ledger_path, run_id,
                                    executor_mode="sequential")
    reference, reference_state = uninterrupted_run(executor_mode="sequential")
    np.testing.assert_array_equal(resumed.accuracies(),
                                  reference.accuracies())
    for key in reference_state:
        np.testing.assert_array_equal(resumed_state[key],
                                      reference_state[key])


_SOCKET_CHILD = textwrap.dedent("""
    import json, sys, time
    from repro.core.config import TransportConfig
    from repro.federated.simulation import FederatedConfig, FederatedSimulation
    from repro.ledger import RunRecipe

    ledger_path, recipe_json, port, rounds = sys.argv[1:5]
    recipe = RunRecipe.from_dict(json.loads(recipe_json))
    config = FederatedConfig(
        rounds=int(rounds), seed=0, ledger_path=ledger_path,
        transport=TransportConfig(kind="socket", port=int(port),
                                  round_timeout=60.0, connect_timeout=60.0,
                                  retries=15, backoff=0.25))
    sim = FederatedSimulation(config=config, recipe=recipe, **recipe.build())
    # the pause after each commit gives the test a window to SIGKILL this
    # process mid-run; it never changes what gets recorded
    sim.run(progress=lambda record: time.sleep(0.25))
""")


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def spawn_socket_recorder(ledger_path, port):
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.Popen(
        [sys.executable, "-c", _SOCKET_CHILD, ledger_path,
         json.dumps(RECIPE.to_dict()), str(port), str(TOTAL_ROUNDS)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )


def test_sigkill_socket_server_fleet_reconnects_resume_bit_identical(tmp_path):
    """SIGKILL the *server* of a live socket federation, restart, resume.

    The worst-case production crash: the aggregation server dies mid-round
    with a fleet of remote clients attached.  A new server process resumes
    from the ledger's last committed round on the same port; the orphaned
    clients reconnect (capped, jittered backoff), answer the replayed
    ``SelectionNotice`` from their delta cache or by retraining, and the
    completed trajectory is bit-identical to a run that never crashed.
    """
    reference, reference_state = uninterrupted_run()

    ledger_path = str(tmp_path / "runs.db")
    port = free_port()
    donor = FederatedSimulation(config=FederatedConfig(rounds=TOTAL_ROUNDS,
                                                       seed=0),
                                **RECIPE.build())
    peers, threads = [], []
    for client_id in range(RECIPE.kwargs["n_clients"]):
        # a wide reconnect window (~25s of capped backoff) so the fleet
        # outlives the server's death *and* the replacement's startup
        peer = TransportClient(
            donor.client(client_id), donor.server.new_client_model,
            "127.0.0.1", port, retries=15, backoff=0.1, max_backoff=2.0)
        thread = threading.Thread(target=peer.run, daemon=True)
        peers.append(peer)
        threads.append(thread)

    child = spawn_socket_recorder(ledger_path, port)
    try:
        for thread in threads:
            thread.start()
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)  # no cleanup, no Shutdown frames: sockets just die

    with RunLedger(ledger_path, create=False) as ledger:
        info = ledger.run(run_id)
        assert KILL_AFTER <= info.rounds_committed < TOTAL_ROUNDS
        assert info.status == "running"

    # "restart the server": a new process-equivalent simulation resumes from
    # the ledger on the same port while the orphaned fleet is mid-backoff
    config = FederatedConfig(
        rounds=TOTAL_ROUNDS, seed=0, ledger_path=ledger_path,
        run_mode="resume", replay_source_run_id=run_id,
        transport=TransportConfig(kind="socket", port=port,
                                  round_timeout=60.0, connect_timeout=60.0,
                                  retries=15, backoff=0.25))
    with FederatedSimulation(config=config, recipe=RECIPE,
                             **RECIPE.build()) as sim:
        resumed = sim.run()
        resumed_state = sim.server.global_state()
    donor.close()

    for thread in threads:  # the resume's close() broadcast Shutdown
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "client thread leaked past shutdown"

    assert sum(peer.reconnects for peer in peers) > 0, (
        "no client ever reconnected — the crash was not observed over TCP")
    for peer in peers:
        assert peer.last_error is None, peer.last_error

    assert len(resumed) == TOTAL_ROUNDS
    np.testing.assert_array_equal(resumed.accuracies(),
                                  reference.accuracies())
    for key in reference_state:
        np.testing.assert_array_equal(resumed_state[key],
                                      reference_state[key])
    with RunLedger(ledger_path, create=False) as ledger:
        final = ledger.run(run_id)
        assert final.is_complete()
        assert final.rounds_committed == TOTAL_ROUNDS


def test_verify_after_crash_resume(tmp_path):
    """The resumed run's full record (pre- and post-kill rounds) verifies."""
    ledger_path = str(tmp_path / "runs.db")
    child = spawn_recorder(ledger_path)
    try:
        run_id = wait_for_rounds(ledger_path, child, KILL_AFTER)
    finally:
        kill_group(child)
    resume(ledger_path, run_id)

    config = FederatedConfig(rounds=TOTAL_ROUNDS, seed=0,
                             ledger_path=ledger_path, run_mode="verify",
                             replay_source_run_id=run_id)
    with FederatedSimulation(config=config, recipe=RECIPE,
                             **RECIPE.build()) as sim:
        sim.run()
        report = sim.ledger_session.report
    assert report.ok()
    assert report.rounds_checked == TOTAL_ROUNDS
