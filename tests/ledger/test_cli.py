"""Tests of the ``python -m repro.ledger`` CLI (repro/ledger/cli.py)."""

import json

import pytest

from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.ledger import RunLedger, RunRecipe
from repro.ledger.cli import main

RECIPE = RunRecipe("repro.ledger.recipes:quick_mlp",
                   {"n_clients": 12, "participants": 3, "seed": 0})


@pytest.fixture
def recorded(tmp_path):
    """A ledger holding one partially recorded run (2 of 4 rounds)."""
    path = str(tmp_path / "runs.db")
    config = FederatedConfig(rounds=4, seed=0, ledger_path=path,
                             run_name="cli-test")
    with FederatedSimulation(config=config, recipe=RECIPE,
                             **RECIPE.build()) as sim:
        sim.run(2)
        run_id = sim.ledger_session.run_id
    return path, run_id


class TestList:
    def test_lists_runs(self, recorded, capsys):
        path, run_id = recorded
        assert main(["list", path]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "cli-test" in out
        assert "2/4" in out.replace(" ", "")

    def test_empty_ledger(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        RunLedger(path).close()
        assert main(["list", path]) == 0
        assert "no recorded runs" in capsys.readouterr().out

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert main(["list", str(tmp_path / "absent.db")]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_non_ledger_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "foreign.txt"
        path.write_text("not a ledger")
        assert main(["list", str(path)]) == 2
        assert "refusing" in capsys.readouterr().err
        assert path.read_text() == "not a ledger"


class TestShow:
    def test_shows_rounds_and_config(self, recorded, capsys):
        path, run_id = recorded
        assert main(["show", path, run_id]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "recipe" in out
        assert '"rounds": 4' in out

    def test_unknown_run(self, recorded, capsys):
        path, _ = recorded
        assert main(["show", path, "nope"]) == 2
        assert "no run" in capsys.readouterr().err


class TestResumeAndVerify:
    def test_resume_then_verify_round_trip(self, recorded, capsys):
        path, run_id = recorded
        assert main(["resume", path, run_id]) == 0
        out = capsys.readouterr().out
        assert "ran 2 round(s), 4 total" in out

        assert main(["verify", path, run_id]) == 0
        assert "OK (4 rounds" in capsys.readouterr().out

    def test_verify_other_backend_and_json(self, recorded, capsys):
        path, run_id = recorded
        main(["resume", path, run_id])
        capsys.readouterr()
        assert main(["verify", path, run_id, "--executor-mode",
                     "vectorized", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rounds_checked"] == 4

    def test_verify_failure_exit_code(self, recorded, capsys):
        import sqlite3

        path, run_id = recorded
        conn = sqlite3.connect(path)
        row = conn.execute(
            "SELECT record_json FROM rounds WHERE round_index = 0"
        ).fetchone()
        tampered = json.loads(row[0])
        tampered["population_bias"] = 123.0
        conn.execute("UPDATE rounds SET record_json = ?",
                     (json.dumps(tampered),))
        conn.commit()
        conn.close()
        assert main(["verify", path, run_id]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_recipe_override(self, recorded, capsys):
        path, run_id = recorded
        assert main(["resume", path, run_id, "--recipe",
                     RECIPE.target, "--recipe-kwargs",
                     json.dumps(RECIPE.kwargs)]) == 0

    def test_run_without_recipe_needs_override(self, tmp_path, capsys):
        from repro.ledger import config_to_dict

        path = str(tmp_path / "bare.db")
        with RunLedger(path) as ledger:
            ledger.begin_run("bare",
                             config_to_dict(FederatedConfig(rounds=1, seed=0)),
                             {}, 1)
        assert main(["verify", path]) == 2
        assert "--recipe" in capsys.readouterr().err
