"""The three ledger run modes: LIVE record, crash-safe RESUME, byte VERIFY.

A :class:`LedgerSession` attaches to a
:class:`~repro.federated.FederatedSimulation` whose config names a
``ledger_path``, and drives one of three behaviours chosen by
``config.run_mode``:

* **live** — open a new run row and commit every completed round (record +
  global-state checkpoint) as it happens.  A killed process loses at most
  the in-flight round.
* **resume** — reopen a recorded run, *fast-forward* the deterministic
  state the ledger cannot store (selector RNG, label-drift events, client
  participation counters) by replaying the committed rounds' selections —
  asserting they reproduce the recorded cohorts exactly — then restore the
  server from the last committed checkpoint and continue recording into the
  same run.  Because each round's local training is a pure function of
  (global state, round index, client data), the continuation is
  bit-identical to the uninterrupted run.
* **verify** — re-execute the recorded run from round 0 and compare every
  round's selections and metrics against the committed rows, accumulating a
  structured diff; any mismatch raises :class:`LedgerVerificationError`
  carrying the full :class:`VerifyReport`.

The session never mutates committed history: resume appends, verify only
reads, and a run whose recorded configuration disagrees with the attached
simulation on any determinism-relevant field
(:data:`repro.ledger.codec.DETERMINISM_KEYS`) is refused with a
:class:`LedgerMismatchError` naming the differing keys.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import resolve_run_mode
from ..federated.history import RoundRecord
from .codec import DETERMINISM_KEYS, config_to_dict, scenario_to_dict
from .context import benchmark_context
from .store import LedgerError, RunLedger

__all__ = [
    "LedgerMismatchError",
    "LedgerSession",
    "LedgerVerificationError",
    "RoundDiff",
    "VERIFY_ATOL",
    "VerifyReport",
    "diff_records",
]

#: Tolerance for VERIFY's metric comparisons.  Under float64 every executor
#: back-end is bit-identical, so the observed difference is 0.0; the
#: tolerance exists to make the contract explicit rather than to absorb
#: drift.
VERIFY_ATOL = 1e-10


class LedgerMismatchError(LedgerError):
    """The attached simulation disagrees with the recorded run — on a
    determinism-relevant config field, or (during resume fast-forward) on a
    replayed round's selection."""


class LedgerVerificationError(LedgerError):
    """VERIFY found at least one round whose re-execution differs from the
    recorded run.  ``.report`` carries the structured per-field diff."""

    def __init__(self, report: "VerifyReport"):
        super().__init__(report.format())
        self.report = report


@dataclass(frozen=True)
class RoundDiff:
    """One field of one round that differs between recorded and re-executed.

    Example
    -------
    >>> diff = RoundDiff(round_index=2, field="test_accuracy",
    ...                  expected=0.5, actual=0.75)
    >>> diff.field
    'test_accuracy'
    """

    round_index: int
    field: str
    expected: object
    actual: object

    def format(self) -> str:
        """One human-readable diff line.

        Example
        -------
        >>> RoundDiff(2, "test_accuracy", 0.5, 0.75).format()
        'round 2: test_accuracy recorded 0.5, re-executed 0.75'
        """
        return (f"round {self.round_index}: {self.field} recorded "
                f"{self.expected!r}, re-executed {self.actual!r}")


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one VERIFY pass over a recorded run.

    Example
    -------
    >>> report = VerifyReport(run_id="ab12", rounds_checked=5,
    ...                       mismatches=(), atol=1e-10)
    >>> report.ok()
    True
    """

    run_id: str
    rounds_checked: int
    mismatches: "tuple[RoundDiff, ...]"
    atol: float

    def ok(self) -> bool:
        """Whether the re-execution matched the record on every round.

        Example
        -------
        >>> VerifyReport("x", 3, (), 1e-10).ok()
        True
        """
        return not self.mismatches

    def to_dict(self) -> dict:
        """JSON-ready form (used by the CLI's machine-readable output).

        Example
        -------
        >>> VerifyReport("x", 3, (), 1e-10).to_dict()["ok"]
        True
        """
        return {
            "run_id": self.run_id,
            "rounds_checked": self.rounds_checked,
            "ok": self.ok(),
            "atol": self.atol,
            "mismatches": [
                {"round_index": m.round_index, "field": m.field,
                 "expected": repr(m.expected), "actual": repr(m.actual)}
                for m in self.mismatches
            ],
        }

    def format(self) -> str:
        """A multi-line human-readable report.

        Example
        -------
        >>> print(VerifyReport("ab12", 3, (), 1e-10).format())
        VERIFY run ab12: OK (3 rounds bit-identical within 1e-10)
        """
        if self.ok():
            return (f"VERIFY run {self.run_id}: OK ({self.rounds_checked} "
                    f"rounds bit-identical within {self.atol:g})")
        lines = [f"VERIFY run {self.run_id}: FAILED "
                 f"({len(self.mismatches)} mismatched field(s) over "
                 f"{self.rounds_checked} rounds, tolerance {self.atol:g})"]
        lines.extend("  " + m.format() for m in self.mismatches)
        return "\n".join(lines)


def _canonical(payload) -> object:
    """JSON-normalise a payload (int keys → str, tuples → lists)."""
    return json.loads(json.dumps(payload))


def _scalar_close(expected, actual, atol: float) -> bool:
    if expected is None or actual is None:
        return expected is None and actual is None
    expected, actual = float(expected), float(actual)
    if np.isnan(expected) or np.isnan(actual):
        return np.isnan(expected) and np.isnan(actual)
    return abs(expected - actual) <= atol


def diff_records(expected: RoundRecord, actual: RoundRecord,
                 atol: float = VERIFY_ATOL) -> "list[RoundDiff]":
    """Structured field-by-field diff of a recorded vs re-executed round.

    Exact fields (selections, survivors, failure causes, skip/drift flags)
    must match exactly; floating metrics must agree within *atol*.
    ``fallback_reason`` is deliberately not compared — verifying on a
    different executor back-end may legitimately degrade differently
    without changing any numeric result.  ``decode_failures`` and
    ``disconnects`` are likewise uncompared: they record wall-clock
    link behaviour (heartbeat timing, TCP teardown ordering), which a
    bit-identical re-execution may legitimately observe differently.

    Example
    -------
    >>> import numpy as np
    >>> a = RoundRecord(0, (1, 2), np.array([0.5, 0.5]), 0.0, 0.9)
    >>> diff_records(a, a)
    []
    """
    diffs: list[RoundDiff] = []
    index = expected.round_index

    def exact(field: str, left, right) -> None:
        if left != right:
            diffs.append(RoundDiff(index, field, left, right))

    def close(field: str, left, right) -> None:
        if not _scalar_close(left, right, atol):
            diffs.append(RoundDiff(index, field, left, right))

    exact("round_index", expected.round_index, actual.round_index)
    exact("selected_clients", expected.selected_clients,
          actual.selected_clients)
    exact("actual_clients", expected.actual_clients, actual.actual_clients)
    exact("failures", dict(expected.failures), dict(actual.failures))
    exact("aggregation_skipped", expected.aggregation_skipped,
          actual.aggregation_skipped)
    exact("drift_applied", expected.drift_applied, actual.drift_applied)
    close("population_bias", expected.population_bias,
          actual.population_bias)
    close("actual_population_bias", expected.actual_population_bias,
          actual.actual_population_bias)
    close("test_accuracy", expected.test_accuracy, actual.test_accuracy)
    close("train_loss", expected.train_loss, actual.train_loss)
    close("round_delay", expected.round_delay, actual.round_delay)
    left = np.asarray(expected.population_distribution, dtype=float)
    right = np.asarray(actual.population_distribution, dtype=float)
    if left.shape != right.shape or not np.allclose(left, right, rtol=0.0,
                                                    atol=atol):
        diffs.append(RoundDiff(index, "population_distribution",
                               left.tolist(), right.tolist()))
    return diffs


class LedgerSession:
    """Connects one simulation run to the ledger in its configured mode.

    Constructed by :class:`~repro.federated.FederatedSimulation` when
    ``config.ledger_path`` is set; the simulation calls :meth:`on_round`
    after every completed round and :meth:`on_run_complete` when the loop
    finishes.  See the module docstring for the three modes' semantics.

    Example
    -------
    >>> # sim = FederatedSimulation(..., config=FederatedConfig(
    >>> #     rounds=5, ledger_path="runs.db", seed=0))
    >>> # sim.run()              # LIVE: every round committed as it lands
    >>> # sim.ledger_session.run_id
    """

    def __init__(self, simulation, recipe=None):
        config = simulation.config
        self.mode = resolve_run_mode(config.run_mode)
        self.atol = VERIFY_ATOL
        self.ledger = RunLedger(config.ledger_path,
                                create=self.mode == "live")
        self.run_id: str = ""
        self.start_round = 0
        self.recorded: list[dict] = []
        self.mismatches: list[RoundDiff] = []
        self.report: Optional[VerifyReport] = None
        self._mark = time.perf_counter()
        try:
            if self.mode == "live":
                self._begin_live(simulation, recipe)
            elif self.mode == "resume":
                self._begin_resume(simulation)
            else:
                self._begin_verify(simulation)
        except BaseException:
            self.ledger.close()
            raise

    # -- mode setup ----------------------------------------------------------------

    def _seeds(self, simulation) -> dict:
        config = simulation.config
        return {
            "config_seed": config.seed,
            "scenario_seed": (None if config.scenario is None
                              else config.scenario.seed),
            "selector": getattr(simulation.selector, "name",
                                type(simulation.selector).__name__),
        }

    def _begin_live(self, simulation, recipe) -> None:
        config = simulation.config
        name = config.run_name or self._seeds(simulation)["selector"]
        self.run_id = self.ledger.begin_run(
            name=name,
            config=config_to_dict(config),
            seeds=self._seeds(simulation),
            rounds_planned=config.rounds,
            scenario=scenario_to_dict(config.scenario),
            recipe=None if recipe is None else recipe.to_dict(),
            bench=benchmark_context(),
        )

    def _begin_resume(self, simulation) -> None:
        config = simulation.config
        info = self.ledger.run(config.replay_source_run_id)
        self._check_compatibility(info.config, config)
        self.recorded = self.ledger.rounds(info.run_id)
        self._fast_forward(simulation, self.recorded)
        if self.recorded:
            _, state = self.ledger.checkpoint(info.run_id)
            skipped = sum(1 for r in self.recorded
                          if r.get("aggregation_skipped"))
            simulation.server.restore(
                state,
                rounds_completed=len(self.recorded) - skipped,
                rounds_skipped=skipped,
            )
        self.run_id = info.run_id
        self.start_round = len(self.recorded)
        self.ledger.reopen_run(info.run_id)

    def _begin_verify(self, simulation) -> None:
        config = simulation.config
        info = self.ledger.run(config.replay_source_run_id)
        self._check_compatibility(info.config, config)
        self.recorded = self.ledger.rounds(info.run_id)
        if not self.recorded:
            raise LedgerError(
                f"run {info.run_id!r} has no committed rounds to verify"
            )
        self.run_id = info.run_id

    def _check_compatibility(self, recorded_config: dict, config) -> None:
        current = _canonical(config_to_dict(config))
        recorded = _canonical(recorded_config)
        differing = {
            key: (recorded.get(key), current.get(key))
            for key in DETERMINISM_KEYS
            if recorded.get(key) != current.get(key)
        }
        if differing:
            details = "; ".join(
                f"{key}: recorded {rec!r} != current {cur!r}"
                for key, (rec, cur) in sorted(differing.items())
            )
            raise LedgerMismatchError(
                f"simulation config disagrees with the recorded run on "
                f"determinism-relevant fields — {details}"
            )

    def _fast_forward(self, simulation, recorded: "list[dict]") -> None:
        """Replay committed rounds' deterministic side effects (no training).

        Re-applies label-drift events and re-runs the selector for every
        committed round, asserting each replayed selection reproduces the
        recorded cohort — which both validates determinism and leaves the
        selector's RNG in exactly the state the uninterrupted run would
        have had.  Participation counters and the in-memory history are
        restored from the records.
        """
        for payload in recorded:
            record = RoundRecord.from_dict(payload)
            if record.drift_applied:
                simulation._apply_drift()
            replayed = tuple(
                int(c) for c in simulation.selector.select(record.round_index)
            )
            if replayed != record.selected_clients:
                raise LedgerMismatchError(
                    f"fast-forward of round {record.round_index} selected "
                    f"{replayed}, but the ledger recorded "
                    f"{record.selected_clients}; the selector (or its seed) "
                    "does not match the recorded run"
                )
            for client_id in record.participants:
                simulation.client(client_id).rounds_participated += 1
            simulation.history.append(record)

    # -- run-loop hooks ------------------------------------------------------------

    def run_bounds(self, requested_total: int) -> "tuple[int, int]":
        """The ``(start, stop)`` round range for the simulation's run loop.

        LIVE/RESUME continue from the first uncommitted round up to the
        requested total; VERIFY always re-executes exactly the committed
        rounds, whatever total was requested.

        Example
        -------
        >>> # session.run_bounds(20) -> (7, 20) after 7 committed rounds
        """
        if self.mode == "verify":
            return 0, len(self.recorded)
        return self.start_round, requested_total

    def on_round(self, record: RoundRecord, state) -> None:
        """Handle one freshly completed round (commit it, or verify it).

        Example
        -------
        >>> # called by FederatedSimulation.run_round; not user-facing
        """
        if self.mode == "verify":
            index = record.round_index
            if index < len(self.recorded):
                expected = RoundRecord.from_dict(self.recorded[index])
                self.mismatches.extend(
                    diff_records(expected, record, atol=self.atol))
            return
        now = time.perf_counter()
        self.ledger.commit_round(self.run_id, record.to_dict(), state,
                                 wall_clock=now - self._mark)
        self._mark = now
        self.start_round = record.round_index + 1

    def on_run_complete(self, history) -> None:
        """Finalise the run: mark it completed, or raise the verify report.

        Example
        -------
        >>> # called by FederatedSimulation.run; not user-facing
        """
        if self.mode == "verify":
            self.report = VerifyReport(
                run_id=self.run_id,
                rounds_checked=len(self.recorded),
                mismatches=tuple(self.mismatches),
                atol=self.atol,
            )
            if self.mismatches:
                raise LedgerVerificationError(self.report)
            return
        summary = None
        try:
            summary = history.summary()
        except ValueError:
            pass  # nothing evaluated yet (e.g. zero remaining rounds)
        self.ledger.finish_run(self.run_id, report=summary)

    def attach_report(self, report: dict, name: Optional[str] = None) -> None:
        """Store a scenario report (and optional name) on this run's row.

        VERIFY sessions ignore this — they never write.

        Example
        -------
        >>> # session.attach_report(report.summary(), name="churn-sweep")
        """
        if self.mode == "verify":
            return
        self.ledger.attach_report(self.run_id, report)
        if name is not None:
            self.ledger.set_run_name(self.run_id, name)

    def close(self) -> None:
        """Release the underlying SQLite connection (idempotent).

        Example
        -------
        >>> # session.close()
        """
        self.ledger.close()
