"""Versioned, length-prefixed binary wire format of the service layer.

Every message of the Dubhe round protocol crosses the network as one
**frame**::

    magic(2) | version(1) | msg_type(1) | payload_len(4, big-endian)
    | payload(payload_len) | crc32(4, big-endian)

The CRC covers the header *and* the payload, so a flipped bit anywhere in
the frame is detected before the payload is parsed.  Decoding failures are
*structured*: a frame cut short raises :class:`TruncatedFrameError`, damage
raises :class:`CorruptFrameError`, and a frame stamped with a different
protocol version raises :class:`VersionMismatchError` — a v2 server never
misinterprets a v1 client, it rejects it with a nameable cause.

Payloads are built from three codecs, all exact inverses of their decoders:

* **primitives** — :class:`WireWriter` / :class:`WireReader` serialise
  integers, floats, strings and raw byte strings (big-endian, length
  prefixed);
* **model state** — :func:`state_to_wire` / :func:`state_from_wire` pack a
  state dict (parameter name → ndarray) preserving dtype (float32 and
  float64 alike) and shape bit-for-bit, which is what keeps a localhost
  round bit-identical to the in-process one;
* **packed ciphertexts** — :func:`packed_to_wire` / :func:`packed_from_wire`
  ship a :class:`~repro.crypto.packing.PackedEncryptedVector` together with
  the public key and fixed-point geometry needed to reconstruct it, reusing
  the ciphertext layout of
  :meth:`~repro.crypto.packing.PackedEncryptedVector.to_bytes`.
"""

from __future__ import annotations

import struct
import zlib
from typing import Mapping, Optional

import numpy as np

from ..crypto.packing import PackedEncryptedVector, PackingScheme
from ..crypto.paillier import PaillierPublicKey

__all__ = [
    "CorruptFrameError",
    "DEFAULT_MAX_FRAME_BYTES",
    "TruncatedFrameError",
    "VersionMismatchError",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "WireReader",
    "WireWriter",
    "decode_frame",
    "encode_frame",
    "frame_header",
    "packed_from_wire",
    "packed_to_wire",
    "state_from_wire",
    "state_to_wire",
]

#: Two magic bytes opening every frame ("DU" for Dubhe).
WIRE_MAGIC = b"DU"

#: Protocol version stamped into every frame.  Bump on any incompatible
#: change to the frame layout or a message payload; peers reject frames
#: stamped with any other version (:class:`VersionMismatchError`).
#: v2: session tokens on Register/RegisterAck/ModelDelta and the
#: Heartbeat/HeartbeatAck liveness pair.
WIRE_VERSION = 2

#: Frame layout: magic, version, msg_type, payload length.
_HEADER = struct.Struct(">2sBBI")

#: Trailing CRC32 of header + payload.
_CRC = struct.Struct(">I")

#: Default cap on a single frame's payload (256 MiB).  A corrupt length
#: field must never turn into an unbounded allocation.
DEFAULT_MAX_FRAME_BYTES = 1 << 28


class WireError(ValueError):
    """Base class of every structured wire-format failure."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame does (wait for more bytes)."""


class CorruptFrameError(WireError):
    """The frame is damaged: bad magic, failed CRC, or an impossible field."""


class VersionMismatchError(WireError):
    """The frame was produced by a different protocol version."""


# -- framing -------------------------------------------------------------------------


def encode_frame(msg_type: int, payload: bytes,
                 version: int = WIRE_VERSION) -> bytes:
    """One complete wire frame around *payload*.

    Example
    -------
    >>> frame = encode_frame(7, b"hello")
    >>> decode_frame(frame)[:2]
    (7, b'hello')
    """
    if not 0 <= msg_type <= 255:
        raise ValueError("msg_type must fit one byte")
    header = _HEADER.pack(WIRE_MAGIC, version, msg_type, len(payload))
    crc = zlib.crc32(header) ^ zlib.crc32(payload)
    return header + payload + _CRC.pack(crc & 0xFFFFFFFF)


def frame_header(buffer: bytes,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 ) -> "tuple[int, int]":
    """Parse a frame's header: ``(msg_type, payload_len)``.

    Raises :class:`TruncatedFrameError` when fewer than the 8 header bytes
    are available, and validates magic, version and the payload-length cap
    without needing the payload itself — this is what the asyncio reader
    uses to know how many more bytes to await.

    Example
    -------
    >>> frame_header(encode_frame(3, b"xy"))
    (3, 2)
    """
    if len(buffer) < _HEADER.size:
        raise TruncatedFrameError(
            f"frame header needs {_HEADER.size} bytes, got {len(buffer)}"
        )
    magic, version, msg_type, length = _HEADER.unpack_from(buffer)
    if magic != WIRE_MAGIC:
        raise CorruptFrameError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise VersionMismatchError(
            f"frame speaks protocol version {version}, this peer speaks "
            f"{WIRE_VERSION}"
        )
    if length > max_frame_bytes:
        raise CorruptFrameError(
            f"frame claims a {length}-byte payload, above the "
            f"{max_frame_bytes}-byte cap"
        )
    return msg_type, length


def decode_frame(buffer: bytes,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 ) -> "tuple[int, bytes, int]":
    """Decode one frame from the head of *buffer*.

    Returns ``(msg_type, payload, bytes_consumed)``.  An incomplete frame
    raises :class:`TruncatedFrameError` (retry with more bytes); any damage
    raises :class:`CorruptFrameError`; a foreign protocol version raises
    :class:`VersionMismatchError`.

    Example
    -------
    >>> msg_type, payload, used = decode_frame(encode_frame(9, b"abc") + b"rest")
    >>> (msg_type, payload, used)
    (9, b'abc', 15)
    """
    msg_type, length = frame_header(buffer, max_frame_bytes)
    total = _HEADER.size + length + _CRC.size
    if len(buffer) < total:
        raise TruncatedFrameError(
            f"frame needs {total} bytes, got {len(buffer)}"
        )
    payload = bytes(buffer[_HEADER.size:_HEADER.size + length])
    (expected_crc,) = _CRC.unpack_from(buffer, _HEADER.size + length)
    actual_crc = (zlib.crc32(buffer[:_HEADER.size]) ^ zlib.crc32(payload)) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise CorruptFrameError(
            f"frame CRC mismatch: header+payload hash to {actual_crc:#010x}, "
            f"frame carries {expected_crc:#010x}"
        )
    return msg_type, payload, total


# -- primitive payload codec ---------------------------------------------------------


class WireWriter:
    """Appends primitives to a payload buffer (all big-endian, length-prefixed).

    Example
    -------
    >>> writer = WireWriter()
    >>> writer.u32(7).str("dubhe").f64(0.5)  # doctest: +ELLIPSIS
    <repro.transport.wire.WireWriter object at ...>
    >>> WireReader(writer.getvalue()).u32()
    7
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def u8(self, value: int) -> "WireWriter":
        """Append one unsigned byte.

        Example
        -------
        >>> WireReader(WireWriter().u8(255).getvalue()).u8()
        255
        """
        self._chunks.append(struct.pack(">B", value))
        return self

    def u32(self, value: int) -> "WireWriter":
        """Append one unsigned 32-bit integer.

        Example
        -------
        >>> WireReader(WireWriter().u32(1 << 20).getvalue()).u32()
        1048576
        """
        self._chunks.append(struct.pack(">I", value))
        return self

    def u64(self, value: int) -> "WireWriter":
        """Append one unsigned 64-bit integer.

        Example
        -------
        >>> WireReader(WireWriter().u64(1 << 40).getvalue()).u64()
        1099511627776
        """
        self._chunks.append(struct.pack(">Q", value))
        return self

    def f64(self, value: float) -> "WireWriter":
        """Append one IEEE-754 float64 (NaN round-trips bit-exactly).

        Example
        -------
        >>> WireReader(WireWriter().f64(0.25).getvalue()).f64()
        0.25
        """
        self._chunks.append(struct.pack(">d", value))
        return self

    def opt_f64(self, value: "Optional[float]") -> "WireWriter":
        """Append an optional float64 (presence byte + value).

        Example
        -------
        >>> WireReader(WireWriter().opt_f64(None).getvalue()).opt_f64() is None
        True
        """
        if value is None:
            return self.u8(0)
        return self.u8(1).f64(float(value))

    def bool(self, value: bool) -> "WireWriter":
        """Append one boolean byte.

        Example
        -------
        >>> WireReader(WireWriter().bool(True).getvalue()).bool()
        True
        """
        return self.u8(1 if value else 0)

    def bytes(self, value: bytes) -> "WireWriter":
        """Append a length-prefixed byte string.

        Example
        -------
        >>> WireReader(WireWriter().bytes(b"ct").getvalue()).bytes()
        b'ct'
        """
        self._chunks.append(struct.pack(">I", len(value)))
        self._chunks.append(value)
        return self

    def str(self, value: str) -> "WireWriter":
        """Append a length-prefixed UTF-8 string.

        Example
        -------
        >>> WireReader(WireWriter().str("straggler").getvalue()).str()
        'straggler'
        """
        return self.bytes(value.encode("utf-8"))

    def bigint(self, value: int) -> "WireWriter":
        """Append an arbitrary-precision non-negative integer (ciphertexts, moduli).

        Example
        -------
        >>> WireReader(WireWriter().bigint(1 << 300).getvalue()).bigint() == 1 << 300
        True
        """
        if value < 0:
            raise ValueError("bigint fields are non-negative")
        width = max(1, (value.bit_length() + 7) // 8)
        return self.bytes(value.to_bytes(width, "big"))

    def getvalue(self) -> bytes:
        """The accumulated payload.

        Example
        -------
        >>> WireWriter().u8(1).getvalue()
        b'\\x01'
        """
        return b"".join(self._chunks)


class WireReader:
    """Consumes primitives from a payload buffer, mirroring :class:`WireWriter`.

    Overrunning the buffer raises :class:`CorruptFrameError` — a payload
    that parses short is damage, not a partial read (framing already
    guaranteed the full payload is present).

    Example
    -------
    >>> reader = WireReader(WireWriter().u32(3).str("ok").getvalue())
    >>> reader.u32(), reader.str()
    (3, 'ok')
    """

    def __init__(self, payload: bytes):
        self._payload = payload
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._payload):
            raise CorruptFrameError(
                f"payload overrun: needed {count} bytes at offset "
                f"{self._offset} of a {len(self._payload)}-byte payload"
            )
        view = self._payload[self._offset:self._offset + count]
        self._offset += count
        return view

    def u8(self) -> int:
        """Read one unsigned byte.

        Example
        -------
        >>> WireReader(b"\\x07").u8()
        7
        """
        return struct.unpack(">B", self._take(1))[0]

    def u32(self) -> int:
        """Read one unsigned 32-bit integer.

        Example
        -------
        >>> WireReader(WireWriter().u32(12).getvalue()).u32()
        12
        """
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        """Read one unsigned 64-bit integer.

        Example
        -------
        >>> WireReader(WireWriter().u64(12).getvalue()).u64()
        12
        """
        return struct.unpack(">Q", self._take(8))[0]

    def f64(self) -> float:
        """Read one float64.

        Example
        -------
        >>> WireReader(WireWriter().f64(-1.5).getvalue()).f64()
        -1.5
        """
        return struct.unpack(">d", self._take(8))[0]

    def opt_f64(self) -> "Optional[float]":
        """Read an optional float64 written by :meth:`WireWriter.opt_f64`.

        Example
        -------
        >>> WireReader(WireWriter().opt_f64(2.0).getvalue()).opt_f64()
        2.0
        """
        return self.f64() if self.u8() else None

    def bool(self) -> bool:
        """Read one boolean byte.

        Example
        -------
        >>> WireReader(WireWriter().bool(False).getvalue()).bool()
        False
        """
        return bool(self.u8())

    def bytes(self) -> bytes:
        """Read a length-prefixed byte string.

        Example
        -------
        >>> WireReader(WireWriter().bytes(b"zz").getvalue()).bytes()
        b'zz'
        """
        return bytes(self._take(self.u32()))

    def str(self) -> str:
        """Read a length-prefixed UTF-8 string.

        Example
        -------
        >>> WireReader(WireWriter().str("hi").getvalue()).str()
        'hi'
        """
        try:
            return self.bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptFrameError(f"invalid UTF-8 in string field: {exc}")

    def bigint(self) -> int:
        """Read an arbitrary-precision integer written by :meth:`WireWriter.bigint`.

        Example
        -------
        >>> WireReader(WireWriter().bigint(99).getvalue()).bigint()
        99
        """
        return int.from_bytes(self.bytes(), "big")

    def exhausted(self) -> bool:
        """Whether every payload byte has been consumed.

        Example
        -------
        >>> WireReader(b"").exhausted()
        True
        """
        return self._offset == len(self._payload)


# -- model state ---------------------------------------------------------------------

#: dtypes a model state / delta may carry on the wire (the cohort runtime's
#: float pair plus the integer types evaluation metadata can use)
_STATE_DTYPES = ("float64", "float32", "int64", "int32")


def state_to_wire(state: "Mapping[str, np.ndarray]", writer: Optional[WireWriter] = None) -> bytes:
    """Serialise a state dict preserving dtype and shape bit-for-bit.

    Arrays are shipped big-endian; float32 and float64 parameters both
    round-trip exactly (no casts), which is what keeps the socket transport
    bit-identical to the in-process back-ends.

    Example
    -------
    >>> import numpy as np
    >>> blob = state_to_wire({"w": np.ones((2, 1), dtype=np.float32)})
    >>> state_from_wire(blob)["w"].dtype.name
    'float32'
    """
    out = writer or WireWriter()
    out.u32(len(state))
    for name in state:
        array = np.asarray(state[name])
        if array.dtype.name not in _STATE_DTYPES:
            raise ValueError(
                f"state array {name!r} has dtype {array.dtype.name}; the "
                f"wire format carries {_STATE_DTYPES}"
            )
        out.str(name)
        out.str(array.dtype.name)
        out.u8(array.ndim)
        for dim in array.shape:
            out.u32(dim)
        big = array.astype(array.dtype.newbyteorder(">"), copy=False)
        out.bytes(np.ascontiguousarray(big).tobytes())
    return out.getvalue() if writer is None else b""


def state_from_wire(payload: "bytes | WireReader") -> "dict[str, np.ndarray]":
    """Inverse of :func:`state_to_wire`.

    Example
    -------
    >>> import numpy as np
    >>> state = {"b": np.arange(3, dtype=np.float64)}
    >>> state_from_wire(state_to_wire(state))["b"].tolist()
    [0.0, 1.0, 2.0]
    """
    reader = payload if isinstance(payload, WireReader) else WireReader(payload)
    count = reader.u32()
    state: dict[str, np.ndarray] = {}
    for _ in range(count):
        name = reader.str()
        dtype_name = reader.str()
        if dtype_name not in _STATE_DTYPES:
            raise CorruptFrameError(
                f"state array {name!r} claims dtype {dtype_name!r}"
            )
        ndim = reader.u8()
        shape = tuple(reader.u32() for _ in range(ndim))
        dtype = np.dtype(dtype_name)
        raw = reader.bytes()
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if len(raw) != expected:
            raise CorruptFrameError(
                f"state array {name!r} carries {len(raw)} bytes, shape "
                f"{shape} needs {expected}"
            )
        array = np.frombuffer(raw, dtype=dtype.newbyteorder(">")).reshape(shape)
        state[name] = array.astype(dtype)
    return state


# -- packed ciphertexts --------------------------------------------------------------


def packed_to_wire(vector: PackedEncryptedVector,
                   writer: Optional[WireWriter] = None) -> bytes:
    """Serialise a packed encrypted vector with its full scheme geometry.

    Ships the Paillier modulus, the fixed-point geometry (base, precision,
    per-addend offset bound) and the packing headroom next to the raw
    ciphertexts, so the receiver reconstructs a *compatible* scheme — the
    round-trip preserves ciphertexts, weight and slot layout exactly.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> public, private = generate_keypair(key_size=256)
    >>> vec = PackedEncryptedVector.encrypt(public, [0.5, -0.25])
    >>> packed_from_wire(packed_to_wire(vec)).decrypt(private).tolist()
    [0.5, -0.25]
    """
    out = writer or WireWriter()
    scheme = vector.scheme
    out.bigint(vector.public_key.n)
    out.u32(scheme.vector_length)
    out.u32(scheme.max_weight)
    out.u32(scheme.base)
    out.u32(scheme.precision)
    out.u64(scheme.offset)
    out.u32(scheme.slot_bits)
    out.u32(vector.weight)
    out.u32(len(vector.ciphertexts))
    for ciphertext in vector.ciphertexts:
        out.bigint(ciphertext)
    return out.getvalue() if writer is None else b""


def packed_from_wire(payload: "bytes | WireReader") -> PackedEncryptedVector:
    """Inverse of :func:`packed_to_wire`.

    The scheme is rebuilt from the wire fields and cross-checked: a payload
    whose slot geometry does not reproduce under the shipped base/precision
    is rejected as corrupt rather than silently mis-decoded.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> public, _ = generate_keypair(key_size=256)
    >>> vec = PackedEncryptedVector.encrypt(public, [0.125] * 5)
    >>> len(packed_from_wire(packed_to_wire(vec)))
    5
    """
    reader = payload if isinstance(payload, WireReader) else WireReader(payload)
    n = reader.bigint()
    vector_length = reader.u32()
    max_weight = reader.u32()
    base = reader.u32()
    precision = reader.u32()
    offset = reader.u64()
    slot_bits = reader.u32()
    weight = reader.u32()
    count = reader.u32()
    ciphertexts = [reader.bigint() for _ in range(count)]
    try:
        public_key = PaillierPublicKey(n)
        # max_abs_value reconstructs the offset: offset = ceil(m * scale) + 1
        max_abs_value = (offset - 1) / (base ** precision)
        scheme = PackingScheme(public_key, vector_length,
                               max_weight=max_weight, base=base,
                               precision=precision,
                               max_abs_value=max(max_abs_value, 1e-12))
    except (ValueError, OverflowError) as exc:
        raise CorruptFrameError(f"packed vector geometry is invalid: {exc}")
    if scheme.offset != offset or scheme.slot_bits != slot_bits:
        raise CorruptFrameError(
            f"packed vector geometry does not reproduce: wire "
            f"(offset={offset}, slot_bits={slot_bits}), derived "
            f"(offset={scheme.offset}, slot_bits={scheme.slot_bits})"
        )
    if count != scheme.num_ciphertexts:
        raise CorruptFrameError(
            f"packed vector carries {count} ciphertexts, scheme needs "
            f"{scheme.num_ciphertexts}"
        )
    try:
        return PackedEncryptedVector(scheme, ciphertexts, weight=weight)
    except ValueError as exc:
        raise CorruptFrameError(f"packed vector rejected: {exc}")
