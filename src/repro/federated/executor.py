"""Execution back-ends for per-round local client training.

The paper implements "the training process of participated clients as
parallel processes" on a GPU box.  In this reproduction local updates are
plain NumPy, so three execution modes are offered:

* ``"sequential"`` (default) — deterministic and fastest for small models,
  since NumPy already uses multi-threaded BLAS for the matrix multiplies;
* ``"thread"`` — a thread pool; useful when local updates release the GIL in
  BLAS-heavy layers;
* ``"process"`` — a process pool for genuinely CPU-bound local updates with
  larger models; model states are pickled across the process boundary.

All modes produce identical results for the same inputs: the work items are
pure functions of (client dataset, incoming weights, config).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from ..nn.module import Module
from .client import FederatedClient, LocalTrainingConfig

__all__ = ["LocalUpdateExecutor"]

StateDict = dict[str, np.ndarray]


def _run_local_update(client: FederatedClient, model: Module, global_state: StateDict,
                      config: LocalTrainingConfig, round_index: int) -> StateDict:
    """Worker body: load global weights into the clone and train locally."""
    model.load_state_dict(global_state)
    return client.local_train(model, config, round_index=round_index)


class LocalUpdateExecutor:
    """Run the selected clients' local updates with the chosen back-end."""

    def __init__(self, mode: str = "sequential", max_workers: Optional[int] = None):
        if mode not in ("sequential", "thread", "process"):
            raise ValueError("mode must be 'sequential', 'thread' or 'process'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.mode = mode
        self.max_workers = max_workers

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0) -> list[StateDict]:
        """Train every client in *clients* from *global_state*; return their states."""
        if not clients:
            return []
        if self.mode == "sequential":
            return [
                _run_local_update(client, model_factory(), global_state, config, round_index)
                for client in clients
            ]
        pool_cls = ThreadPoolExecutor if self.mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(_run_local_update, client, model_factory(), global_state,
                            config, round_index)
                for client in clients
            ]
            return [f.result() for f in futures]
