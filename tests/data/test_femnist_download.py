"""Tests of the FEMNIST archive download helper (retry/backoff/timeout)."""

import io
from urllib.error import URLError

import pytest

from repro.data import LEAF_FEMNIST_URL, download_femnist


class FakeNetwork:
    """An injectable urlopen that fails *failures* times, then succeeds."""

    def __init__(self, failures=0, payload=b"archive", chunks=1):
        self.failures = failures
        self.payload = payload
        self.chunks = chunks
        self.calls = []

    def __call__(self, url, timeout):
        self.calls.append((url, timeout))
        if len(self.calls) <= self.failures:
            raise URLError("connection reset")
        return io.BytesIO(self.payload)


class TestDownloadFemnist:
    def test_success_first_try(self, tmp_path):
        network = FakeNetwork()
        dest = download_femnist(tmp_path / "femnist.zip", urlopen=network,
                                sleep=lambda s: None)
        assert dest.read_bytes() == b"archive"
        assert network.calls == [(LEAF_FEMNIST_URL, 30.0)]

    def test_retries_with_exponential_backoff(self, tmp_path):
        network = FakeNetwork(failures=3)
        delays = []
        dest = download_femnist(tmp_path / "f.zip", retries=4, backoff=0.5,
                                urlopen=network, sleep=delays.append)
        assert dest.exists()
        assert len(network.calls) == 4
        assert delays == [0.5, 1.0, 2.0]  # backoff, 2*backoff, 4*backoff

    def test_exhausted_retries_raise_with_cause(self, tmp_path):
        network = FakeNetwork(failures=10)
        delays = []
        with pytest.raises(OSError, match="after 3 attempt"):
            download_femnist(tmp_path / "f.zip", retries=2,
                             urlopen=network, sleep=delays.append)
        assert len(network.calls) == 3
        assert delays == [1.0, 2.0]
        # no partial file left behind masquerading as a download
        assert list(tmp_path.iterdir()) == []

    def test_timeout_is_passed_through(self, tmp_path):
        network = FakeNetwork()
        download_femnist(tmp_path / "f.zip", timeout=7.5, urlopen=network,
                         sleep=lambda s: None)
        assert network.calls[0][1] == 7.5

    def test_existing_file_short_circuits(self, tmp_path):
        dest = tmp_path / "f.zip"
        dest.write_bytes(b"already here")
        network = FakeNetwork()
        out = download_femnist(dest, urlopen=network, sleep=lambda s: None)
        assert out.read_bytes() == b"already here"
        assert network.calls == []

    def test_creates_parent_directories(self, tmp_path):
        dest = tmp_path / "deep" / "nested" / "f.zip"
        download_femnist(dest, urlopen=FakeNetwork(), sleep=lambda s: None)
        assert dest.exists()

    def test_partial_write_is_atomic(self, tmp_path):
        # first attempt dies mid-body; the retry succeeds and the final file
        # holds only the complete payload, with no .part file left behind
        class MidBodyFailure(io.BytesIO):
            def __init__(self):
                super().__init__(b"partial")
                self.reads = 0

            def read(self, size=-1):
                self.reads += 1
                if self.reads == 2:
                    raise OSError("connection dropped mid-body")
                return super().read(size)

        calls = []

        def network(url, timeout):
            calls.append(url)
            return MidBodyFailure() if len(calls) == 1 \
                else io.BytesIO(b"complete archive")

        dest = download_femnist(tmp_path / "f.zip", urlopen=network,
                                sleep=lambda s: None)
        assert dest.read_bytes() == b"complete archive"
        assert not (tmp_path / "f.zip.part").exists()

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retries"):
            download_femnist(tmp_path / "f.zip", retries=-1)
        with pytest.raises(ValueError, match="timeout and backoff"):
            download_femnist(tmp_path / "f.zip", timeout=0.0)
        with pytest.raises(ValueError, match="timeout and backoff"):
            download_femnist(tmp_path / "f.zip", backoff=-1.0)
