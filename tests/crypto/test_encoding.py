"""Tests for fixed-point encoding of floats for Paillier."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.crypto.encoding import DEFAULT_PRECISION, EncodedNumber, FixedPointEncoder
from repro.crypto.paillier import generate_keypair


@pytest.fixture(scope="module")
def pk():
    return generate_keypair(key_size=128, rng=random.Random(11)).public_key


class TestEncoderBasics:
    def test_default_scale(self):
        enc = FixedPointEncoder()
        assert enc.scale == 10**DEFAULT_PRECISION

    def test_encode_decode_float(self):
        enc = FixedPointEncoder()
        assert enc.decode(enc.encode(0.125)) == pytest.approx(0.125, abs=1e-9)

    def test_encode_decode_int(self):
        enc = FixedPointEncoder()
        assert enc.decode(enc.encode(7)) == pytest.approx(7.0)

    def test_encode_negative(self):
        enc = FixedPointEncoder()
        assert enc.decode(enc.encode(-0.4)) == pytest.approx(-0.4, abs=1e-9)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            FixedPointEncoder().encode(True)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            FixedPointEncoder().encode("0.5")

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            FixedPointEncoder(base=1)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            FixedPointEncoder(precision=-1)

    def test_decode_scale_mismatch_rejected(self):
        enc = FixedPointEncoder(precision=6)
        other = EncodedNumber(123, base=10, precision=3)
        with pytest.raises(ValueError):
            enc.decode(other)


class TestEncodedNumberArithmetic:
    def test_addition_is_linear(self):
        enc = FixedPointEncoder()
        a, b = enc.encode(0.3), enc.encode(0.45)
        assert (a + b).decode() == pytest.approx(0.75, abs=1e-9)

    def test_addition_scale_mismatch_rejected(self):
        a = EncodedNumber(1, precision=3)
        b = EncodedNumber(1, precision=4)
        with pytest.raises(ValueError):
            a + b

    def test_add_non_encoded_returns_notimplemented(self):
        assert EncodedNumber(1).__add__(2) is NotImplemented


class TestModularMapping:
    def test_roundtrip_positive(self, pk):
        enc = FixedPointEncoder()
        e = enc.encode(0.62)
        assert enc.from_modular(enc.to_modular(e, pk), pk).decode() == pytest.approx(0.62, abs=1e-9)

    def test_roundtrip_negative(self, pk):
        enc = FixedPointEncoder()
        e = enc.encode(-3.5)
        assert enc.decode_modular(enc.to_modular(e, pk), pk) == pytest.approx(-3.5, abs=1e-9)

    def test_overflow_detected(self, pk):
        enc = FixedPointEncoder(precision=0)
        huge = EncodedNumber(pk.n, base=10, precision=0)
        with pytest.raises(OverflowError):
            enc.to_modular(huge, pk)


@settings(max_examples=scaled_max_examples(200), deadline=None)
@given(x=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False))
def test_property_encode_decode_roundtrip(x):
    """encode → decode recovers the value to within the fixed-point resolution."""
    enc = FixedPointEncoder()
    assert enc.decode(enc.encode(x)) == pytest.approx(x, abs=2.0 / enc.scale)


@settings(max_examples=scaled_max_examples(100), deadline=None)
@given(
    a=st.floats(min_value=0, max_value=1, allow_nan=False),
    b=st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_property_encoding_is_additive(a, b):
    """Fixed-point encoding commutes with addition (up to one rounding ulp)."""
    enc = FixedPointEncoder()
    direct = enc.encode(a + b).decode()
    summed = (enc.encode(a) + enc.encode(b)).decode()
    assert summed == pytest.approx(direct, abs=2.0 / enc.scale)
