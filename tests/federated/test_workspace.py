"""Round-persistent vectorized runtime: workspace reuse, restacking, float32."""

import numpy as np
import pytest

from repro.data.cohort import CohortBuffer, CohortShapeError, DatasetCache
from repro.data.synthetic import make_synthetic_mnist
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.federated.server import FederatedServer
from repro.federated.simulation import FederatedConfig
from repro.federated.workspace import CohortWorkspace
from repro.nn.models import MLP, MnistCNN

TOL = 1e-10


def mlp_factory():
    return MLP(64, 10, hidden=(16,), seed=7)


def cnn_factory():
    return MnistCNN(1, 8, 10, channels=(3, 5), hidden=12, dropout=0.25, seed=7)


def make_clients(n_clients=4, samples_per_class=3, cache=None, lazy=False):
    gen = make_synthetic_mnist(seed=0)
    clients = []
    for k in range(n_clients):
        if lazy:
            def factory(k=k):
                return gen.generate([samples_per_class] * 10,
                                    rng=np.random.default_rng(k))

            clients.append(FederatedClient(k, 10, dataset_factory=factory,
                                           seed=1000 + k, cache=cache))
        else:
            clients.append(FederatedClient(
                k, 10,
                dataset=gen.generate([samples_per_class] * 10,
                                     rng=np.random.default_rng(k)),
                seed=1000 + k,
            ))
    return clients


def run_rounds(executor, clients_per_round, factory, config, server=None):
    """Drive *executor* through one round per entry of *clients_per_round*."""
    server = server or FederatedServer(factory)
    per_round = []
    for r, clients in enumerate(clients_per_round):
        states = executor.run_round(clients, factory, server.global_state(),
                                    config, round_index=r)
        per_round.append([{k: v.copy() for k, v in s.items()} for s in states])
        server.aggregate(states)
    return per_round, server


class TestWorkspaceReuse:
    def test_consecutive_rounds_allocate_no_new_pools(self):
        # the PR's headline regression test: round 2 must run entirely inside
        # round 1's allocations
        clients = make_clients()
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        executor.run_round(clients, mlp_factory, server.global_state(), config,
                           round_index=0)
        workspace = executor.workspace
        assert isinstance(workspace, CohortWorkspace)
        values = workspace.model.flat_values
        grads = workspace.model.flat_grads
        x_buffer = workspace.buffer.x
        optimizer = workspace.optimizer_for(config)
        executor.run_round(clients, mlp_factory, server.global_state(), config,
                           round_index=1)
        assert executor.workspace is workspace
        assert executor.workspace_builds == 1
        assert workspace.model.flat_values is values
        assert workspace.model.flat_grads is grads
        assert workspace.buffer.x is x_buffer
        assert workspace.buffer.allocations == 1
        assert workspace.optimizer_for(config) is optimizer
        assert workspace.rounds_bound >= 2

    def test_stable_selection_restacks_nothing(self):
        clients = make_clients()
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        for r in range(3):
            executor.run_round(clients, mlp_factory, server.global_state(),
                               config, round_index=r)
        buffer = executor.workspace.buffer
        assert buffer.restacked == len(clients)  # round 1 only
        assert buffer.reused == 2 * len(clients)  # rounds 2 and 3

    def test_changed_slots_restack_only_changed(self):
        pool = make_clients(6)
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        executor.run_round(pool[:4], mlp_factory, server.global_state(), config,
                           round_index=0)
        buffer = executor.workspace.buffer
        restacked_before = buffer.restacked
        # swap only the last slot
        executor.run_round(pool[:3] + [pool[5]], mlp_factory,
                           server.global_state(), config, round_index=1)
        assert buffer.restacked == restacked_before + 1
        assert executor.workspace_builds == 1

    def test_cohort_size_change_rebuilds(self):
        pool = make_clients(6)
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        executor.run_round(pool[:4], mlp_factory, server.global_state(), config)
        executor.run_round(pool[:3], mlp_factory, server.global_state(), config)
        assert executor.workspace_builds == 2
        assert executor.workspace.num_clients == 3

    def test_model_change_rebuilds(self):
        clients = make_clients()
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        wide_factory = lambda: MLP(64, 10, hidden=(24,), seed=7)  # noqa: E731
        executor.run_round(clients, mlp_factory,
                           FederatedServer(mlp_factory).global_state(), config)
        executor.run_round(clients, wide_factory,
                           FederatedServer(wide_factory).global_state(), config)
        assert executor.workspace_builds == 2

    def test_optimizer_switch_is_exact(self):
        # adam -> sgd mid-run rebuilds the optimiser, not the workspace
        clients = make_clients()
        executor = LocalUpdateExecutor("vectorized")
        server = FederatedServer(mlp_factory)
        adam = LocalTrainingConfig(learning_rate=1e-3)
        sgd = LocalTrainingConfig(learning_rate=1e-2, optimizer="sgd")
        executor.run_round(clients, mlp_factory, server.global_state(), adam,
                           round_index=0)
        vec = executor.run_round(make_clients(), mlp_factory,
                                 server.global_state(), sgd, round_index=1)
        seq = LocalUpdateExecutor("sequential").run_round(
            make_clients(), mlp_factory, server.global_state(), sgd,
            round_index=1)
        assert executor.workspace_builds == 1
        for a, b in zip(seq, vec):
            for key in a:
                np.testing.assert_allclose(a[key], b[key], atol=TOL, rtol=0)


class TestMultiRoundEquivalence:
    @pytest.mark.parametrize("factory", [mlp_factory, cnn_factory],
                             ids=["mlp", "mnist_cnn"])
    def test_three_rounds_changing_selection_match_sequential(self, factory):
        # >= 3 rounds through ONE persistent vectorized executor, selection
        # changing every round, must match per-round sequential states and the
        # final aggregated model to <= 1e-10
        schedule = [(0, 1, 2), (1, 2, 4), (3, 0, 5)]
        config = LocalTrainingConfig(batch_size=8, local_epochs=1,
                                     learning_rate=1e-3)

        pool_vec = make_clients(6)
        executor = LocalUpdateExecutor("vectorized")
        vec_rounds, vec_server = run_rounds(
            executor, [[pool_vec[i] for i in sel] for sel in schedule],
            factory, config)
        assert executor.last_fallback_reason is None
        assert executor.workspace_builds == 1

        pool_seq = make_clients(6)
        seq_rounds, seq_server = run_rounds(
            LocalUpdateExecutor("sequential"),
            [[pool_seq[i] for i in sel] for sel in schedule], factory, config)

        for seq_states, vec_states in zip(seq_rounds, vec_rounds):
            for a, b in zip(seq_states, vec_states):
                for key in a:
                    np.testing.assert_allclose(a[key], b[key], atol=TOL, rtol=0)
        seq_state = seq_server.global_state()
        vec_state = vec_server.global_state()
        for key in seq_state:
            np.testing.assert_allclose(seq_state[key], vec_state[key],
                                       atol=TOL, rtol=0)

    def test_cached_lazy_clients_reuse_slots_across_rounds(self):
        cache = DatasetCache(8)
        clients = make_clients(4, cache=cache, lazy=True)
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        for r in range(3):
            executor.run_round(clients, mlp_factory, server.global_state(),
                               config, round_index=r)
        # cache keeps the dataset objects alive, so slots stay fresh
        assert executor.workspace.buffer.restacked == 4
        assert cache.misses == 4
        assert cache.hits >= 8


class TestRaggedFallbackThroughWorkspace:
    def test_ragged_round_falls_back_and_workspace_survives(self):
        gen = make_synthetic_mnist(seed=0)
        dense = make_clients(2)
        ragged = [
            dense[0],
            FederatedClient(9, 10, dataset=gen.generate([4] * 10,
                            rng=np.random.default_rng(9)), seed=1009),
        ]
        executor = LocalUpdateExecutor("vectorized")
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)

        executor.run_round(dense, mlp_factory, server.global_state(), config,
                           round_index=0)
        workspace = executor.workspace
        assert executor.last_fallback_reason is None

        vec = executor.run_round(ragged, mlp_factory, server.global_state(),
                                 config, round_index=1)
        assert executor.last_fallback_reason is not None
        seq = LocalUpdateExecutor("sequential").run_round(
            [FederatedClient(0, 10, dataset=ragged[0].dataset, seed=1000),
             FederatedClient(9, 10, dataset=ragged[1].dataset, seed=1009)],
            mlp_factory, server.global_state(), config, round_index=1)
        for a, b in zip(seq, vec):
            for key in a:
                np.testing.assert_allclose(a[key], b[key], atol=TOL, rtol=0)

        # the workspace is intact and serves the next dense round
        vec2 = executor.run_round(dense, mlp_factory, server.global_state(),
                                  config, round_index=2)
        assert executor.last_fallback_reason is None
        assert executor.workspace is workspace
        seq2 = LocalUpdateExecutor("sequential").run_round(
            make_clients(2), mlp_factory, server.global_state(), config,
            round_index=2)
        for a, b in zip(seq2, vec2):
            for key in a:
                np.testing.assert_allclose(a[key], b[key], atol=TOL, rtol=0)


class TestFloat32FastPath:
    def test_states_are_float32_and_close_to_reference(self):
        clients = make_clients()
        config = LocalTrainingConfig(learning_rate=1e-3)
        server = FederatedServer(mlp_factory)
        executor = LocalUpdateExecutor("vectorized", dtype="float32")
        vec = executor.run_round(clients, mlp_factory, server.global_state(),
                                 config, round_index=0)
        assert executor.last_fallback_reason is None
        seq = LocalUpdateExecutor("sequential").run_round(
            make_clients(), mlp_factory, server.global_state(), config,
            round_index=0)
        worst = 0.0
        for a, b in zip(seq, vec):
            for key in a:
                assert b[key].dtype == np.float32
                worst = max(worst, float(np.max(np.abs(a[key] - b[key]))))
        # documented tolerance: single precision tracks the float64 reference
        # to ~1e-5 after one local update, far outside bit-identity
        assert 0.0 < worst < 1e-3

    def test_float32_multi_round_stays_close(self):
        schedule = [(0, 1, 2), (1, 2, 3), (2, 3, 0)]
        config = LocalTrainingConfig(learning_rate=1e-3)
        pool32 = make_clients(4)
        vec_rounds, server32 = run_rounds(
            LocalUpdateExecutor("vectorized", dtype="float32"),
            [[pool32[i] for i in sel] for sel in schedule], mlp_factory, config)
        pool64 = make_clients(4)
        seq_rounds, server64 = run_rounds(
            LocalUpdateExecutor("sequential"),
            [[pool64[i] for i in sel] for sel in schedule], mlp_factory, config)
        a = server64.global_state()
        b = server32.global_state()
        for key in a:
            np.testing.assert_allclose(a[key], b[key], atol=1e-3, rtol=0)

    def test_float32_requires_vectorized_mode(self):
        with pytest.raises(ValueError):
            LocalUpdateExecutor("sequential", dtype="float32")
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="sequential", dtype="float32")

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            LocalUpdateExecutor("vectorized", dtype="float16")
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="vectorized", dtype="int32")

    def test_float32_config_threads_through(self):
        config = FederatedConfig(executor_mode="vectorized", dtype="float32")
        assert config.dtype == "float32"


class TestCohortBuffer:
    def test_rejects_wrong_slot_count(self):
        buffer = CohortBuffer(2)
        (key, ds) = make_clients(1)[0].cohort_slot()
        with pytest.raises(CohortShapeError):
            buffer.stack([(key, ds)])

    def test_ragged_slots_raise(self):
        gen = make_synthetic_mnist(seed=0)
        a = gen.generate([3] * 10, rng=np.random.default_rng(0))
        b = gen.generate([4] * 10, rng=np.random.default_rng(1))
        buffer = CohortBuffer(2)
        with pytest.raises(CohortShapeError):
            buffer.stack([(("a", 0), a), (("b", 0), b)])

    def test_contents_match_datasets(self):
        clients = make_clients(3)
        buffer = CohortBuffer(3)
        x, y = buffer.stack([c.cohort_slot() for c in clients])
        for k, client in enumerate(clients):
            np.testing.assert_array_equal(x[k], client.dataset.x)
            np.testing.assert_array_equal(y[k], client.dataset.y)

    def test_float32_buffer_casts_once(self):
        clients = make_clients(2)
        buffer = CohortBuffer(2, dtype="float32")
        x, _ = buffer.stack([c.cohort_slot() for c in clients])
        assert x.dtype == np.float32
        np.testing.assert_allclose(
            x[0], clients[0].dataset.x.astype(np.float32), rtol=0, atol=0)

    def test_invalid_num_clients(self):
        with pytest.raises(ValueError):
            CohortBuffer(0)
