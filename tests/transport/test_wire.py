"""Property tests of the wire codec (framing, primitives, state, ciphertexts).

The wire format is the trust boundary of the service layer, so its codec is
pinned by hypothesis round-trips rather than examples: arbitrary payloads
frame and unframe exactly; arbitrary model states (float32 and float64
alike, any slot layout) survive bit-for-bit; packed encrypted vectors carry
their scheme geometry; and every damaged frame — truncated, bit-flipped, or
stamped with a foreign protocol version — fails with the matching
*structured* error instead of a misparse.
"""

import numpy as np
import pytest
from _hypothesis_support import scaled_max_examples
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.crypto import generate_keypair
from repro.crypto.packing import PackedEncryptedVector
from repro.transport.wire import (
    CorruptFrameError,
    TruncatedFrameError,
    VersionMismatchError,
    WIRE_VERSION,
    WireError,
    WireReader,
    WireWriter,
    decode_frame,
    encode_frame,
    frame_header,
    packed_from_wire,
    packed_to_wire,
    state_from_wire,
    state_to_wire,
)

KEYPAIR = generate_keypair(key_size=256)

payloads = st.binary(max_size=512)
msg_types = st.integers(min_value=0, max_value=255)

state_dtypes = st.sampled_from(["float64", "float32", "int64", "int32"])


@st.composite
def state_dicts(draw):
    """Arbitrary model states: names → arrays of any supported dtype/shape."""
    names = draw(st.lists(st.text(min_size=1, max_size=16), min_size=0,
                          max_size=4, unique=True))
    state = {}
    for name in names:
        dtype = np.dtype(draw(state_dtypes))
        shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0,
                                    max_size=3)))
        if dtype.kind == "f":
            elements = st.floats(width=8 * dtype.itemsize, allow_nan=False)
        else:
            info = np.iinfo(dtype)
            elements = st.integers(info.min, info.max)
        state[name] = draw(npst.arrays(dtype, shape, elements=elements))
    return state


class TestFraming:
    @given(msg_type=msg_types, payload=payloads)
    @settings(max_examples=scaled_max_examples(100))
    def test_frame_round_trip(self, msg_type, payload):
        frame = encode_frame(msg_type, payload)
        assert decode_frame(frame) == (msg_type, payload, len(frame))
        assert frame_header(frame) == (msg_type, len(payload))

    @given(msg_type=msg_types, payload=payloads, data=st.data())
    @settings(max_examples=scaled_max_examples(100))
    def test_any_truncation_is_a_truncated_frame(self, msg_type, payload,
                                                 data):
        frame = encode_frame(msg_type, payload)
        cut = data.draw(st.integers(0, len(frame) - 1))
        with pytest.raises(TruncatedFrameError):
            decode_frame(frame[:cut])

    @given(msg_type=msg_types, payload=payloads, data=st.data())
    @settings(max_examples=scaled_max_examples(200))
    def test_any_bit_flip_is_a_structured_error(self, msg_type, payload,
                                                data):
        frame = bytearray(encode_frame(msg_type, payload))
        position = data.draw(st.integers(0, len(frame) - 1))
        flip = data.draw(st.integers(1, 255))
        frame[position] ^= flip
        # damage never yields a silent misparse: it either raises one of the
        # structured errors, or (when only the type byte flipped, which the
        # CRC cannot distinguish from an honest different type) still hands
        # back the exact original payload
        try:
            decoded_type, decoded_payload, _ = decode_frame(bytes(frame))
        except (TruncatedFrameError, CorruptFrameError,
                VersionMismatchError):
            return
        assert decoded_payload == payload
        assert decoded_type != msg_type

    @given(msg_type=msg_types, payload=payloads,
           version=st.integers(0, 255).filter(lambda v: v != WIRE_VERSION))
    @settings(max_examples=scaled_max_examples(50))
    def test_cross_version_frames_are_rejected(self, msg_type, payload,
                                               version):
        frame = encode_frame(msg_type, payload, version=version)
        with pytest.raises(VersionMismatchError):
            decode_frame(frame)
        with pytest.raises(VersionMismatchError):
            frame_header(frame)

    def test_oversized_length_is_rejected_before_allocation(self):
        frame = encode_frame(1, b"x" * 64)
        with pytest.raises(CorruptFrameError):
            frame_header(frame, max_frame_bytes=16)

    def test_wire_error_is_a_value_error(self):
        assert issubclass(TruncatedFrameError, WireError)
        assert issubclass(CorruptFrameError, WireError)
        assert issubclass(VersionMismatchError, WireError)
        assert issubclass(WireError, ValueError)


class TestPrimitives:
    @given(values=st.lists(st.integers(0, 2**32 - 1), max_size=8))
    @settings(max_examples=scaled_max_examples(50))
    def test_u32_sequences_round_trip(self, values):
        writer = WireWriter()
        for value in values:
            writer.u32(value)
        reader = WireReader(writer.getvalue())
        assert [reader.u32() for _ in values] == values
        assert reader.exhausted()

    @given(text=st.text(max_size=64), big=st.integers(0, 2**2048),
           flag=st.booleans(), opt=st.none() | st.floats(allow_nan=False))
    @settings(max_examples=scaled_max_examples(100))
    def test_mixed_fields_round_trip(self, text, big, flag, opt):
        payload = (WireWriter().str(text).bigint(big).bool(flag)
                   .opt_f64(opt).getvalue())
        reader = WireReader(payload)
        assert reader.str() == text
        assert reader.bigint() == big
        assert reader.bool() is flag
        assert reader.opt_f64() == opt
        assert reader.exhausted()

    @given(payload=st.binary(max_size=32))
    @settings(max_examples=scaled_max_examples(50))
    def test_overrun_is_corrupt_not_crash(self, payload):
        reader = WireReader(payload)
        with pytest.raises(CorruptFrameError):
            for _ in range(len(payload) + 1):
                reader.u64()

    def test_invalid_utf8_is_corrupt(self):
        with pytest.raises(CorruptFrameError):
            WireReader(WireWriter().bytes(b"\xff\xfe").getvalue()).str()

    def test_negative_bigint_is_rejected_at_write(self):
        with pytest.raises(ValueError):
            WireWriter().bigint(-1)


class TestStateCodec:
    @given(state=state_dicts())
    @settings(max_examples=scaled_max_examples(100),
              suppress_health_check=[HealthCheck.too_slow])
    def test_states_round_trip_bit_for_bit(self, state):
        back = state_from_wire(state_to_wire(state))
        assert set(back) == set(state)
        for name, array in state.items():
            assert back[name].dtype == array.dtype
            assert back[name].shape == array.shape
            assert np.array_equal(back[name], array)

    def test_float_payload_bits_are_preserved(self):
        array = np.array([0.1, -0.2, np.pi], dtype=np.float64)
        back = state_from_wire(state_to_wire({"w": array}))["w"]
        assert back.tobytes() == array.tobytes()

    def test_unsupported_dtype_is_rejected_at_encode(self):
        with pytest.raises(ValueError):
            state_to_wire({"w": np.zeros(2, dtype=np.complex128)})

    def test_short_array_body_is_corrupt(self):
        payload = bytearray(state_to_wire({"w": np.ones(4)}))
        # shrink the trailing raw-bytes length prefix: shape needs 32 bytes
        offset = payload.rindex((32).to_bytes(4, "big"))
        payload[offset:offset + 4] = (24).to_bytes(4, "big")
        with pytest.raises(CorruptFrameError):
            state_from_wire(bytes(payload[:len(payload) - 8]))


class TestPackedCodec:
    @given(data=st.data())
    @settings(max_examples=scaled_max_examples(25),
              suppress_health_check=[HealthCheck.too_slow])
    def test_packed_vectors_round_trip_any_layout(self, data):
        public, private = KEYPAIR
        length = data.draw(st.integers(1, 40))
        max_abs = data.draw(st.sampled_from([0.5, 1.0, 4.0]))
        values = data.draw(st.lists(
            st.floats(-max_abs, max_abs, allow_nan=False, width=32),
            min_size=length, max_size=length))
        vector = PackedEncryptedVector.encrypt(
            public, values,
            max_weight=data.draw(st.sampled_from([1, 10, 100])),
            precision=data.draw(st.sampled_from([4, 6, 8])),
            max_abs_value=max_abs,
        )
        back = packed_from_wire(packed_to_wire(vector))
        assert back.ciphertexts == vector.ciphertexts
        assert back.weight == vector.weight
        assert back.scheme.compatible_with(vector.scheme)
        assert np.allclose(back.decrypt(private), np.asarray(values),
                           atol=10.0 ** -3)

    def test_tampered_geometry_is_corrupt(self):
        public, _ = KEYPAIR
        vector = PackedEncryptedVector.encrypt(public, [0.5, 0.25])
        payload = bytearray(packed_to_wire(vector))
        # the slot_bits field sits right after the u64 offset; nudging it
        # breaks the geometry cross-check
        reader_skip = len(WireWriter().bigint(public.n).getvalue()) + 4 * 4 + 8
        payload[reader_skip + 3] ^= 0x01
        with pytest.raises(CorruptFrameError):
            packed_from_wire(bytes(payload))

    def test_truncated_ciphertext_list_is_corrupt(self):
        public, _ = KEYPAIR
        vector = PackedEncryptedVector.encrypt(public, [1.0] * 8)
        payload = packed_to_wire(vector)
        with pytest.raises(CorruptFrameError):
            packed_from_wire(payload[:len(payload) // 2])
