"""The seeded fault injector that turns a scenario spec into round plans.

:class:`FaultInjector` is the single source of randomness for everything a
:class:`~repro.scenarios.spec.ScenarioSpec` injects.  Determinism is the
contract: every per-client decision (offline, dropout, straggle, delay) is
drawn from a fresh ``numpy`` generator seeded with
``(spec.seed, round_index, client_id)``, so a fault is a pure function of
the scenario, the round and the client — independent of cohort composition,
executor back-end, iteration order, and of any other RNG in the system (the
selector's and the training streams are untouched, which is what preserves
the zero-fault identity).

The injector produces a :class:`RoundPlan` per round: who of the planned
cohort is even reachable (availability/churn — *pre-round* faults, no
compute spent), who will drop out or straggle mid-round, and the simulated
straggler delays.  The executor receives the mid-round part as
:class:`CohortFaults` (positions within the trainable cohort) and applies
the straggler deadline itself, so "partial cohort" is an execution-layer
concern, exactly where a real collection timeout lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from .spec import ScenarioSpec

__all__ = [
    "FAILURE_CAUSES",
    "ClientFault",
    "CohortFaults",
    "FaultInjector",
    "RoundPlan",
]

#: Every cause a client can fail with, in the order they are decided.
#: ``not_joined``/``left``/``offline`` strike before training (no compute
#: spent); ``dropout``/``straggler`` strike mid-round (the client's local
#: compute is wasted, as in a real deployment).
FAILURE_CAUSES = ("not_joined", "left", "offline", "dropout", "straggler")


@dataclass(frozen=True)
class ClientFault:
    """One injected fault: which client failed, why, and (if straggling) how late.

    Example
    -------
    >>> fault = ClientFault(client_id=3, cause="dropout")
    >>> (fault.client_id, fault.cause, fault.delay)
    (3, 'dropout', None)
    """

    client_id: int
    cause: str
    delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cause not in FAILURE_CAUSES:
            raise ValueError(f"cause must be one of {FAILURE_CAUSES}")


@dataclass(frozen=True)
class CohortFaults:
    """Mid-round faults addressed by *position* within the trainable cohort.

    This is what :meth:`repro.federated.LocalUpdateExecutor.run_round`
    consumes: ``dropped`` maps cohort positions to their failure cause
    (currently always ``"dropout"``), ``delays`` maps positions of
    stragglers to their simulated delay in seconds, and ``deadline`` is the
    round's collection deadline — the executor drops stragglers whose delay
    exceeds it (cause ``"straggler"``) and reports the surviving cohort's
    simulated duration.  An empty ``CohortFaults()`` is a guaranteed no-op.

    Example
    -------
    >>> faults = CohortFaults(dropped={1: "dropout"}, delays={0: 3.5}, deadline=2.0)
    >>> sorted(faults.resolve())
    [0, 1]
    >>> CohortFaults().resolve()
    {}
    """

    dropped: Mapping[int, str] = field(default_factory=dict)
    delays: Mapping[int, float] = field(default_factory=dict)
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dropped",
                           {int(p): str(c) for p, c in dict(self.dropped).items()})
        object.__setattr__(self, "delays",
                           {int(p): float(d) for p, d in dict(self.delays).items()})
        if any(d < 0 for d in self.delays.values()):
            raise ValueError("delays must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def resolve(self) -> "dict[int, str]":
        """Final ``position -> cause`` map: dropouts plus timed-out stragglers.

        Example
        -------
        >>> CohortFaults(delays={2: 9.0}, deadline=5.0).resolve()
        {2: 'straggler'}
        """
        failed = dict(self.dropped)
        if self.deadline is not None:
            for position, delay in self.delays.items():
                if position not in failed and delay > self.deadline:
                    failed[position] = "straggler"
        return failed

    def round_delay(self) -> float:
        """Simulated round duration: the slowest *surviving* straggler's delay.

        Example
        -------
        >>> CohortFaults(delays={0: 1.5, 1: 9.0}, deadline=5.0).round_delay()
        1.5
        """
        failed = self.resolve()
        return max((d for p, d in self.delays.items() if p not in failed),
                   default=0.0)


@dataclass(frozen=True)
class RoundPlan:
    """Everything the injector decided about one round.

    ``planned`` is the selector's cohort; ``trainable`` is what is left
    after pre-round faults (availability and churn); ``pre_faults`` records
    those removals; ``dropouts`` and ``delays`` are the mid-round decisions
    (by client id) that :meth:`cohort_faults` re-addresses by position for
    the executor.

    Example
    -------
    >>> plan = RoundPlan(round_index=0, planned=(3, 1, 4), trainable=(1, 4),
    ...                  pre_faults=(ClientFault(3, "offline"),),
    ...                  dropouts=(4,), delays={}, deadline=None)
    >>> plan.cohort_faults().dropped
    {1: 'dropout'}
    """

    round_index: int
    planned: tuple[int, ...]
    trainable: tuple[int, ...]
    pre_faults: tuple[ClientFault, ...]
    dropouts: tuple[int, ...]
    delays: Mapping[int, float]
    deadline: Optional[float]

    def cohort_faults(self) -> CohortFaults:
        """The executor-facing view: faults by position within ``trainable``."""
        position = {client_id: i for i, client_id in enumerate(self.trainable)}
        return CohortFaults(
            dropped={position[c]: "dropout" for c in self.dropouts},
            delays={position[c]: d for c, d in self.delays.items()},
            deadline=self.deadline,
        )

    def failures_by_client(self) -> "dict[int, str]":
        """Every fault already decided, as ``client_id -> cause``.

        Mid-round straggler timeouts are resolved by the executor, so this
        contains pre-round faults and dropouts only.

        Example
        -------
        >>> plan = RoundPlan(0, (1, 2), (2,), (ClientFault(1, "left"),),
        ...                  (), {}, None)
        >>> plan.failures_by_client()
        {1: 'left'}
        """
        failures = {f.client_id: f.cause for f in self.pre_faults}
        failures.update({c: "dropout" for c in self.dropouts})
        return failures


class FaultInjector:
    """Deterministic per-round fault decisions for one scenario.

    Example
    -------
    >>> from repro.scenarios.spec import DropoutSpec, ScenarioSpec
    >>> injector = FaultInjector(ScenarioSpec(dropouts=DropoutSpec(1.0), seed=1))
    >>> plan = injector.plan_round(0, [4, 9])
    >>> plan.trainable, plan.dropouts
    ((4, 9), (4, 9))
    >>> injector.plan_round(0, [4, 9]) == plan  # fully reproducible
    True
    """

    def __init__(self, spec: ScenarioSpec):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError("spec must be a ScenarioSpec")
        self.spec = spec

    @property
    def network(self):
        """The scenario's :class:`~repro.scenarios.spec.NetworkSpec`, if any.

        Network faults are *not* simulated by this injector — they are
        induced on real sockets by :class:`repro.transport.chaos.ChaosProxy`
        (keyed by the same scenario seed); this accessor only exposes the
        spec so transports can pick it up.

        Example
        -------
        >>> from repro.scenarios.spec import ScenarioSpec
        >>> FaultInjector(ScenarioSpec()).network is None
        True
        """
        return self.spec.network

    # -- randomness -------------------------------------------------------------

    def _client_rng(self, round_index: int, client_id: int,
                    stream: int = 0) -> np.random.Generator:
        """The generator a ``(round, client)`` decision stream comes from.

        ``stream`` 0 seeds the availability draw, 1 the mid-round draws
        (dropout, straggle, delay — in that fixed order), so the two fault
        families stay statistically independent of each other.
        """
        return np.random.default_rng(
            [self.spec.seed, round_index, client_id, stream])

    # -- schedule queries --------------------------------------------------------

    def presence(self, client_id: int, round_index: int) -> Optional[str]:
        """Why *client_id* is absent at *round_index* (``None`` when present).

        Example
        -------
        >>> from repro.scenarios.spec import ChurnSpec, ScenarioSpec
        >>> injector = FaultInjector(ScenarioSpec(churn=ChurnSpec(joins={5: 3})))
        >>> injector.presence(5, 0), injector.presence(5, 3)
        ('not_joined', None)
        """
        if round_index < self.spec.churn.joins.get(client_id, 0):
            return "not_joined"
        leave = self.spec.churn.leaves.get(client_id)
        if leave is not None and round_index >= leave:
            return "left"
        return None

    def drift_due(self, round_index: int) -> bool:
        """Whether a drift event fires at the start of *round_index*.

        Example
        -------
        >>> from repro.scenarios.spec import DriftSpec, ScenarioSpec
        >>> injector = FaultInjector(ScenarioSpec(drift=DriftSpec(period=2)))
        >>> [injector.drift_due(r) for r in range(5)]
        [False, False, True, False, True]
        """
        period = self.spec.drift.period
        return period > 0 and round_index > 0 and round_index % period == 0

    # -- the round plan -----------------------------------------------------------

    def plan_round(self, round_index: int, planned: Sequence[int]) -> RoundPlan:
        """Decide every fault of one round for the *planned* cohort.

        Pre-round faults (churn, scheduled and random availability) remove
        clients before any compute is spent; mid-round faults (dropout,
        straggler delays) are decided here but applied by the executor.  A
        client suffers at most one fault, decided in
        :data:`FAILURE_CAUSES` order.

        Example
        -------
        >>> injector = FaultInjector(ScenarioSpec())
        >>> injector.plan_round(0, [2, 7]).trainable
        (2, 7)
        """
        spec = self.spec
        down = spec.availability.down_rounds.get(round_index, ())
        pre_faults: list[ClientFault] = []
        trainable: list[int] = []
        for client_id in planned:
            cause = self.presence(client_id, round_index)
            if cause is None and client_id in down:
                cause = "offline"
            if cause is None and spec.availability.offline_probability > 0:
                rng = self._client_rng(round_index, client_id, stream=0)
                if rng.random() < spec.availability.offline_probability:
                    cause = "offline"
            if cause is None:
                trainable.append(client_id)
            else:
                pre_faults.append(ClientFault(client_id, cause))

        dropouts: list[int] = []
        delays: dict[int, float] = {}
        if spec.dropouts.probability > 0 or spec.stragglers.probability > 0:
            for client_id in trainable:
                rng = self._client_rng(round_index, client_id, stream=1)
                if rng.random() < spec.dropouts.probability:
                    dropouts.append(client_id)
                elif rng.random() < spec.stragglers.probability:
                    delays[client_id] = float(
                        rng.exponential(spec.stragglers.mean_delay))
        return RoundPlan(
            round_index=round_index,
            planned=tuple(int(c) for c in planned),
            trainable=tuple(trainable),
            pre_faults=tuple(pre_faults),
            dropouts=tuple(dropouts),
            delays=delays,
            deadline=spec.stragglers.deadline,
        )
