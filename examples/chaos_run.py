#!/usr/bin/env python
"""Chaos smoke: seeded wire faults over real sockets, reproducibly.

Interposes the ``ChaosProxy`` between a localhost federation and its
transport server and asserts the two headline contracts of the chaos
design end to end:

* **zero-fault identity** — an *empty* ``NetworkSpec`` still routes every
  byte through the proxy, and the run reproduces the in-process reference
  exactly (same cohorts, same accuracies, ``np.array_equal`` on every
  parameter of the final global model);
* **seeded determinism** — a scenario that one-way-partitions a selected
  client is repeated ``--repeats`` times, and every repeat must produce
  byte-identical failure records (the same client fails the same rounds
  for the same cause) and an identical proxy event stream.

Run it with::

    python examples/chaos_run.py
    python examples/chaos_run.py --clients 8 --rounds 3 --repeats 5

Used as the CI chaos-smoke gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.scenarios import NetworkSpec, ScenarioSpec
from repro.transport import TransportClient

RECIPE_TARGET = "repro.ledger.recipes:quick_mlp"


def make_session(args: argparse.Namespace, transport=None,
                 scenario=None) -> Session:
    config = FederatedConfig(
        rounds=args.rounds, eval_every=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
        transport=transport, scenario=scenario,
    )
    return Session(config).with_recipe(
        RECIPE_TARGET, n_clients=args.clients,
        participants=args.participants,
        samples_per_client=args.samples, seed=0)


def start_clients(donor, host, port, n_clients):
    peers, threads = [], []
    for client_id in range(n_clients):
        peer = TransportClient(donor.client(client_id),
                               donor.server.new_client_model, host, port)
        thread = threading.Thread(target=peer.run, daemon=True)
        thread.start()
        peers.append(peer)
        threads.append(thread)
    return peers, threads


def join_all(threads, timeout=30.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "client thread leaked past shutdown"


def run_through_proxy(args: argparse.Namespace, scenario, donor,
                      round_timeout=60.0, heartbeat_interval=10.0):
    """One socket run with the chaos proxy interposed by *scenario*."""
    session = make_session(args, TransportConfig(
        kind="socket", round_timeout=round_timeout, connect_timeout=15.0,
        heartbeat_interval=heartbeat_interval), scenario=scenario)
    simulation = session.build()
    host, port = simulation.transport.start()
    proxy = simulation.transport.proxy
    assert proxy is not None, "a NetworkSpec must interpose the chaos proxy"
    peers, threads = start_clients(donor, host, port, args.clients)
    try:
        history = simulation.run()
        state = simulation.server.global_state()
        events = list(proxy.events)
    finally:
        session.close()
    join_all(threads)
    return history, state, events


def run_zero_fault_identity(args: argparse.Namespace) -> None:
    print(f"zero-fault identity: {args.clients} clients, "
          f"{args.rounds} rounds, every byte through the proxy")
    reference = make_session(args)
    ref_history = reference.run().history
    ref_state = reference.simulation.server.global_state()
    reference.close()

    donor = make_session(args)
    donor_sim = donor.build()
    history, state, events = run_through_proxy(
        args, ScenarioSpec(network=NetworkSpec()), donor_sim)
    donor.close()

    assert events == [], f"an empty NetworkSpec induced faults: {events}"
    assert len(history) == len(ref_history) == args.rounds
    for record, ref_record in zip(history.records, ref_history.records):
        assert record.selected_clients == ref_record.selected_clients
        assert record.test_accuracy == ref_record.test_accuracy
        assert record.failures == {}
        print(f"  round {record.round_index}: accuracy "
              f"{record.test_accuracy:.3f} (== in-process)")
    for name in ref_state:
        assert np.array_equal(state[name], ref_state[name]), (
            f"proxied run diverged from in-process at parameter {name!r}")
    print(f"  OK: bit-identical final model across "
          f"{len(ref_state)} parameters")


def run_deterministic_chaos(args: argparse.Namespace) -> None:
    # learn a client the selector actually picks, then cut its uplink:
    # its deltas are discarded on the wire, every selected round records
    # the same partial-round failure — identically on every repeat
    probe = make_session(args)
    victim = probe.run().history.records[0].selected_clients[0]
    probe.close()
    scenario = ScenarioSpec(
        network=NetworkSpec(partitions={victim: "to_server"}),
        seed=args.chaos_seed)
    print(f"seeded chaos: partitioning client {victim} to_server, "
          f"{args.repeats} repeats (seed {args.chaos_seed})")

    runs = []
    for repeat in range(args.repeats):
        donor = make_session(args)
        donor_sim = donor.build()
        # heartbeats off: probe frames would shift the proxy's per-round
        # frame ordinals with wall-clock timing
        history, _, events = run_through_proxy(
            args, scenario, donor_sim, round_timeout=args.deadline,
            heartbeat_interval=0.0)
        donor.close()
        failures = [(r.round_index, dict(r.failures), r.actual_clients,
                     r.aggregation_skipped) for r in history.records]
        print(f"  repeat {repeat}: failures "
              f"{[f[1] for f in failures]}, {len(events)} proxy events")
        runs.append((failures, events))

    first = runs[0]
    for repeat, other in enumerate(runs[1:], start=1):
        assert other == first, (
            f"repeat {repeat} diverged from repeat 0:\n{other}\n!=\n{first}")
    failures, events = first
    assert failures[0][1].get(victim) == "straggler", (
        f"partitioned client should straggle round 0: {failures[0][1]}")
    assert any(client == victim and kind == "partition"
               for _, client, _, kind in events), events
    print(f"  OK: {args.repeats} repeats byte-identical "
          f"({len(events)} induced faults each)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--participants", type=int, default=3)
    parser.add_argument("--samples", type=int, default=12,
                        help="training samples per client")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3,
                        help="identical-failure-record repeats to demand")
    parser.add_argument("--deadline", type=float, default=2.0,
                        help="round deadline for the partitioned phase")
    parser.add_argument("--chaos-seed", type=int, default=11)
    args = parser.parse_args()

    run_zero_fault_identity(args)
    run_deterministic_chaos(args)
    print("chaos smoke passed")


if __name__ == "__main__":
    main()
