"""Tests for cohort stacking and the bounded LRU dataset cache."""

import numpy as np
import pytest

from repro.data.cohort import Cohort, CohortShapeError, DatasetCache, stack_cohort
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import make_synthetic_mnist
from repro.federated.client import FederatedClient


def dataset(n=6, seed=0, num_classes=4):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.standard_normal((n, 2, 3, 3)).astype(np.float32),
                        rng.integers(0, num_classes, size=n), num_classes=num_classes)


class TestStackCohort:
    def test_shapes_and_values(self):
        datasets = [dataset(seed=s) for s in range(3)]
        cohort = stack_cohort(datasets)
        assert isinstance(cohort, Cohort)
        assert cohort.clients == 3
        assert cohort.samples_per_client == 6
        assert cohort.x.shape == (3, 6, 2, 3, 3)
        assert cohort.y.shape == (3, 6)
        for k, ds in enumerate(datasets):
            np.testing.assert_array_equal(cohort.x[k], ds.x)
            np.testing.assert_array_equal(cohort.y[k], ds.y)

    def test_ragged_sizes_rejected(self):
        with pytest.raises(CohortShapeError):
            stack_cohort([dataset(n=6), dataset(n=7)])

    def test_mismatched_feature_shapes_rejected(self):
        a = dataset(n=4)
        rng = np.random.default_rng(0)
        b = ArrayDataset(rng.standard_normal((4, 1, 3, 3)), rng.integers(0, 4, 4),
                         num_classes=4)
        with pytest.raises(CohortShapeError):
            stack_cohort([a, b])

    def test_empty_cohort_rejected(self):
        with pytest.raises(CohortShapeError):
            stack_cohort([])

    def test_subset_datasets_stack(self):
        parent = dataset(n=10)
        cohort = stack_cohort([parent.subset([0, 1, 2]), parent.subset([3, 4, 5])])
        assert cohort.x.shape[:2] == (2, 3)


class TestDatasetCache:
    def test_hit_returns_same_object(self):
        cache = DatasetCache(4)
        calls = []

        def factory():
            calls.append(1)
            return dataset()

        a = cache.get(0, factory)
        b = cache.get(0, factory)
        assert a is b
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = DatasetCache(2)
        cache.get("a", dataset)
        cache.get("b", dataset)
        cache.get("a", dataset)  # refresh a: b is now least recently used
        cache.get("c", dataset)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_evicted_entry_regenerates_identically(self):
        # deterministic factories make eviction safe: same bits on re-entry
        cache = DatasetCache(1)
        first = cache.get(0, lambda: dataset(seed=5))
        cache.get(1, lambda: dataset(seed=6))  # evicts client 0
        again = cache.get(0, lambda: dataset(seed=5))
        assert first is not again
        np.testing.assert_array_equal(first.x, again.x)
        np.testing.assert_array_equal(first.y, again.y)

    def test_clear(self):
        cache = DatasetCache(2)
        cache.get(0, dataset)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DatasetCache(0)


class TestClientCacheIntegration:
    def test_cached_client_does_not_pin_dataset(self):
        gen = make_synthetic_mnist(seed=0)
        cache = DatasetCache(1)
        calls = []

        def factory_for(k):
            def factory():
                calls.append(k)
                return gen.generate([2] * 10, rng=np.random.default_rng(k))

            return factory

        a = FederatedClient(0, 10, dataset_factory=factory_for(0), cache=cache)
        b = FederatedClient(1, 10, dataset_factory=factory_for(1), cache=cache)
        _ = a.dataset
        _ = a.dataset  # cache hit, no regeneration
        assert calls == [0]
        _ = b.dataset  # evicts client 0 (capacity 1)
        first = a.dataset  # regenerated deterministically
        assert calls == [0, 1, 0]
        np.testing.assert_array_equal(
            first.x, gen.generate([2] * 10, rng=np.random.default_rng(0)).x
        )

    def test_eager_dataset_ignores_cache(self):
        cache = DatasetCache(1)
        ds = dataset(num_classes=10)
        client = FederatedClient(0, 10, dataset=ds, cache=cache)
        assert client.dataset is ds
        assert len(cache) == 0
