"""Tests for Module/Parameter plumbing: state dicts, flattening, cloning."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.models import MLP
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_value_and_grad_shapes_match(self):
        p = Parameter(np.ones((3, 2)))
        assert p.shape == (3, 2)
        assert p.grad.shape == (3, 2)
        assert p.size == 6

    def test_zero_grad(self):
        p = Parameter(np.ones(4))
        p.grad += 3.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, np.zeros(4))


class TestParameterDiscovery:
    def test_named_parameters_of_nested_model(self):
        model = MLP(8, 3, hidden=(5,), seed=0)
        names = [name for name, _ in model.named_parameters()]
        assert "net.layers.1.weight" in names
        assert "net.layers.1.bias" in names
        assert len(names) == 4  # two linear layers x (weight, bias)

    def test_num_parameters(self):
        model = MLP(8, 3, hidden=(5,), seed=0)
        assert model.num_parameters() == 8 * 5 + 5 + 5 * 3 + 3

    def test_zero_grad_clears_all(self):
        model = MLP(4, 2, hidden=(3,), seed=0)
        for p in model.parameters():
            p.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_children_iterates_submodules(self):
        seq = Sequential(Linear(3, 2, seed=0), ReLU())
        assert len(list(seq.children())) == 2


class TestStateDict:
    def test_roundtrip(self):
        a = MLP(6, 4, hidden=(5,), seed=0)
        b = MLP(6, 4, hidden=(5,), seed=1)
        assert not np.allclose(a.flatten_parameters(), b.flatten_parameters())
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.flatten_parameters(), b.flatten_parameters())

    def test_state_dict_is_a_copy(self):
        model = MLP(4, 2, seed=0)
        state = model.state_dict()
        first_key = next(iter(state))
        state[first_key][:] = 99.0
        assert not np.allclose(dict(model.named_parameters())[first_key].value, 99.0)

    def test_missing_key_rejected(self):
        model = MLP(4, 2, seed=0)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        model = MLP(4, 2, seed=0)
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = MLP(4, 2, seed=0)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestFlattening:
    def test_flatten_roundtrip(self):
        model = MLP(5, 3, hidden=(4,), seed=0)
        flat = model.flatten_parameters()
        other = MLP(5, 3, hidden=(4,), seed=9)
        other.load_flat_parameters(flat)
        np.testing.assert_allclose(other.flatten_parameters(), flat)

    def test_flatten_length(self):
        model = MLP(5, 3, hidden=(4,), seed=0)
        assert model.flatten_parameters().size == model.num_parameters()

    def test_wrong_length_rejected(self):
        model = MLP(5, 3, seed=0)
        with pytest.raises(ValueError):
            model.load_flat_parameters(np.zeros(3))

    def test_flatten_gradients(self):
        model = MLP(5, 3, hidden=(4,), seed=0)
        for p in model.parameters():
            p.grad += 2.0
        assert np.all(model.flatten_gradients() == 2.0)


class TestCloneAndModes:
    def test_clone_is_independent(self):
        model = MLP(4, 2, seed=0)
        clone = model.clone()
        clone.parameters()[0].value += 1.0
        assert not np.allclose(model.flatten_parameters(), clone.flatten_parameters())

    def test_train_eval_propagate(self):
        model = MLP(4, 2, seed=0)
        model.eval()
        assert all(not layer.training for layer in model.net.layers)
        model.train()
        assert all(layer.training for layer in model.net.layers)

    def test_base_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            Module().backward(np.zeros(1))
