"""Measurement and theory-validation utilities.

Public API
----------
* :func:`measure_selection_bias`, :class:`SelectionBiasStats`,
  :func:`baseline_global_bias` — ``||p_o − p_u||₁`` statistics (Figure 9).
* :func:`run_unbiasedness_sweep`, :class:`UnbiasednessSweep`,
  :func:`bias_reduction` — the participation-rate sweep.
* :func:`weight_divergence_experiment`, :class:`DivergenceReport` — the
  empirical counterpart of eq. (2).
"""

from .divergence import DivergenceReport, weight_divergence_experiment
from .emd import SelectionBiasStats, baseline_global_bias, measure_selection_bias
from .unbiasedness import UnbiasednessSweep, bias_reduction, run_unbiasedness_sweep

__all__ = [
    "DivergenceReport",
    "SelectionBiasStats",
    "UnbiasednessSweep",
    "baseline_global_bias",
    "bias_reduction",
    "measure_selection_bias",
    "run_unbiasedness_sweep",
    "weight_divergence_experiment",
]
