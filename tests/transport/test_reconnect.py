"""Session resumption tests: a client lost mid-round rejoins and counts once.

The reconnect contract has three legs, each exercised over real sockets:

* a client whose connection dies after receiving its
  ``SelectionNotice`` can reconnect *before the round deadline*, gets the
  notice replayed, and its delta is aggregated — the round ends clean, not
  with an ``"offline"`` failure;
* ``ModelDelta`` is idempotent: a retransmit with the same
  ``(round, client, token)`` is counted in ``duplicate_deltas``, never
  aggregated twice;
* registration with a known token resumes the session (same token, same
  cohort position); an unknown token gets a fresh session but keeps the
  stable position.
"""

import socket
import threading
import time

import pytest

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.transport import SocketTransport, TransportClient
from repro.transport.messages import (
    Heartbeat,
    ModelDelta,
    Register,
    RegisterAck,
    SelectionNotice,
    decode_message,
    encode_message,
)
from repro.transport.wire import frame_header

RECIPE = dict(n_clients=4, participants=2, samples_per_client=12, seed=0)


def read_message(sock, timeout=10.0):
    """Read one protocol frame off a blocking socket (skipping heartbeats)."""
    sock.settimeout(timeout)

    def recvexact(n):
        data = b""
        while len(data) < n:
            chunk = sock.recv(n - len(data))
            if not chunk:
                raise ConnectionError("peer closed")
            data += chunk
        return data

    while True:
        head = recvexact(8)
        _, length = frame_header(head, 1 << 28)
        body = recvexact(length + 4)
        message, _ = decode_message(head + body)
        if not isinstance(message, Heartbeat):
            return message


def register(sock, client_id, token=""):
    sock.sendall(encode_message(Register(client_id, 10, 12, token=token)))
    ack = read_message(sock)
    assert isinstance(ack, RegisterAck)
    return ack


@pytest.fixture
def donor():
    session = Session(FederatedConfig(
        rounds=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
    )).with_recipe("repro.ledger.recipes:quick_mlp", **RECIPE)
    simulation = session.build()
    yield simulation
    session.close()


@pytest.fixture
def transport():
    transport = SocketTransport(TransportConfig(
        kind="socket", round_timeout=30.0, connect_timeout=10.0))
    transport.start()
    yield transport
    transport.close()


def run_round_in_thread(transport, donor, client, round_index=0):
    result = {}

    def body():
        try:
            result["states"] = transport.run_round(
                [client], donor.server.new_client_model,
                donor.server.global_state(), LocalTrainingConfig(),
                round_index=round_index)
        except BaseException as exc:  # surfaced by the caller's assert
            result["error"] = exc

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    return thread, result


class TestMidRoundReconnect:
    def test_killed_client_rejoins_and_is_aggregated_exactly_once(
            self, donor, transport):
        host, port = transport.address
        # incarnation one: register, receive the selection, crash before
        # replying — no delta, no clean close
        first = socket.create_connection((host, port))
        register(first, client_id=0)
        thread, result = run_round_in_thread(transport, donor,
                                             donor.client(0))
        notice = read_message(first, timeout=30.0)
        assert isinstance(notice, SelectionNotice)
        first.close()  # the crash

        # incarnation two: a fresh TransportClient for the same federation
        # client rejoins before the deadline and answers the replayed notice
        peer = TransportClient(donor.client(0), donor.server.new_client_model,
                               host, port)
        peer_thread = threading.Thread(target=peer.run, daemon=True)
        peer_thread.start()

        thread.join(timeout=60.0)
        assert not thread.is_alive(), "round never completed"
        assert "error" not in result, result.get("error")
        assert len(result["states"]) == 1
        assert transport.last_round_failures == {}
        assert transport.duplicate_deltas == 0
        # the mid-round loss is visible, not silent
        assert transport.last_round_disconnects == {0: "connection_lost"}
        assert peer.rounds_trained == [0]

        transport.close()  # Shutdown lets the peer thread exit
        peer_thread.join(timeout=10.0)
        assert not peer_thread.is_alive()

    def test_duplicate_delta_is_counted_never_double_aggregated(
            self, donor, transport):
        host, port = transport.address
        sock = socket.create_connection((host, port))
        try:
            ack = register(sock, client_id=1)
            thread, result = run_round_in_thread(transport, donor,
                                                 donor.client(1))
            notice = read_message(sock, timeout=30.0)
            reply = encode_message(ModelDelta(
                notice.round_index, 1, dict(notice.state), token=ack.token))
            sock.sendall(reply)
            sock.sendall(reply)  # the retransmit
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert "error" not in result, result.get("error")
            assert len(result["states"]) == 1
            # the retransmit may still be in flight when the round closes;
            # the dedup must swallow it either way
            deadline = time.monotonic() + 5.0
            while (transport.duplicate_deltas == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert transport.duplicate_deltas == 1
        finally:
            sock.close()


class TestSessionResumption:
    def test_token_resumes_the_session(self, transport):
        host, port = transport.address
        first = socket.create_connection((host, port))
        ack = register(first, client_id=2)
        assert ack.token and ack.resumed is False
        first.close()

        second = socket.create_connection((host, port))
        resumed = register(second, client_id=2, token=ack.token)
        second.close()
        assert resumed.resumed is True
        assert resumed.token == ack.token
        assert resumed.position == ack.position

    def test_unknown_token_gets_a_fresh_session_same_position(self, transport):
        host, port = transport.address
        first = socket.create_connection((host, port))
        ack = register(first, client_id=3)
        first.close()

        second = socket.create_connection((host, port))
        fresh = register(second, client_id=3, token="not-a-real-token")
        second.close()
        assert fresh.resumed is False
        assert fresh.token != "not-a-real-token"
        assert fresh.token != ack.token
        # cohort positions are a stable registry, not connection order
        assert fresh.position == ack.position

    def test_positions_stay_stable_across_interleaved_reconnects(
            self, transport):
        host, port = transport.address
        a1 = socket.create_connection((host, port))
        ack_a = register(a1, client_id=0)
        b1 = socket.create_connection((host, port))
        ack_b = register(b1, client_id=1)
        a1.close()
        a2 = socket.create_connection((host, port))
        ack_a2 = register(a2, client_id=0, token=ack_a.token)
        a2.close()
        b1.close()
        assert ack_a.position != ack_b.position
        assert ack_a2.position == ack_a.position
