"""End-to-end localhost runs of the socket transport.

The service layer's headline contracts, asserted over real TCP sockets:

* a fault-free socket round is **bit-identical** (exact float64 equality,
  not approximate) to the in-process sequential back-end — remote clients
  train from the broadcast state with the same ``(seed, round)``-keyed
  determinism;
* a client that misses the round deadline becomes a real ``"straggler"``
  partial round with the same record semantics the fault injector produces;
* teardown is idempotent and leak-free even with clients still connected.
"""

import threading

import numpy as np
import pytest

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.transport import SocketTransport, TransportClient

RECIPE = dict(n_clients=6, participants=3, samples_per_client=12, seed=0)


def make_session(transport=None):
    config = FederatedConfig(
        rounds=2, eval_every=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
        transport=transport,
    )
    return Session(config).with_recipe("repro.ledger.recipes:quick_mlp",
                                       **RECIPE)


def start_clients(donor, host, port, delays=None):
    """One TransportClient thread per federation client, seeded from *donor*
    (an identically-built in-process simulation that never runs)."""
    peers, threads = [], []
    for client_id in range(RECIPE["n_clients"]):
        delay = (delays or {}).get(client_id, 0.0)
        peer = TransportClient(
            donor.client(client_id), donor.server.new_client_model,
            host, port, delay=delay, delay_round=1 if delay else None,
        )
        thread = threading.Thread(target=peer.run, daemon=True)
        thread.start()
        peers.append(peer)
        threads.append(thread)
    return peers, threads


def join_all(threads, timeout=10.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "client thread leaked past shutdown"


@pytest.fixture
def donor():
    session = make_session()
    simulation = session.build()
    yield simulation
    session.close()


class TestFaultFreeLoopback:
    def test_socket_run_is_bit_identical_to_in_process(self, donor):
        reference = make_session()
        ref_history = reference.run().history
        ref_state = reference.simulation.server.global_state()

        session = make_session(TransportConfig(kind="socket",
                                               round_timeout=30.0))
        simulation = session.build()
        assert isinstance(simulation.transport, SocketTransport)
        host, port = simulation.transport.start()
        peers, threads = start_clients(donor, host, port)
        try:
            history = simulation.run()
            state = simulation.server.global_state()
        finally:
            session.close()
        join_all(threads)
        reference.close()

        assert len(history) == len(ref_history) == 2
        for record, ref_record in zip(history.records, ref_history.records):
            assert record.selected_clients == ref_record.selected_clients
            assert record.test_accuracy == ref_record.test_accuracy
            assert record.failures == {}
        for name in ref_state:
            assert state[name].dtype == ref_state[name].dtype
            assert np.array_equal(state[name], ref_state[name]), (
                f"socket round diverged from in-process at {name!r}")

    def test_clients_observe_round_results(self, donor):
        session = make_session(TransportConfig(kind="socket",
                                               round_timeout=30.0))
        simulation = session.build()
        host, port = simulation.transport.start()
        peers, threads = start_clients(donor, host, port)
        try:
            simulation.run()
        finally:
            session.close()
        join_all(threads)
        trained = sorted(cid for cid, peer in enumerate(peers)
                         if peer.rounds_trained)
        assert trained, "no client trained anything"
        for peer in peers:
            assert peer.position is not None
            assert [r.round_index for r in peer.round_results] == [0, 1]
            assert all(not r.skipped for r in peer.round_results)


class TestRealStraggler:
    def test_deadline_miss_is_a_partial_round(self, donor):
        # learn round 1's deterministic cohort from an in-process replica,
        # then make its first member miss the socket deadline for real
        probe = make_session()
        straggler = probe.run().history.records[1].selected_clients[0]
        probe.close()

        session = make_session(TransportConfig(kind="socket",
                                               round_timeout=1.5,
                                               connect_timeout=10.0))
        simulation = session.build()
        host, port = simulation.transport.start()
        peers, threads = start_clients(donor, host, port,
                                       delays={straggler: 4.0})
        try:
            history = simulation.run()
        finally:
            session.close()
        join_all(threads)

        clean, partial = history.records
        assert clean.failures == {}
        assert partial.failures == {straggler: "straggler"}
        assert straggler not in partial.actual_clients
        assert len(partial.actual_clients) == len(partial.selected_clients) - 1
        assert not partial.aggregation_skipped
        assert partial.actual_population_bias is not None


class TestTeardown:
    def test_close_is_idempotent_with_live_connections(self, donor):
        session = make_session(TransportConfig(kind="socket",
                                               round_timeout=30.0))
        simulation = session.build()
        host, port = simulation.transport.start()
        peers, threads = start_clients(donor, host, port)
        simulation.run_round(0)
        simulation.close()
        simulation.close()  # second close must be a clean no-op
        join_all(threads)

    def test_run_round_after_close_raises(self, donor):
        from repro.transport import TransportClosedError

        session = make_session(TransportConfig(kind="socket"))
        simulation = session.build()
        simulation.close()
        with pytest.raises(TransportClosedError):
            simulation.transport.run_round(
                [donor.client(0)], donor.server.new_client_model,
                donor.server.global_state(), LocalTrainingConfig(),
                round_index=0)
