"""Scalable hypothesis example counts for the nightly deep-property run.

Every ``@settings(max_examples=...)`` in the suite wraps its count in
:func:`scaled_max_examples`, so one environment variable raises the whole
property-testing surface: the nightly workflow sets
``HYPOTHESIS_EXAMPLES_MULTIPLIER=10`` to hunt for rare counterexamples,
while interactive/CI runs keep the fast per-test defaults (multiplier 1).
"""

import os

__all__ = ["scaled_max_examples"]


def scaled_max_examples(base: int) -> int:
    """*base* examples scaled by ``HYPOTHESIS_EXAMPLES_MULTIPLIER`` (>= 1)."""
    try:
        multiplier = float(os.environ.get("HYPOTHESIS_EXAMPLES_MULTIPLIER", "1"))
    except ValueError:
        multiplier = 1.0
    return max(1, int(round(base * multiplier)))
