"""Tests for clients, aggregation rules and the federated server."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.aggregation import (
    average_states,
    state_difference_norm,
    weighted_average_states,
)
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.federated.server import FederatedServer
from repro.nn.models import MLP


def make_client_dataset(counts, seed=0):
    gen = make_synthetic_mnist(seed=0)
    return gen.generate(counts, rng=np.random.default_rng(seed))


def mlp_factory():
    return MLP(64, 10, hidden=(16,), seed=42)


class TestLocalTrainingConfig:
    def test_defaults_match_paper_group1(self):
        config = LocalTrainingConfig()
        assert config.batch_size == 8
        assert config.local_epochs == 1
        assert config.learning_rate == pytest.approx(1e-4)
        assert config.optimizer == "adam"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"local_epochs": 0},
            {"learning_rate": 0},
            {"optimizer": "rmsprop"},
            {"max_batches_per_epoch": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LocalTrainingConfig(**kwargs)


class TestFederatedClient:
    def test_requires_dataset_or_factory(self):
        with pytest.raises(ValueError):
            FederatedClient(0, 10)

    def test_label_distribution(self):
        ds = make_client_dataset([5, 0, 5, 0, 0, 0, 0, 0, 0, 0])
        client = FederatedClient(0, 10, dataset=ds)
        dist = client.label_distribution()
        assert dist[0] == pytest.approx(0.5)
        assert dist[2] == pytest.approx(0.5)
        assert client.num_samples == 10

    def test_lazy_dataset_factory_called_once(self):
        calls = []

        def factory():
            calls.append(1)
            return make_client_dataset([2] * 10)

        client = FederatedClient(1, 10, dataset_factory=factory)
        assert not calls
        _ = client.dataset
        _ = client.dataset
        assert len(calls) == 1

    def test_local_train_changes_weights_and_returns_state(self):
        ds = make_client_dataset([4] * 10)
        client = FederatedClient(0, 10, dataset=ds, seed=0)
        model = MLP(64, 10, hidden=(16,), seed=1)

        class FlatMLP(MLP):
            pass

        # flatten images for the MLP by wrapping forward/backward
        x_flat = ds.x.reshape(len(ds), -1)
        flat_ds = ArrayDataset(x_flat, ds.y, num_classes=10)
        client_flat = FederatedClient(0, 10, dataset=flat_ds, seed=0)
        before = model.flatten_parameters().copy()
        state = client_flat.local_train(model, LocalTrainingConfig(learning_rate=1e-2))
        assert not np.allclose(model.flatten_parameters(), before)
        assert set(state) == set(model.state_dict())
        assert client_flat.rounds_participated == 1


class TestAggregation:
    def test_uniform_average(self):
        a = {"w": np.array([1.0, 2.0]), "b": np.array([0.0])}
        b = {"w": np.array([3.0, 4.0]), "b": np.array([2.0])}
        avg = average_states([a, b])
        np.testing.assert_allclose(avg["w"], [2.0, 3.0])
        np.testing.assert_allclose(avg["b"], [1.0])

    def test_weighted_average(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([10.0])}
        avg = weighted_average_states([a, b], [3, 1])
        np.testing.assert_allclose(avg["w"], [2.5])

    def test_average_is_linear_fixed_point(self):
        # averaging identical states returns the same state
        state = {"w": np.array([5.0, -1.0])}
        np.testing.assert_allclose(average_states([state, state, state])["w"], state["w"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_key_mismatch_rejected(self):
        with pytest.raises(KeyError):
            average_states([{"w": np.zeros(2)}, {"v": np.zeros(2)}])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_states([{"w": np.zeros(2)}, {"w": np.zeros(3)}])

    def test_weighted_invalid_weights(self):
        states = [{"w": np.zeros(1)}, {"w": np.zeros(1)}]
        with pytest.raises(ValueError):
            weighted_average_states(states, [1])
        with pytest.raises(ValueError):
            weighted_average_states(states, [0, 0])
        with pytest.raises(ValueError):
            weighted_average_states(states, [-1, 2])

    def test_state_difference_norm(self):
        a = {"w": np.array([1.0, 0.0])}
        b = {"w": np.array([0.0, 0.0])}
        assert state_difference_norm(a, b) == pytest.approx(1.0)
        with pytest.raises(KeyError):
            state_difference_norm(a, {"v": np.zeros(2)})


class TestFederatedServer:
    def test_global_state_roundtrip(self):
        server = FederatedServer(mlp_factory)
        state = server.global_state()
        assert set(state) == set(server.global_model.state_dict())

    def test_aggregate_updates_global_model(self):
        server = FederatedServer(mlp_factory)
        state = server.global_state()
        shifted = {k: v + 1.0 for k, v in state.items()}
        server.aggregate([shifted, state])
        merged = server.global_state()
        np.testing.assert_allclose(
            merged[next(iter(merged))], state[next(iter(state))] + 0.5
        )
        assert server.rounds_completed == 1

    def test_weighted_mode_requires_weights(self):
        server = FederatedServer(mlp_factory, aggregation="weighted")
        state = server.global_state()
        with pytest.raises(ValueError):
            server.aggregate([state, state])

    def test_invalid_aggregation_mode(self):
        with pytest.raises(ValueError):
            FederatedServer(mlp_factory, aggregation="median")

    def test_empty_aggregate_rejected(self):
        server = FederatedServer(mlp_factory)
        with pytest.raises(ValueError):
            server.aggregate([])

    def test_evaluate_runs(self):
        gen = make_synthetic_mnist(seed=0)
        test = make_uniform_test_set(gen, samples_per_class=3, seed=0)
        flat_test = ArrayDataset(test.x.reshape(len(test), -1), test.y, num_classes=10)
        server = FederatedServer(mlp_factory)
        result = server.evaluate(flat_test)
        assert 0.0 <= result["accuracy"] <= 1.0


class TestExecutor:
    def _setup(self, n_clients=3):
        gen = make_synthetic_mnist(seed=0)
        clients = []
        for k in range(n_clients):
            ds = gen.generate([2] * 10, rng=np.random.default_rng(k))
            flat = ArrayDataset(ds.x.reshape(len(ds), -1), ds.y, num_classes=10)
            clients.append(FederatedClient(k, 10, dataset=flat, seed=k))
        return clients

    def test_sequential_round(self):
        clients = self._setup()
        server = FederatedServer(mlp_factory)
        executor = LocalUpdateExecutor("sequential")
        states = executor.run_round(
            clients, server.new_client_model, server.global_state(), LocalTrainingConfig()
        )
        assert len(states) == 3

    def test_thread_matches_sequential(self):
        clients = self._setup(2)
        server = FederatedServer(mlp_factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        seq = LocalUpdateExecutor("sequential").run_round(
            clients, server.new_client_model, server.global_state(), config
        )
        par = LocalUpdateExecutor("thread", max_workers=2).run_round(
            clients, server.new_client_model, server.global_state(), config
        )
        for a, b in zip(seq, par):
            for key in a:
                np.testing.assert_allclose(a[key], b[key])

    def test_empty_client_list(self):
        assert LocalUpdateExecutor().run_round(
            [], mlp_factory, {}, LocalTrainingConfig()
        ) == []

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            LocalUpdateExecutor("gpu")
        with pytest.raises(ValueError):
            LocalUpdateExecutor(max_workers=0)
