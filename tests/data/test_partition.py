"""Tests for client partitioners and the ClientPartition container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.data.distributions import uniform_distribution
from repro.data.partition import (
    ClientPartition,
    DirichletPartitioner,
    EMDTargetPartitioner,
    ShardPartitioner,
)
from repro.data.skew import half_normal_class_proportions


@pytest.fixture(scope="module")
def skewed_global():
    return half_normal_class_proportions(10, 10.0)


class TestClientPartition:
    def test_basic_accessors(self):
        counts = np.array([[5, 5], [10, 0]])
        part = ClientPartition(counts, 2)
        assert part.n_clients == 2
        np.testing.assert_array_equal(part.client_sizes(), [10, 10])
        np.testing.assert_allclose(part.client_distribution(1), [1.0, 0.0])
        np.testing.assert_allclose(part.global_distribution(), [0.75, 0.25])

    def test_achieved_statistics(self):
        counts = np.array([[30, 10], [10, 30]])
        part = ClientPartition(counts, 2)
        assert part.achieved_rho() == pytest.approx(1.0)
        assert part.achieved_emd_avg() == pytest.approx(0.5)  # |0.75-0.5| + |0.25-0.5|

    def test_selection_population_and_bias(self):
        counts = np.array([[10, 0], [0, 10], [10, 0]])
        part = ClientPartition(counts, 2)
        np.testing.assert_allclose(part.selection_population([0, 1]), [0.5, 0.5])
        assert part.selection_bias([0, 1]) == pytest.approx(0.0)
        assert part.selection_bias([0, 2]) == pytest.approx(1.0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ClientPartition(np.ones(3), 3)
        with pytest.raises(ValueError):
            ClientPartition(np.ones((2, 3)), 4)
        with pytest.raises(ValueError):
            ClientPartition(-np.ones((2, 3)), 3)

    def test_assign_sample_indices_counts_match(self):
        rng = np.random.default_rng(0)
        labels = np.repeat(np.arange(3), 50)
        counts = np.array([[10, 5, 0], [2, 2, 2]])
        part = ClientPartition(counts, 3)
        assignments = part.assign_sample_indices(labels, rng=rng)
        for k, idx in enumerate(assignments):
            got = np.bincount(labels[idx], minlength=3)
            np.testing.assert_array_equal(got, counts[k])

    def test_assign_sample_indices_duplicates_when_pool_small(self):
        labels = np.array([0, 0, 1])  # only two class-0 samples available
        counts = np.array([[5, 0]])
        part = ClientPartition(counts, 2)
        idx = part.assign_sample_indices(labels, rng=np.random.default_rng(1))[0]
        assert len(idx) == 5
        assert np.all(labels[idx] == 0)

    def test_assign_missing_class_rejected(self):
        labels = np.array([0, 0, 0])
        part = ClientPartition(np.array([[1, 1]]), 2)
        with pytest.raises(ValueError):
            part.assign_sample_indices(labels)


class TestEMDTargetPartitioner:
    @pytest.mark.parametrize("target", [0.0, 0.5, 1.0, 1.5])
    def test_hits_emd_target(self, skewed_global, target):
        part = EMDTargetPartitioner(400, 128, target, seed=0).partition(skewed_global)
        achieved = part.achieved_emd_avg()
        # multinomial sampling noise adds a small positive bias at low targets
        assert achieved == pytest.approx(target, abs=0.25)

    def test_zero_target_clients_look_global(self, skewed_global):
        part = EMDTargetPartitioner(100, 256, 0.0, seed=1).partition(skewed_global)
        assert part.achieved_emd_avg() < 0.35

    def test_global_skew_preserved(self, skewed_global):
        part = EMDTargetPartitioner(500, 128, 1.0, seed=2).partition(skewed_global)
        # ρ measured over the union of clients should be in the same ballpark
        assert 4.0 < part.achieved_rho() < 30.0

    def test_every_client_has_exact_size(self, skewed_global):
        part = EMDTargetPartitioner(50, 64, 1.5, seed=3).partition(skewed_global)
        np.testing.assert_array_equal(part.client_sizes(), np.full(50, 64))

    def test_metadata_recorded(self, skewed_global):
        part = EMDTargetPartitioner(10, 32, 1.0, seed=4).partition(skewed_global)
        assert part.metadata["partitioner"] == "emd_target"
        assert 0 <= part.metadata["alpha"] <= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EMDTargetPartitioner(0, 10, 1.0)
        with pytest.raises(ValueError):
            EMDTargetPartitioner(10, 0, 1.0)
        with pytest.raises(ValueError):
            EMDTargetPartitioner(10, 10, 3.0)
        with pytest.raises(ValueError):
            EMDTargetPartitioner(10, 10, 1.0, dominating_classes=())
        with pytest.raises(ValueError):
            EMDTargetPartitioner(10, 10, 1.0, dominating_classes=(0,))

    def test_reproducible_with_seed(self, skewed_global):
        a = EMDTargetPartitioner(20, 32, 1.0, seed=7).partition(skewed_global)
        b = EMDTargetPartitioner(20, 32, 1.0, seed=7).partition(skewed_global)
        np.testing.assert_array_equal(a.client_class_counts, b.client_class_counts)


class TestDirichletPartitioner:
    def test_sizes_and_classes(self):
        part = DirichletPartitioner(30, 64, 0.5, seed=0).partition(uniform_distribution(10))
        assert part.n_clients == 30
        np.testing.assert_array_equal(part.client_sizes(), np.full(30, 64))

    def test_low_concentration_more_heterogeneous(self):
        uniform = uniform_distribution(10)
        tight = DirichletPartitioner(100, 128, 100.0, seed=1).partition(uniform)
        loose = DirichletPartitioner(100, 128, 0.05, seed=1).partition(uniform)
        assert loose.achieved_emd_avg() > tight.achieved_emd_avg()

    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            DirichletPartitioner(10, 10, 0.0)


class TestShardPartitioner:
    def test_each_client_sees_few_classes(self):
        part = ShardPartitioner(50, 40, shards_per_client=2, seed=0).partition(
            uniform_distribution(10)
        )
        classes_per_client = (part.client_class_counts > 0).sum(axis=1)
        assert np.all(classes_per_client <= 2)

    def test_sizes_exact(self):
        part = ShardPartitioner(20, 33, shards_per_client=2, seed=1).partition(
            uniform_distribution(10)
        )
        np.testing.assert_array_equal(part.client_sizes(), np.full(20, 33))

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardPartitioner(10, 10, shards_per_client=0)


@settings(max_examples=scaled_max_examples(20), deadline=None)
@given(target=st.floats(min_value=0.0, max_value=1.5),
       n_clients=st.integers(min_value=20, max_value=100))
def test_property_partition_sizes_and_validity(target, n_clients):
    """Every partition produced has exact client sizes and valid distributions."""
    global_dist = half_normal_class_proportions(10, 5.0)
    part = EMDTargetPartitioner(n_clients, 32, target, seed=0).partition(global_dist)
    assert part.n_clients == n_clients
    np.testing.assert_array_equal(part.client_sizes(), np.full(n_clients, 32))
    dists = part.client_distributions()
    np.testing.assert_allclose(dists.sum(axis=1), np.ones(n_clients))
