"""SecureDubheSelector — Dubhe selection driven end-to-end by the HE protocol.

:class:`~repro.core.selectors.DubheSelector` implements the selection
*algorithm* against plaintext label distributions (which is what the
large-scale experiments use — the algebra is identical and Paillier at
benchmark scale would dominate the runtime).  This class runs the same
algorithm through the actual encrypted data path, exactly as deployed:

* the registration round goes through :class:`SecureRegistrationRound`
  (agent keygen → client-side encryption → server ciphertext aggregation →
  client-side decryption of the overall registry);
* each multi-time tentative selection is scored by the agent via
  :class:`SecureDistributionAggregation` (selected clients encrypt ``p_l``,
  the server sums ciphertexts, the agent decrypts the aggregate only);
* the server side of the selector never touches a plaintext distribution or
  a private key.

It produces byte-for-byte the same selections as the plaintext selector for
the same RNG seed (verified in the test-suite), plus a full
:class:`ProtocolStats` accounting of the encryption/communication cost it
incurred — so it doubles as a live §6.4 measurement on real selections.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..crypto.keyagent import KeyAgent
from .config import DubheConfig
from .multitime import MultiTimeResult, multi_time_selection
from .probability import bernoulli_participation, participation_probabilities
from .registry import RegistryCodebook
from .secure import ProtocolStats, SecureDistributionAggregation, SecureRegistrationRound
from .selectors import ClientSelector

__all__ = ["SecureDubheSelector"]


class SecureDubheSelector(ClientSelector):
    """Dubhe selection where every exchanged vector travels encrypted."""

    name = "dubhe-secure"

    def __init__(self, client_distributions: np.ndarray, config: DubheConfig,
                 seed: Optional[int] = None, agent: Optional[KeyAgent] = None,
                 score_securely: bool = True):
        super().__init__(client_distributions, config.participants_per_round, seed=seed)
        if config.num_classes != self.num_classes:
            raise ValueError("config num_classes does not match client distributions")
        if not config.has_all_thresholds():
            raise ValueError(
                "DubheConfig is missing thresholds; run repro.core.parameter_search first"
            )
        self.config = config
        self.codebook = RegistryCodebook(config)
        self.agent = agent or KeyAgent(key_size=config.key_size)
        self.score_securely = score_securely
        self.stats = ProtocolStats()
        self.last_result: Optional[MultiTimeResult] = None
        self._registration_round = SecureRegistrationRound(config, agent=self.agent)
        self._scorer: Optional[SecureDistributionAggregation] = None
        self.register()

    # -- the encrypted registration round ---------------------------------------

    def register(self) -> None:
        """Run a full encrypted registration round for every client."""
        overall, registrations, stats = self._registration_round.run(self.client_distributions)
        # fixed-point decryption returns floats; counts are integral by construction
        self.overall_registry = np.round(overall)
        self.registrations = registrations
        self.probabilities = participation_probabilities(
            self.codebook, registrations, self.overall_registry,
            self.config.participants_per_round,
        )
        self.stats = self.stats.merged_with(stats)
        if self.score_securely:
            # rotate to a fresh key for the multi-time scoring traffic; the
            # agent's current keypair now matches the scorer's
            self._scorer = SecureDistributionAggregation(self.config, agent=self.agent)

    # -- selection ----------------------------------------------------------------

    def _tentative_draw(self, _h: int) -> list[int]:
        volunteers = bernoulli_participation(self.probabilities, rng=self.rng)
        pool = [int(v) for v in volunteers]
        k = self.participants_per_round
        if len(pool) > k:
            keep = self.rng.choice(len(pool), size=k, replace=False)
            pool = [pool[i] for i in keep]
        elif len(pool) < k:
            outside = np.setdiff1d(np.arange(self.n_clients), np.asarray(pool, dtype=int))
            extra = self.rng.choice(outside, size=k - len(pool), replace=False)
            pool.extend(int(e) for e in extra)
        return pool

    def _secure_population(self, selected: Sequence[int]) -> np.ndarray:
        """Population distribution recovered from the encrypted aggregate."""
        assert self._scorer is not None
        # the agent's score is ||p_o − p_u||₁; for the multi-time argmin we
        # need p_o itself, so reuse the same encrypted path at vector level
        from .secure import SecureAggregationServer, SecureClient

        server = SecureAggregationServer(self._scorer.keypair.public_key)
        clients = [SecureClient(int(k), self.client_distributions[int(k)]) for k in selected]
        for client in clients:
            server.receive(client.encrypted_distribution(self._scorer.keypair.public_key))
        aggregate = server.aggregate()
        decrypted = self.agent.decrypt_vector(aggregate)
        round_stats = ProtocolStats()
        for client in clients:
            round_stats = round_stats.merged_with(client.stats)
        self.stats = self.stats.merged_with(round_stats.merged_with(server.stats))
        total = decrypted.sum()
        if total <= 0:
            return self.uniform.copy()
        return decrypted / total

    def select(self, round_index: int) -> list[int]:
        population_of = (self._secure_population if self.score_securely
                         else self.population_of)
        result = multi_time_selection(
            draw=self._tentative_draw,
            population_of=population_of,
            uniform=self.uniform,
            tries=self.config.tentative_selections,
        )
        self.last_result = result
        return list(result.best.candidate)

    @property
    def last_bias(self) -> float:
        """``EMD*`` of the most recent selection (scored on decrypted aggregates)."""
        if self.last_result is None:
            raise RuntimeError("no selection has been performed yet")
        return self.last_result.best_score
