"""Nested config groups must be a pure re-spelling of the flat fields.

PR 8 grouped ``FederatedConfig``'s executor, ledger and transport knobs into
``ExecutorConfig``/``LedgerConfig``/``TransportConfig`` sub-configs while
keeping every pre-existing flat kwarg as an alias.  These tests pin the
contract: flat and nested spellings resolve to the same config, conflicting
spellings are an error (never a silent override), and every pre-PR-8
constructor call found in ``examples/`` and ``tests/`` still resolves
identically.
"""

import ast
import dataclasses
import pathlib

import pytest

from repro.core.config import ExecutorConfig, LedgerConfig, TransportConfig
from repro.federated.simulation import (_EXECUTOR_ALIASES, _LEDGER_ALIASES,
                                        FederatedConfig)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _nested_equivalent(flat_kwargs):
    """Re-spell *flat_kwargs* through the nested groups."""
    executor = {group: flat_kwargs.pop(flat)
                for flat, group in _EXECUTOR_ALIASES.items()
                if flat in flat_kwargs}
    ledger = {group: flat_kwargs.pop(flat)
              for flat, group in _LEDGER_ALIASES.items()
              if flat in flat_kwargs}
    if executor:
        flat_kwargs["executor"] = ExecutorConfig(**executor)
    if ledger:
        flat_kwargs["ledger"] = LedgerConfig(**ledger)
    return FederatedConfig(**flat_kwargs)


class TestFlatNestedEquivalence:
    def test_executor_flat_equals_nested(self):
        flat = FederatedConfig(executor_mode="parallel", num_workers=2,
                               shard_policy="interleaved",
                               scheduler_timeout=30.0)
        nested = FederatedConfig(executor=ExecutorConfig(
            mode="parallel", num_workers=2, shard_policy="interleaved",
            scheduler_timeout=30.0))
        assert flat == nested

    def test_ledger_flat_equals_nested(self, tmp_path):
        path = str(tmp_path / "runs.db")
        flat = FederatedConfig(ledger_path=path, run_name="demo")
        nested = FederatedConfig(ledger=LedgerConfig(
            path=path, run_name="demo"))
        assert flat == nested

    def test_groups_are_always_materialised(self):
        config = FederatedConfig()
        assert config.executor == ExecutorConfig()
        assert config.ledger == LedgerConfig()
        assert config.transport == TransportConfig()

    def test_groups_mirror_flat_values(self):
        config = FederatedConfig(executor_mode="vectorized", dtype="float32",
                                 dataset_cache_size=7)
        assert config.executor.mode == "vectorized"
        assert config.executor.dtype == "float32"
        assert config.executor.dataset_cache_size == 7

    def test_nested_values_flow_back_to_flat(self):
        config = FederatedConfig(
            executor=ExecutorConfig(mode="parallel", num_workers=3),
            ledger=LedgerConfig(path="x.db", run_mode="live"))
        assert config.executor_mode == "parallel"
        assert config.num_workers == 3
        assert config.ledger_path == "x.db"

    def test_matching_spellings_are_allowed(self):
        config = FederatedConfig(executor_mode="vectorized",
                                 executor=ExecutorConfig(mode="vectorized"))
        assert config.executor_mode == "vectorized"


class TestConflicts:
    def test_conflicting_executor_spelling_raises(self):
        with pytest.raises(ValueError, match="conflicting configuration"):
            FederatedConfig(executor_mode="parallel",
                            executor=ExecutorConfig(mode="vectorized"))

    def test_conflicting_ledger_spelling_raises(self):
        with pytest.raises(ValueError, match="conflicting configuration"):
            FederatedConfig(ledger_path="a.db",
                            ledger=LedgerConfig(path="b.db"))

    def test_group_type_is_checked(self):
        with pytest.raises(TypeError):
            FederatedConfig(executor={"mode": "parallel"})
        with pytest.raises(TypeError):
            FederatedConfig(transport={"kind": "socket"})


class TestGroupValidation:
    def test_executor_group_validates_mode(self):
        with pytest.raises(ValueError):
            ExecutorConfig(mode="quantum")

    def test_ledger_group_validates_run_mode(self):
        with pytest.raises(ValueError):
            LedgerConfig(path="x.db", run_mode="rewind")

    def test_transport_group_validates_kind_and_knobs(self):
        with pytest.raises(ValueError):
            TransportConfig(kind="carrier-pigeon")
        with pytest.raises(ValueError):
            TransportConfig(round_timeout=0.0)
        with pytest.raises(ValueError):
            TransportConfig(min_participation=1.5)


def _literal_federated_config_calls():
    """Every ``FederatedConfig(...)`` call in examples/ and tests/ whose
    kwargs are plain literals — the pre-PR-8 constructor corpus."""
    calls = []
    this_file = pathlib.Path(__file__).resolve()
    for root in ("examples", "tests", "src"):
        for path in (REPO_ROOT / root).rglob("*.py"):
            if path.resolve() == this_file:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "FederatedConfig"
                        and not node.args):
                    try:
                        kwargs = {kw.arg: ast.literal_eval(kw.value)
                                  for kw in node.keywords
                                  if kw.arg is not None}
                    except ValueError:
                        continue  # non-literal args (argparse values, ...)
                    if any(kw.arg is None for kw in node.keywords):
                        continue
                    calls.append((f"{path.relative_to(REPO_ROOT)}:"
                                  f"{node.lineno}", kwargs))
    return calls


class TestPrePR8Corpus:
    def test_corpus_is_nonempty(self):
        assert len(_literal_federated_config_calls()) >= 5

    @pytest.mark.parametrize(
        "location,kwargs",
        _literal_federated_config_calls() or [("none", {})],
        ids=lambda value: value if isinstance(value, str) else "",
    )
    def test_every_recorded_call_resolves_identically(self, location, kwargs):
        # some harvested calls come from error-path tests and are *meant*
        # to raise; the contract is then that both spellings still raise
        try:
            flat = FederatedConfig(**kwargs)
        except (TypeError, ValueError) as exc:
            with pytest.raises(type(exc)):
                _nested_equivalent(dict(kwargs))
            return
        nested = _nested_equivalent(dict(kwargs))
        assert flat == nested, location
        # the flat fields themselves are untouched by the grouping
        for name, value in kwargs.items():
            if name in [f.name for f in dataclasses.fields(FederatedConfig)]:
                assert getattr(flat, name) == value, (location, name)
