"""Tests for TrainingHistory and the end-to-end FederatedSimulation."""

import numpy as np
import pytest

from repro.data.partition import ClientPartition, EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.client import LocalTrainingConfig
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.nn.models import MLP


class RoundRobinSelector:
    """Deterministic selector used to exercise the simulation loop."""

    def __init__(self, n_clients: int, k: int):
        self.n_clients = n_clients
        self.k = k

    def select(self, round_index: int):
        start = (round_index * self.k) % self.n_clients
        return [(start + i) % self.n_clients for i in range(self.k)]


class EmptySelector:
    def select(self, round_index: int):
        return []


def record(i, acc=0.5, bias=0.1, dist=None):
    return RoundRecord(
        round_index=i,
        selected_clients=(0, 1),
        population_distribution=dist if dist is not None else np.array([0.5, 0.5]),
        population_bias=bias,
        test_accuracy=acc,
    )


class TestTrainingHistory:
    def test_series_and_summary(self):
        history = TrainingHistory()
        for i in range(10):
            history.append(record(i, acc=0.1 * i, bias=0.2))
        assert len(history) == 10
        assert history.final_accuracy() == pytest.approx(0.9)
        assert history.tail_average_accuracy(5) == pytest.approx(np.mean([0.5, 0.6, 0.7, 0.8, 0.9]))
        assert history.mean_population_bias() == pytest.approx(0.2)
        summary = history.summary()
        assert summary["rounds"] == 10

    def test_skipped_evaluations_are_nan(self):
        history = TrainingHistory()
        history.append(record(0, acc=None))
        history.append(record(1, acc=0.7))
        acc = history.accuracies()
        assert np.isnan(acc[0])
        assert history.final_accuracy() == pytest.approx(0.7)

    def test_average_population_distribution(self):
        history = TrainingHistory()
        history.append(record(0, dist=np.array([1.0, 0.0])))
        history.append(record(1, dist=np.array([0.0, 1.0])))
        np.testing.assert_allclose(history.average_population_distribution(), [0.5, 0.5])

    def test_participation_counts(self):
        history = TrainingHistory()
        history.append(record(0))
        history.append(record(1))
        counts = history.participation_counts(4)
        np.testing.assert_array_equal(counts, [2, 2, 0, 0])

    def test_empty_history_errors(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            history.final_accuracy()
        with pytest.raises(ValueError):
            history.mean_population_bias()
        with pytest.raises(ValueError):
            history.average_population_distribution()
        with pytest.raises(ValueError):
            history.tail_average_accuracy(0)


@pytest.fixture(scope="module")
def small_setup():
    generator = make_synthetic_mnist(seed=0)
    global_dist = half_normal_class_proportions(10, 5.0)
    partition = EMDTargetPartitioner(12, 20, 1.0, seed=0).partition(global_dist)
    test_set = make_uniform_test_set(generator, samples_per_class=5, seed=1)
    return generator, partition, test_set


def small_config(rounds=3):
    return FederatedConfig(
        rounds=rounds,
        eval_every=1,
        local=LocalTrainingConfig(batch_size=8, local_epochs=1, learning_rate=1e-3),
        seed=0,
    )


class TestFederatedSimulation:
    def _make(self, small_setup, selector=None, config=None):
        generator, partition, test_set = small_setup
        selector = selector or RoundRobinSelector(partition.n_clients, 4)
        return FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
            selector=selector,
            test_set=test_set,
            config=config or small_config(),
        )

    def test_run_produces_history(self, small_setup):
        sim = self._make(small_setup)
        history = sim.run()
        assert len(history) == 3
        assert all(r.test_accuracy is not None for r in history.records)
        assert all(0 <= r.population_bias <= 2 for r in history.records)

    def test_round_records_selected_clients(self, small_setup):
        sim = self._make(small_setup)
        rec = sim.run_round(0)
        assert rec.selected_clients == (0, 1, 2, 3)
        assert rec.population_distribution.shape == (10,)

    def test_eval_every_skips_evaluation(self, small_setup):
        sim = self._make(small_setup, config=FederatedConfig(
            rounds=4, eval_every=2, local=LocalTrainingConfig(learning_rate=1e-3), seed=0
        ))
        history = sim.run()
        acc = history.accuracies()
        assert not np.isnan(acc[0]) and not np.isnan(acc[2])
        assert np.isnan(acc[1]) and np.isnan(acc[3])

    def test_clients_are_cached(self, small_setup):
        sim = self._make(small_setup)
        a = sim.client(0)
        b = sim.client(0)
        assert a is b

    def test_empty_selection_raises(self, small_setup):
        sim = self._make(small_setup, selector=EmptySelector())
        with pytest.raises(RuntimeError):
            sim.run_round(0)

    def test_progress_callback_invoked(self, small_setup):
        sim = self._make(small_setup)
        seen = []
        sim.run(rounds=2, progress=lambda r: seen.append(r.round_index))
        assert seen == [0, 1]

    def test_mismatched_classes_rejected(self, small_setup):
        generator, partition, test_set = small_setup
        bad_generator = make_synthetic_mnist(num_classes=5, seed=0)
        with pytest.raises(ValueError):
            FederatedSimulation(
                partition=partition,
                generator=bad_generator,
                model_factory=lambda: MLP(64, 5, seed=0),
                selector=RoundRobinSelector(partition.n_clients, 2),
                test_set=test_set,
            )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FederatedConfig(rounds=0)
        with pytest.raises(ValueError):
            FederatedConfig(eval_every=0)

    def test_fallback_reason_surfaces_in_history(self, small_setup):
        # a ragged federation cannot be stacked into one cohort tensor, so a
        # vectorized run silently degrades to sequential — the round records
        # must say so instead of leaving the reason buried on the executor
        generator, _, test_set = small_setup
        counts = np.zeros((4, 10), dtype=int)
        counts[:, 0] = [8, 8, 12, 8]  # client 2 is bigger: ragged cohort
        ragged = ClientPartition(counts, 10)
        sim = FederatedSimulation(
            partition=ragged,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
            selector=RoundRobinSelector(4, 4),
            test_set=test_set,
            config=FederatedConfig(
                rounds=2, executor_mode="vectorized",
                local=LocalTrainingConfig(learning_rate=1e-3), seed=0,
            ),
        )
        history = sim.run()
        reasons = history.fallback_reasons()
        assert [round_index for round_index, _ in reasons] == [0, 1]
        assert all(r.fallback_reason for r in history.records)
        sim.close()

    def test_scenario_free_records_have_no_fault_fields(self, small_setup):
        sim = self._make(small_setup)
        rec = sim.run_round(0)
        assert rec.actual_clients is None
        assert rec.participants == rec.selected_clients
        assert rec.failures == {} and not rec.aggregation_skipped
        assert rec.fallback_reason is None

    def test_close_is_idempotent_and_context_manager_cleans_up(self, small_setup):
        with self._make(small_setup) as sim:
            sim.run_round(0)
        sim.close()  # second close after __exit__ must be a no-op
        sim.close()

    def test_mid_round_exception_does_not_leak_workers(self, small_setup):
        class ExplodingSelector(RoundRobinSelector):
            def select(self, round_index):
                if round_index >= 1:
                    raise RuntimeError("selector lost its registry")
                return super().select(round_index)

        generator, partition, test_set = small_setup
        workers = []
        sim_ref = []
        with pytest.raises(RuntimeError, match="lost its registry"):
            with FederatedSimulation(
                partition=partition,
                generator=generator,
                model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
                selector=ExplodingSelector(partition.n_clients, 4),
                test_set=test_set,
                config=FederatedConfig(
                    rounds=3, executor_mode="parallel", num_workers=2,
                    local=LocalTrainingConfig(learning_rate=1e-3), seed=0,
                ),
            ) as sim:
                sim_ref.append(sim)
                sim.run(progress=lambda r: workers.extend(
                    sim.executor.scheduler._workers))
        assert workers, "round 0 should have spawned the worker fleet"
        assert all(not w.is_alive() for w in workers)
        scheduler = sim_ref[0].executor.scheduler
        assert scheduler._workers == [] and scheduler._conns == []
        sim_ref[0].close()  # idempotent after the context-manager teardown

    def test_close_with_a_pending_socket_round_does_not_hang(self, small_setup):
        # teardown race: a transport-wrapped simulation is closed while its
        # server loop still has a round in flight (no client ever registers).
        # close() must cancel the pending round — the blocked run_round
        # raises TransportClosedError instead of hanging — and stay
        # idempotent afterwards.
        import threading

        from repro.core.config import TransportConfig
        from repro.transport.server import (TransportClosedError,
                                            TransportError)

        sim = self._make(small_setup, config=FederatedConfig(
            rounds=2, local=LocalTrainingConfig(learning_rate=1e-3), seed=0,
            transport=TransportConfig(kind="socket", connect_timeout=30.0,
                                      backoff=0.01),
        ))
        sim.transport.start()
        outcome = []

        def blocked_round():
            try:
                sim.transport.run_round(
                    [sim.client(0)], sim.server.new_client_model,
                    sim.server.global_state(), sim.config.local,
                    round_index=0)
                outcome.append("completed")
            except TransportClosedError:
                outcome.append("closed")
            except TransportError as exc:
                outcome.append(f"error: {exc}")

        thread = threading.Thread(target=blocked_round, daemon=True)
        thread.start()
        import time

        time.sleep(0.3)  # let the round reach its wait-for-clients loop
        sim.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "pending round survived close()"
        assert outcome == ["closed"]
        sim.close()  # still idempotent with the loop already gone

    def test_close_chain_survives_a_failing_transport(self, small_setup,
                                                      tmp_path):
        # the ledger session must be closed even when the transport (and
        # then the server) blow up during teardown — the close chain may
        # not short-circuit on the first failure
        sim = self._make(small_setup, config=FederatedConfig(
            rounds=1, local=LocalTrainingConfig(learning_rate=1e-3), seed=0,
            ledger_path=str(tmp_path / "runs.db"),
        ))
        sim.run()
        ledger_session = sim.ledger_session
        assert ledger_session is not None

        def exploding_close():
            raise RuntimeError("transport teardown raced the loop")

        sim.transport.close = exploding_close
        with pytest.raises(RuntimeError, match="teardown raced"):
            sim.close()
        # the chained finally still reached the ledger session
        from repro.ledger.store import RunLedger

        with RunLedger(str(tmp_path / "runs.db"), create=False) as ledger:
            info = ledger.run(ledger_session.run_id)
            assert info.status in ("complete", "completed", "finished")

    def test_training_improves_over_rounds(self, small_setup):
        # with enough rounds the global model should beat random guessing (0.1)
        generator, partition, test_set = small_setup
        sim = FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(32,), seed=3),
            selector=RoundRobinSelector(partition.n_clients, 6),
            test_set=test_set,
            config=FederatedConfig(
                rounds=10,
                eval_every=1,
                local=LocalTrainingConfig(batch_size=8, local_epochs=2, learning_rate=5e-3),
                seed=1,
            ),
        )
        history = sim.run()
        assert history.final_accuracy() > 0.3
