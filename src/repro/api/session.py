""":class:`Session` — the one builder that drives every kind of run.

Before PR 8 the repo had three divergent entry points: construct a
:class:`~repro.federated.FederatedSimulation` directly, wrap it in
:func:`repro.scenarios.run_scenario` for a fault report, or thread ledger
fields through the config for record/resume/verify.  :class:`Session`
unifies them behind one chain::

    result = (Session(config)
              .with_federation(partition=..., generator=..., model_factory=...,
                               selector=..., test_set=...)
              .with_scenario(spec)
              .with_ledger("runs.db")
              .run(rounds=20))
    result.history      # TrainingHistory — always
    result.report       # ScenarioReport — when a scenario was attached
    result.run_id       # ledger run id — when a ledger was attached

Migration table (old → new):

=============================================  =======================================
``FederatedSimulation(..., config=c).run(n)``  ``Session(c).with_federation(...).run(n)``
``run_scenario(sim, n, name)``                 ``Session(c).with_scenario(spec, name=name)...run(n)``
``FederatedConfig(ledger_path=p, run_mode=m)`` ``Session(c).with_ledger(p, run_mode=m)``
``FederatedConfig(executor_mode=m)``           ``Session(c).with_executor(mode=m)``
``(no old spelling)``                          ``Session(c).with_transport(kind="socket")``
=============================================  =======================================

The old entry points keep working as thin delegating wrappers that emit
:class:`DeprecationWarning`; ``Session`` itself never trips those shims.
Every transport (in-process back-ends and the asyncio socket layer) runs
through this same code path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..core.config import ExecutorConfig, LedgerConfig, TransportConfig
from ..federated.simulation import (_EXECUTOR_ALIASES, _LEDGER_ALIASES,
                                    FederatedConfig, FederatedSimulation,
                                    _session_entry)

__all__ = ["Session", "SessionResult"]

#: the component kwargs a simulation needs (mirrors FederatedSimulation)
_COMPONENT_KEYS = ("partition", "generator", "model_factory", "selector",
                   "test_set")

_GROUP_ALIASES = {"executor": _EXECUTOR_ALIASES, "ledger": _LEDGER_ALIASES}


def _amend(config: FederatedConfig, **changes) -> FederatedConfig:
    """A copy of *config* with *changes*, safe across flat/nested aliasing.

    ``dataclasses.replace`` would carry both a group's old flat spellings
    and a new group object into ``__post_init__`` and trip the conflict
    check; this helper drops the flat aliases of any group being replaced so
    the new group simply wins.
    """
    kwargs = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(FederatedConfig)
        if f.name not in ("executor", "ledger")
    }
    for group, aliases in _GROUP_ALIASES.items():
        if group in changes:
            for flat in aliases:
                kwargs.pop(flat, None)
    kwargs.update(changes)
    return FederatedConfig(**kwargs)


@dataclass(frozen=True)
class SessionResult:
    """What one :meth:`Session.run` produced.

    ``history`` is always present; ``report`` only when the session carried
    a scenario; ``run_id`` only when it recorded to a ledger.

    Example
    -------
    >>> # result = Session(config).with_federation(**parts).run(5)
    >>> # result.history.final_accuracy(), result.report, result.run_id
    >>> SessionResult.__dataclass_fields__["run_id"].default is None
    True
    """

    history: object
    report: Optional[object] = None
    run_id: Optional[str] = None


class Session:
    """Builder-style front door for federated runs (see the module docstring).

    The ``with_*`` methods refine the configuration and return ``self`` for
    chaining; :meth:`build` materialises the simulation exactly once (later
    ``with_*`` calls are an error), and :meth:`run` drives it end to end.
    Sessions are context managers — the simulation is closed on exit.

    Example
    -------
    >>> from repro import FederatedConfig
    >>> session = Session(FederatedConfig(rounds=2, seed=0))
    >>> session.with_executor(mode="vectorized") is session
    True
    >>> session.config.executor_mode
    'vectorized'
    """

    def __init__(self, config: Optional[FederatedConfig] = None, *,
                 recipe=None, scenario_name: str = "scenario", **components):
        unknown = set(components) - set(_COMPONENT_KEYS)
        if unknown:
            raise TypeError(f"unknown component kwargs: {sorted(unknown)}")
        self._config = config or FederatedConfig()
        if not isinstance(self._config, FederatedConfig):
            raise TypeError("config must be a FederatedConfig (or None)")
        self._components = dict(components)
        self._recipe = recipe
        self._scenario_name = scenario_name
        self._simulation: Optional[FederatedSimulation] = None

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> FederatedConfig:
        """The session's resolved configuration so far.

        Example
        -------
        >>> Session().config.rounds
        20
        """
        return self._config

    @property
    def simulation(self) -> Optional[FederatedSimulation]:
        """The built simulation (``None`` before :meth:`build`).

        Example
        -------
        >>> Session().simulation is None
        True
        """
        return self._simulation

    # -- builder steps ---------------------------------------------------------

    def _amend_config(self, **changes) -> "Session":
        if self._simulation is not None:
            raise RuntimeError(
                "this Session already built its simulation; configure "
                "before build()/run()"
            )
        self._config = _amend(self._config, **changes)
        return self

    def with_federation(self, *, partition, generator, model_factory,
                        selector, test_set) -> "Session":
        """Provide the federation's components (who trains on what).

        Example
        -------
        >>> # Session(config).with_federation(partition=p, generator=g,
        >>> #     model_factory=make, selector=s, test_set=t)
        >>> "partition" in _COMPONENT_KEYS
        True
        """
        if self._simulation is not None:
            raise RuntimeError("this Session already built its simulation")
        self._components = dict(partition=partition, generator=generator,
                                model_factory=model_factory,
                                selector=selector, test_set=test_set)
        return self

    def with_recipe(self, target, **kwargs) -> "Session":
        """Provide the federation through an importable ledger recipe.

        *target* is a :class:`~repro.ledger.codec.RunRecipe` or a
        ``"package.module:function"`` string; the recipe is also recorded
        next to any ledgered run, which is what makes cold-process
        resume/verify possible.

        Example
        -------
        >>> session = Session().with_recipe("repro.ledger.recipes:quick_mlp",
        ...                                 n_clients=8, seed=0)
        >>> session._recipe.target
        'repro.ledger.recipes:quick_mlp'
        """
        from ..ledger.codec import RunRecipe

        if self._simulation is not None:
            raise RuntimeError("this Session already built its simulation")
        if isinstance(target, RunRecipe):
            if kwargs:
                raise TypeError("pass kwargs inside the RunRecipe")
            self._recipe = target
        else:
            self._recipe = RunRecipe(target, kwargs)
        return self

    def with_scenario(self, spec, name: str = "scenario") -> "Session":
        """Attach a fault-injection scenario; :meth:`run` then returns a report.

        Example
        -------
        >>> from repro.scenarios import ScenarioSpec
        >>> session = Session().with_scenario(ScenarioSpec(seed=1), name="churn")
        >>> session.config.scenario.seed
        1
        """
        self._scenario_name = name
        return self._amend_config(scenario=spec)

    def with_ledger(self, path: str, run_mode: str = "live",
                    source_run_id: Optional[str] = None,
                    run_name: Optional[str] = None) -> "Session":
        """Record to (or resume/verify from) a run ledger at *path*.

        Example
        -------
        >>> session = Session().with_ledger("/tmp/runs.db", run_name="demo")
        >>> session.config.ledger_path
        '/tmp/runs.db'
        """
        return self._amend_config(ledger=LedgerConfig(
            path=path, run_mode=run_mode,
            replay_source_run_id=source_run_id, run_name=run_name))

    def with_executor(self, executor: Optional[ExecutorConfig] = None,
                      **knobs) -> "Session":
        """Choose the execution back-end group (mode, workers, dtype, ...).

        Example
        -------
        >>> Session().with_executor(mode="parallel",
        ...                         num_workers=2).config.num_workers
        2
        """
        if executor is not None and knobs:
            raise TypeError("pass either an ExecutorConfig or knobs, not both")
        return self._amend_config(
            executor=executor if executor is not None else ExecutorConfig(**knobs))

    def with_transport(self, transport: Optional[TransportConfig] = None,
                       **knobs) -> "Session":
        """Choose the service layer (in-process, or the asyncio socket server).

        The socket layer's fault-tolerance knobs live here too:
        ``heartbeat_interval`` / ``heartbeat_limit`` configure liveness
        probing (a silent connection is declared dead after
        ``interval * limit`` seconds), and ``retries`` / ``backoff`` /
        ``max_backoff`` / ``retry_jitter`` shape the capped, jittered
        reconnection schedule (:class:`~repro.core.retry.RetryPolicy`).
        Network-level chaos (latency, corruption, partitions) is *not* a
        transport knob — declare a
        :class:`~repro.scenarios.NetworkSpec` on the scenario and the
        simulation interposes the chaos proxy automatically.

        Example
        -------
        >>> Session().with_transport(kind="socket",
        ...                          round_timeout=5.0).config.transport.kind
        'socket'
        """
        if transport is not None and knobs:
            raise TypeError("pass either a TransportConfig or knobs, not both")
        return self._amend_config(
            transport=transport if transport is not None
            else TransportConfig(**knobs))

    # -- execution -------------------------------------------------------------

    def build(self) -> FederatedSimulation:
        """Materialise the simulation (once) without running it.

        Components come from :meth:`with_federation` or, failing that, from
        the recipe; this is the only supported constructor path — it never
        emits the direct-construction :class:`DeprecationWarning`.

        Example
        -------
        >>> session = Session().with_recipe("repro.ledger.recipes:quick_mlp",
        ...                                 n_clients=8, participants=2, seed=0)
        >>> session.build() is session.simulation
        True
        >>> session.close()
        """
        if self._simulation is not None:
            return self._simulation
        components = self._components
        if not components:
            if self._recipe is None:
                raise ValueError(
                    "no federation to run: call with_federation(...) or "
                    "with_recipe(...) first"
                )
            components = self._recipe.build()
            components = {key: components[key] for key in _COMPONENT_KEYS}
        missing = [key for key in _COMPONENT_KEYS if key not in components]
        if missing:
            raise ValueError(f"with_federation is missing {missing}")
        _session_entry.active = True
        try:
            self._simulation = FederatedSimulation(
                config=self._config, recipe=self._recipe, **components)
        finally:
            _session_entry.active = False
        return self._simulation

    def run(self, rounds: Optional[int] = None) -> SessionResult:
        """Drive the run end to end and collect every artefact.

        Example
        -------
        >>> session = Session(None).with_recipe(
        ...     "repro.ledger.recipes:quick_mlp", n_clients=8, participants=2,
        ...     seed=0)
        >>> result = session.run(rounds=1)
        >>> len(result.history)
        1
        >>> session.close()
        """
        simulation = self.build()
        report = None
        if self._config.scenario is not None:
            from ..scenarios.report import _run_scenario_impl

            report = _run_scenario_impl(simulation, rounds,
                                        name=self._scenario_name)
            history = simulation.history
        else:
            history = simulation.run(rounds)
        run_id = (simulation.ledger_session.run_id
                  if simulation.ledger_session is not None else None)
        return SessionResult(history=history, report=report,
                             run_id=run_id or None)

    def close(self) -> None:
        """Close the built simulation (a no-op before :meth:`build`).

        Example
        -------
        >>> Session().close()
        """
        if self._simulation is not None:
            self._simulation.close()

    def __enter__(self) -> "Session":
        """Context-manager entry.

        Example
        -------
        >>> with Session() as session:
        ...     session.config.rounds
        20
        """
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the simulation."""
        self.close()
