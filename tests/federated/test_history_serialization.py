"""Round-trip serialization of RoundRecord and TrainingHistory.

The run ledger stores every round as ``RoundRecord.to_dict()`` JSON, so the
round trip ``from_dict(json.loads(json.dumps(to_dict(r))))`` must reproduce
every field exactly — including numpy scalars (which must become native
Python numbers) and the NaN survivor-bias a scenario round can record.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples
from repro.federated.history import RoundRecord, TrainingHistory
from repro.scenarios import FAILURE_CAUSES

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
optional_finite = st.none() | finite
client_ids = st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=1, max_size=8, unique=True).map(tuple)


@st.composite
def round_records(draw):
    selected = draw(client_ids)
    distribution = draw(st.lists(finite, min_size=1, max_size=6))
    actual = draw(st.none() | st.sampled_from([selected, selected[:1], ()]))
    failed = [c for c in selected if actual is not None and c not in actual]
    failures = {c: draw(st.sampled_from(FAILURE_CAUSES)) for c in failed}
    bias_options = st.none() | finite
    if actual == ():  # a round that aggregated nobody records NaN
        bias_options = bias_options | st.just(float("nan"))
    actual_bias = draw(bias_options)
    return RoundRecord(
        round_index=draw(st.integers(min_value=0, max_value=100_000)),
        selected_clients=selected,
        population_distribution=np.asarray(distribution, dtype=float),
        population_bias=draw(finite),
        test_accuracy=draw(optional_finite),
        train_loss=draw(optional_finite),
        actual_clients=actual,
        failures=failures,
        fallback_reason=draw(st.none() | st.text(max_size=20)),
        aggregation_skipped=draw(st.booleans()),
        actual_population_bias=actual_bias,
        round_delay=draw(finite),
        drift_applied=draw(st.booleans()),
    )


def scalar_equal(left, right) -> bool:
    if left is None or right is None:
        return left is right
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
    return left == right


def assert_records_equal(left: RoundRecord, right: RoundRecord) -> None:
    assert left.round_index == right.round_index
    assert left.selected_clients == right.selected_clients
    np.testing.assert_array_equal(
        np.asarray(left.population_distribution, dtype=float),
        np.asarray(right.population_distribution, dtype=float))
    assert scalar_equal(left.population_bias, right.population_bias)
    assert scalar_equal(left.test_accuracy, right.test_accuracy)
    assert scalar_equal(left.train_loss, right.train_loss)
    assert left.actual_clients == right.actual_clients
    assert dict(left.failures) == dict(right.failures)
    assert left.fallback_reason == right.fallback_reason
    assert left.aggregation_skipped == right.aggregation_skipped
    assert scalar_equal(left.actual_population_bias,
                        right.actual_population_bias)
    assert scalar_equal(left.round_delay, right.round_delay)
    assert left.drift_applied == right.drift_applied


class TestRoundRecordRoundTrip:
    @settings(max_examples=scaled_max_examples(100), deadline=None)
    @given(record=round_records())
    def test_dict_round_trip_is_exact(self, record):
        assert_records_equal(record, RoundRecord.from_dict(record.to_dict()))

    @settings(max_examples=scaled_max_examples(100), deadline=None)
    @given(record=round_records())
    def test_json_round_trip_is_exact(self, record):
        # the exact path the run ledger uses: to_dict -> json -> from_dict
        payload = json.loads(json.dumps(record.to_dict()))
        assert_records_equal(record, RoundRecord.from_dict(payload))

    @settings(max_examples=scaled_max_examples(50), deadline=None)
    @given(record=round_records())
    def test_to_dict_is_json_native(self, record):
        def check(value):
            assert not isinstance(value, (np.generic, np.ndarray)), value
            if isinstance(value, dict):
                for key, inner in value.items():
                    assert isinstance(key, str)
                    check(inner)
            elif isinstance(value, (list, tuple)):
                for inner in value:
                    check(inner)
            else:
                assert value is None or isinstance(value, (str, int, float, bool))

        check(record.to_dict())

    def test_numpy_scalars_become_native(self):
        record = RoundRecord(
            round_index=np.int64(3),
            selected_clients=(np.int64(1), np.int64(2)),
            population_distribution=np.array([0.25, 0.75], dtype=np.float32),
            population_bias=np.float64(0.5),
            test_accuracy=np.float32(0.875),
            failures={np.int64(1): "dropout"},
        )
        payload = record.to_dict()
        assert type(payload["round_index"]) is int
        assert all(type(c) is int for c in payload["selected_clients"])
        assert type(payload["population_bias"]) is float
        assert payload["failures"] == {"1": "dropout"}
        json.dumps(payload)  # must not need a custom encoder


class TestTrainingHistoryJson:
    def test_history_round_trip(self):
        history = TrainingHistory()
        history.append(RoundRecord(0, (1, 2), np.array([0.5, 0.5]), 0.1, 0.8))
        history.append(RoundRecord(
            1, (3,), np.array([1.0, 0.0]), 0.9, None,
            actual_clients=(), failures={3: "offline"},
            aggregation_skipped=True,
            actual_population_bias=float("nan")))
        rebuilt = TrainingHistory.from_json(history.to_json(indent=2))
        assert len(rebuilt) == 2
        for original, copy in zip(history.records, rebuilt.records):
            assert_records_equal(original, copy)
        # reductions survive the round trip
        assert rebuilt.final_accuracy() == history.final_accuracy()
        assert rebuilt.skipped_round_count() == 1
        assert rebuilt.failure_totals() == {"offline": 1}

    def test_empty_history(self):
        assert TrainingHistory.from_json(TrainingHistory().to_json()).records == []
