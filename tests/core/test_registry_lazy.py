"""Property tests: the lazy combinatorial-ranked codebook ≡ the materialised one.

The lazy :class:`RegistryCodebook` addresses slots arithmetically
(:func:`combination_rank` / :func:`combination_from_rank`); the
``materialize=True`` construction builds the original eager combination
tables.  These tests hold the two index-identical over random
(C, G, σ) configurations, check the rank/unrank bijection on blocks far too
wide to materialise, and pin down the Algorithm 1 invariances: the block
choice is invariant to any permutation of the class labels (including ones
that permute tied proportions), and the chosen *category* is equivariant for
tie-free distributions.
"""

from itertools import combinations, islice
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.core.config import DubheConfig
from repro.core.registry import (
    ClientCategory,
    RegistryCodebook,
    combination_from_rank,
    combination_rank,
)


@st.composite
def codebook_configs(draw):
    """Random (C, G, σ) with C ∈ G and descending-ish thresholds."""
    num_classes = draw(st.integers(min_value=2, max_value=12))
    extra = draw(st.lists(st.integers(min_value=1, max_value=num_classes - 1),
                          min_size=0, max_size=3, unique=True))
    reference_set = tuple(sorted(set(extra) | {num_classes}))
    thresholds = {}
    for i in reference_set:
        if i == num_classes:
            thresholds[i] = 0.0
        else:
            thresholds[i] = draw(st.floats(min_value=0.0, max_value=1.0,
                                           allow_nan=False))
    return DubheConfig(num_classes=num_classes, reference_set=reference_set,
                       thresholds=thresholds)


def distributions_for(config, n, seed):
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.full(config.num_classes, 0.5), size=n)


class TestLazyEqualsMaterialized:
    @settings(max_examples=scaled_max_examples(30), deadline=None)
    @given(config=codebook_configs())
    def test_every_slot_roundtrips_identically(self, config):
        lazy = RegistryCodebook(config)
        eager = RegistryCodebook(config, materialize=True)
        assert not lazy.materialized and eager.materialized
        assert lazy.length == eager.length
        for index in range(lazy.length):
            category = lazy.category_of(index)
            assert eager.category_of(index).classes == category.classes
            assert lazy.index_of(category) == index
            assert eager.index_of(category) == index

    @settings(max_examples=scaled_max_examples(25), deadline=None)
    @given(config=codebook_configs(),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_register_agrees_between_constructions(self, config, seed):
        lazy = RegistryCodebook(config)
        eager = RegistryCodebook(config, materialize=True)
        for p in distributions_for(config, 8, seed):
            a = lazy.register(p)
            b = eager.register(p)
            assert a.index == b.index
            assert a.block == b.block
            assert a.category.classes == b.category.classes

    @settings(max_examples=scaled_max_examples(25), deadline=None)
    @given(config=codebook_configs(),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_register_batch_equals_register_loop(self, config, seed):
        codebook = RegistryCodebook(config)
        distributions = distributions_for(config, 16, seed)
        batch = codebook.register_batch(distributions)
        for k, p in enumerate(distributions):
            reference = codebook.register(p)
            assert batch.indices[k] == reference.index
            assert batch.blocks[k] == reference.block
        results = codebook.materialize_results(batch)
        overall = batch.overall_registry()
        np.testing.assert_array_equal(overall, codebook.aggregate(results))

    def test_block_categories_matches_slot_order(self):
        config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                             thresholds={1: 0.7, 2: 0.1, 10: 0.0})
        codebook = RegistryCodebook(config)
        for i in (1, 2, 10):
            start = codebook.block_slice(i).start
            for j, combo in enumerate(codebook.block_categories(i)):
                assert codebook.index_of(combo) == start + j
        with pytest.raises(KeyError):
            codebook.block_categories(3)


class TestCombinatorialRanking:
    @settings(max_examples=scaled_max_examples(50), deadline=None)
    @given(data=st.data(),
           n=st.integers(min_value=1, max_value=30),
           )
    def test_rank_unrank_roundtrip(self, data, n):
        k = data.draw(st.integers(min_value=1, max_value=n))
        classes = tuple(sorted(data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     min_size=k, max_size=k, unique=True))))
        rank = combination_rank(classes, n)
        assert 0 <= rank < comb(n, k)
        assert combination_from_rank(rank, n, k) == classes

    def test_rank_is_lexicographic(self):
        for n, k in [(5, 2), (6, 3), (7, 1)]:
            combos = list(combinations(range(n), k))
            assert [combination_rank(c, n) for c in combos] == \
                list(range(len(combos)))

    def test_huge_block_addressable_without_materialising(self):
        # C(40, 20) ≈ 1.4 · 10^11 slots: addressing must stay O(k)
        config = DubheConfig(num_classes=40, reference_set=(1, 20, 40),
                             thresholds={1: 0.5, 20: 0.01, 40: 0.0})
        codebook = RegistryCodebook(config)
        assert codebook.length == 40 + comb(40, 20) + 1
        first = tuple(range(20))
        last = tuple(range(20, 40))
        start = codebook.block_slice(20).start
        assert codebook.index_of(first) == start
        assert codebook.index_of(last) == start + comb(40, 20) - 1
        assert codebook.category_of(start + 12345).classes == \
            combination_from_rank(12345, 40, 20)
        # iteration is lazy: taking a prefix must not build the block
        prefix = list(islice(codebook.block_categories(20), 3))
        assert prefix == [combination_from_rank(r, 40, 20) for r in range(3)]

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(IndexError):
            combination_from_rank(comb(6, 2), 6, 2)
        with pytest.raises(IndexError):
            combination_from_rank(-1, 6, 2)

    def test_unrepresentable_categories_rejected(self):
        config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                             thresholds={1: 0.7, 2: 0.1, 10: 0.0})
        for codebook in (RegistryCodebook(config),
                         RegistryCodebook(config, materialize=True)):
            with pytest.raises(KeyError):
                codebook.index_of((0, 1, 2))  # size 3 not in G
            with pytest.raises(KeyError):
                codebook.index_of((0, 10))  # class out of range
            with pytest.raises(KeyError):
                codebook.index_of(ClientCategory((0, 10)))
            with pytest.raises(IndexError):
                codebook.category_of(codebook.length)


class TestPermutationInvariance:
    @settings(max_examples=scaled_max_examples(30), deadline=None)
    @given(config=codebook_configs(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           perm_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_block_choice_invariant_to_any_permutation(self, config, seed,
                                                       perm_seed):
        """Permuting class labels (ties included) never changes the block."""
        codebook = RegistryCodebook(config)
        rng = np.random.default_rng(perm_seed)
        perm = rng.permutation(config.num_classes)
        for p in distributions_for(config, 6, seed):
            original = codebook.register(p)
            permuted = codebook.register(p[perm])
            assert permuted.block == original.block

    @settings(max_examples=scaled_max_examples(30), deadline=None)
    @given(config=codebook_configs(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           perm_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_category_equivariant_for_tie_free_distributions(self, config,
                                                             seed, perm_seed):
        """For tie-free p, the permuted category is the permuted image."""
        codebook = RegistryCodebook(config)
        rng = np.random.default_rng(perm_seed)
        perm = rng.permutation(config.num_classes)
        # inverse[c] = where class c of the original lands under perm:
        # (p[perm])[inverse[c]] == p[c]
        inverse = np.argsort(perm)
        for p in distributions_for(config, 6, seed):
            if len(np.unique(p)) != len(p):
                continue  # ties: category may legitimately differ
            original = codebook.register(p)
            permuted = codebook.register(p[perm])
            expected = tuple(sorted(int(inverse[c])
                                    for c in original.category.classes))
            assert permuted.category.classes == expected

    def test_tie_break_prefers_lower_class_id(self):
        config = DubheConfig(num_classes=4, reference_set=(1, 4),
                             thresholds={1: 0.4, 4: 0.0})
        codebook = RegistryCodebook(config)
        p = np.array([0.25, 0.45, 0.05, 0.25])
        result = codebook.register(p)
        assert result.category.classes == (1,)
        tied = np.array([0.45, 0.45, 0.05, 0.05])
        assert codebook.register(tied).category.classes == (0,)
        batch = codebook.register_batch(np.stack([p, tied]))
        assert batch.indices.tolist() == [result.index,
                                          codebook.register(tied).index]
