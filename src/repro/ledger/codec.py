"""Serialization between live run objects and ledger rows.

Three codecs live here, all pure functions with exact inverses:

* **Global model state** — ``state_to_bytes``/``state_from_bytes`` pack a
  server state dict (parameter name → float64 array) into one NPZ blob, the
  per-round resume checkpoint.  ``state_sha256`` checksums the blob so a
  damaged checkpoint is detected before anything is restored from it.
* **Run configuration** — ``config_to_dict``/``config_from_dict`` flatten a
  resolved :class:`~repro.federated.FederatedConfig` (including its nested
  :class:`~repro.federated.LocalTrainingConfig` and
  :class:`~repro.scenarios.ScenarioSpec`) to a JSON-ready dict and rebuild
  it.  The ledger-plumbing fields (``run_mode``, ``ledger_path``,
  ``replay_source_run_id``, ``run_name``) are *not* part of the recorded
  config: they say how a run talks to the ledger, not what the run computes.
* **Recipes** — a :class:`RunRecipe` names an importable factory that can
  rebuild the non-serializable simulation components (partition, generator,
  model factory, selector, test set) from keyword arguments, which is what
  lets ``python -m repro.ledger verify``/``resume`` reconstruct a recorded
  run in a fresh process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import io
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

__all__ = [
    "RunRecipe",
    "config_from_dict",
    "config_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "state_from_bytes",
    "state_sha256",
    "state_to_bytes",
]

#: FederatedConfig fields that parameterise the ledger session itself and
#: are therefore excluded from the recorded run configuration.
LEDGER_FIELDS = ("run_mode", "ledger_path", "replay_source_run_id", "run_name")

#: FederatedConfig's nested config groups.  They mirror (or, for transport,
#: extend) the flat fields, so recording them would duplicate every knob and
#: change the recorded schema; the flat form stays the canonical record and
#: the groups are rebuilt from it on load.
GROUP_FIELDS = ("executor", "ledger", "transport")

#: Recorded-config keys that determine a run's numeric results.  RESUME and
#: VERIFY require these to match between the recorded run and the current
#: simulation; executor knobs (back-end, workers, cache sizes) are absent on
#: purpose — all back-ends are bit-identical under float64, which is exactly
#: what makes cross-back-end VERIFY meaningful.
DETERMINISM_KEYS = ("eval_every", "seed", "dtype", "local", "scenario")


# -- model state ---------------------------------------------------------------------


def state_to_bytes(state: Mapping[str, np.ndarray]) -> bytes:
    """Pack a model state dict into one NPZ blob (the checkpoint format).

    Example
    -------
    >>> import numpy as np
    >>> blob = state_to_bytes({"layer.weight": np.ones((2, 2))})
    >>> state_from_bytes(blob)["layer.weight"].shape
    (2, 2)
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{k: np.asarray(v) for k, v in state.items()})
    return buffer.getvalue()


def state_from_bytes(blob: bytes) -> "dict[str, np.ndarray]":
    """Unpack a :func:`state_to_bytes` blob back into a state dict.

    Example
    -------
    >>> import numpy as np
    >>> round_trip = state_from_bytes(state_to_bytes({"b": np.zeros(3)}))
    >>> round_trip["b"].tolist()
    [0.0, 0.0, 0.0]
    """
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def state_sha256(blob: bytes) -> str:
    """Hex SHA-256 of a checkpoint blob (stored next to it, checked on load).

    Example
    -------
    >>> len(state_sha256(b"abc"))
    64
    """
    return hashlib.sha256(blob).hexdigest()


# -- scenario specs ------------------------------------------------------------------


def scenario_to_dict(scenario) -> "Optional[dict]":
    """A :class:`~repro.scenarios.ScenarioSpec` as a JSON-ready dict.

    ``None`` stays ``None`` (a scenario-free run).  Mapping keys become
    strings under JSON; :func:`scenario_from_dict` restores them through the
    spec constructors' own normalisation.

    Example
    -------
    >>> from repro.scenarios import ScenarioSpec
    >>> scenario_to_dict(ScenarioSpec(seed=3))["seed"]
    3
    >>> scenario_to_dict(None) is None
    True
    """
    if scenario is None:
        return None
    return dataclasses.asdict(scenario)


def scenario_from_dict(payload: "Optional[Mapping]"):
    """Rebuild a :class:`~repro.scenarios.ScenarioSpec` from its dict form.

    Example
    -------
    >>> from repro.scenarios import ScenarioSpec
    >>> spec = ScenarioSpec(seed=3)
    >>> scenario_from_dict(scenario_to_dict(spec)) == spec
    True
    """
    from ..scenarios.spec import (AvailabilitySpec, ChurnSpec, DriftSpec,
                                  DropoutSpec, NetworkSpec, ScenarioSpec,
                                  StragglerSpec)

    if payload is None:
        return None
    payload = dict(payload)
    network = payload.get("network")
    return ScenarioSpec(
        availability=AvailabilitySpec(**payload["availability"]),
        churn=ChurnSpec(**payload["churn"]),
        stragglers=StragglerSpec(**payload["stragglers"]),
        dropouts=DropoutSpec(**payload["dropouts"]),
        drift=DriftSpec(**payload["drift"]),
        network=None if network is None else NetworkSpec(**network),
        min_participation=payload["min_participation"],
        seed=payload["seed"],
    )


# -- run configuration ---------------------------------------------------------------


def config_to_dict(config) -> dict:
    """A resolved :class:`~repro.federated.FederatedConfig` as a JSON dict.

    The ledger-plumbing fields (:data:`LEDGER_FIELDS`) are stripped: the
    recorded configuration describes what the run computes, independent of
    which ledger it was recorded to.

    Example
    -------
    >>> from repro.federated import FederatedConfig
    >>> payload = config_to_dict(FederatedConfig(rounds=3, seed=1))
    >>> payload["rounds"], "ledger_path" in payload
    (3, False)
    """
    payload = dataclasses.asdict(config)
    for name in LEDGER_FIELDS + GROUP_FIELDS:
        payload.pop(name, None)
    payload["scenario"] = scenario_to_dict(config.scenario)
    return payload


def config_from_dict(payload: Mapping, **overrides):
    """Rebuild a :class:`~repro.federated.FederatedConfig` from its dict form.

    *overrides* replace recorded fields — the CLI uses this to re-attach the
    ledger plumbing (``run_mode="verify"``, ``ledger_path=...``) and to
    re-execute a recorded run on a different executor back-end.

    Example
    -------
    >>> from repro.federated import FederatedConfig
    >>> recorded = config_to_dict(FederatedConfig(rounds=3, seed=1))
    >>> config_from_dict(recorded, executor_mode="vectorized").rounds
    3
    """
    from ..federated.client import LocalTrainingConfig
    from ..federated.simulation import FederatedConfig

    kwargs = dict(payload)
    for name in GROUP_FIELDS:  # tolerate payloads that recorded the groups
        kwargs.pop(name, None)
    kwargs["local"] = LocalTrainingConfig(**kwargs["local"])
    kwargs["scenario"] = scenario_from_dict(kwargs.get("scenario"))
    kwargs.update(overrides)
    return FederatedConfig(**kwargs)


# -- recipes -------------------------------------------------------------------------


@dataclass(frozen=True)
class RunRecipe:
    """An importable factory that rebuilds a run's simulation components.

    ``target`` is a ``"package.module:function"`` path; calling it with
    ``kwargs`` must return a dict with the keys ``partition``,
    ``generator``, ``model_factory``, ``selector`` and ``test_set`` — the
    non-serializable constructor arguments of
    :class:`~repro.federated.FederatedSimulation`.  Recording a recipe next
    to a run is what makes ``python -m repro.ledger verify``/``resume``
    possible from a cold process; runs recorded without one can still be
    resumed or verified programmatically by whoever can rebuild the
    simulation.

    Example
    -------
    >>> recipe = RunRecipe("repro.ledger.recipes:quick_mlp",
    ...                    {"n_clients": 16, "participants": 4, "seed": 0})
    >>> sorted(recipe.build())
    ['generator', 'model_factory', 'partition', 'selector', 'test_set']
    """

    target: str
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.target:
            raise ValueError(
                "recipe target must be 'package.module:function', got "
                f"{self.target!r}"
            )
        object.__setattr__(self, "kwargs", dict(self.kwargs))

    def resolve(self):
        """Import and return the factory callable.

        Example
        -------
        >>> RunRecipe("repro.ledger.recipes:quick_mlp").resolve().__name__
        'quick_mlp'
        """
        module_name, _, attribute = self.target.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attribute)
        except AttributeError as exc:
            raise ValueError(
                f"recipe target {self.target!r}: {module_name} has no "
                f"attribute {attribute!r}"
            ) from exc

    def build(self) -> dict:
        """Call the factory and validate its component dict.

        Example
        -------
        >>> components = RunRecipe("repro.ledger.recipes:quick_mlp",
        ...                        {"n_clients": 16, "seed": 0}).build()
        >>> components["partition"].n_clients
        16
        """
        components = self.resolve()(**self.kwargs)
        required = {"partition", "generator", "model_factory", "selector",
                    "test_set"}
        if not isinstance(components, Mapping):
            raise ValueError(
                f"recipe {self.target!r} must return a dict of simulation "
                f"components, got {type(components).__name__}"
            )
        missing = required - set(components)
        if missing:
            raise ValueError(
                f"recipe {self.target!r} returned components without "
                f"{sorted(missing)}"
            )
        return components

    def to_dict(self) -> dict:
        """JSON-ready form (the ledger's ``recipe_json`` column).

        Example
        -------
        >>> RunRecipe("m.o:d", {"x": 1}).to_dict()
        {'target': 'm.o:d', 'kwargs': {'x': 1}}
        """
        return {"target": self.target, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunRecipe":
        """Inverse of :meth:`to_dict`.

        Example
        -------
        >>> RunRecipe.from_dict({"target": "m.o:d", "kwargs": {}}).target
        'm.o:d'
        """
        return cls(target=payload["target"],
                   kwargs=dict(payload.get("kwargs") or {}))
