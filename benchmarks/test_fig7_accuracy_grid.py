"""Figure 7 — average accuracy over the last 50 rounds across the ρ × EMD grid.

Paper setup: for every combination of ρ ∈ {1, 2, 5, 10} and EMD_avg ∈
{0, 0.5, 1.0, 1.5}, train with random / Dubhe / greedy selection and report
the average test accuracy over the last 50 rounds.  Findings: accuracy under
random selection decreases with ρ and EMD_avg; Dubhe and greedy are immune to
most of that degradation; all three coincide when there is nothing to balance
(ρ = 1 or EMD_avg = 0).

Reduced scale: the grid corners {ρ = 1, 10} × {EMD = 0, 1.5} (4 cells), N =
60, K = 8, MLP, 40 rounds, tail of 8 evaluated rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import build_federation, make_selector, print_table, run_training

N_CLIENTS = 60
K = 8
ROUNDS = 40
TAIL = 8
GRID_RHO = (1.0, 10.0)
GRID_EMD = (0.0, 1.5)
SELECTORS = ("random", "dubhe", "greedy")


def paper_scale() -> dict:
    return {"rho_grid": (1, 2, 5, 10), "emd_grid": (0, 0.5, 1.0, 1.5),
            "n_clients": 1000, "k": 20, "tail_rounds": 50}


@pytest.mark.benchmark(group="fig7")
def test_fig7_accuracy_grid(benchmark):
    def experiment():
        results = {}
        for rho in GRID_RHO:
            for emd in GRID_EMD:
                fed = build_federation("mnist", rho=rho, emd_avg=emd,
                                       n_clients=N_CLIENTS, seed=5)
                cell = {}
                for name in SELECTORS:
                    selector = make_selector(name, fed, K, seed=5)
                    history = run_training(fed, selector, rounds=ROUNDS, k=K,
                                           model="mlp", eval_every=2,
                                           learning_rate=3e-3, seed=5)
                    cell[name] = history.tail_average_accuracy(TAIL)
                results[(rho, emd)] = cell
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for (rho, emd), cell in results.items():
        rows.append({"rho": rho, "emd_avg": emd} |
                    {name: round(acc, 3) for name, acc in cell.items()})
    print_table(f"Figure 7: tail accuracy across the grid (last {TAIL} evaluations)", rows)

    hardest = results[(10.0, 1.5)]
    easiest = results[(1.0, 0.0)]
    # random selection suffers between the easy corner and the hard corner
    assert hardest["random"] <= easiest["random"] + 0.03
    # in the hard corner the balanced selections do not do worse than random
    assert hardest["dubhe"] >= hardest["random"] - 0.05
    assert hardest["greedy"] >= hardest["random"] - 0.05
    # in the easy corner all three methods are equivalent (nothing to balance)
    spread = max(easiest.values()) - min(easiest.values())
    assert spread < 0.15
