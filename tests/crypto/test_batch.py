"""Tests for precomputed noise (NoisePool) and parallel batch crypto."""

import random
import threading

import numpy as np
import pytest

from repro.crypto.batch import BatchCryptoExecutor, decrypt_many, encrypt_many
from repro.crypto.packing import PackedEncryptedVector
from repro.crypto.paillier import NoisePool, generate_keypair
from repro.crypto.vector import EncryptedVector


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=128, rng=random.Random(314))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


class TestRawEncryptFastPaths:
    def test_rn_value_matches_r_value(self, pk):
        r = pk.get_random_lt_n(random.Random(1))
        rn = pow(r, pk.n, pk.nsquare)
        assert pk.raw_encrypt(42, r_value=r) == pk.raw_encrypt(42, rn_value=rn)

    def test_deferred_obfuscation_decrypts_identically(self, pk, sk):
        bare = pk.raw_encrypt(7, obfuscate=False)
        assert bare == (1 + pk.n * 7) % pk.nsquare  # deterministic g^m
        obfuscated = pk.raw_obfuscate(bare, rng=random.Random(2))
        assert obfuscated != bare
        assert sk.raw_decrypt(obfuscated) == 7

    def test_obfuscate_with_precomputed_term(self, pk, sk):
        pool = NoisePool(pk, rng=random.Random(3))
        c = pk.raw_obfuscate(pk.raw_encrypt(9, obfuscate=False), rn_value=pool.take())
        assert sk.raw_decrypt(c) == 9

    def test_gcd_skip_fast_path_stays_in_range(self, pk):
        rng = random.Random(4)
        for _ in range(32):
            r = pk.get_random_lt_n(rng, check_coprime=False)
            assert 1 <= r < pk.n


class TestNoisePool:
    def test_refill_and_take(self, pk):
        pool = NoisePool(pk, rng=random.Random(0), batch_size=4)
        pool.refill(3)
        assert len(pool) == 3
        term = pool.take()
        assert 0 < term < pk.nsquare
        assert len(pool) == 2

    def test_take_auto_refills_when_empty(self, pk):
        pool = NoisePool(pk, rng=random.Random(1), batch_size=5)
        assert len(pool) == 0
        pool.take()
        assert len(pool) == 4  # one batch generated, one term consumed
        assert pool.generated == 5

    def test_take_many_covers_shortfall(self, pk):
        pool = NoisePool(pk, rng=random.Random(2))
        pool.refill(2)
        terms = pool.take_many(6)
        assert len(terms) == 6
        assert len(pool) == 0
        assert pool.generated == 6

    def test_terms_decrypt_correctly(self, pk, sk):
        pool = NoisePool(pk, rng=random.Random(3))
        for _ in range(5):
            assert sk.raw_decrypt(pk.raw_encrypt(11, rn_value=pool.take())) == 11

    def test_thread_safety(self, pk):
        pool = NoisePool(pk, rng=random.Random(4), batch_size=8)
        pool.refill(64)
        taken = []
        lock = threading.Lock()

        def worker():
            got = [pool.take() for _ in range(8)]
            with lock:
                taken.extend(got)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(taken) == 64
        assert len(set(taken)) == 64  # no term handed out twice

    def test_invalid_arguments(self, pk):
        with pytest.raises(ValueError):
            NoisePool(pk, batch_size=0)
        pool = NoisePool(pk)
        with pytest.raises(ValueError):
            pool.refill(-1)
        with pytest.raises(ValueError):
            pool.take_many(-1)


class TestBatchCryptoExecutor:
    @pytest.fixture(scope="class")
    def matrix(self):
        return np.random.default_rng(7).uniform(0, 1, (6, 10))

    @pytest.mark.parametrize("mode", ["sequential", "thread", "process"])
    def test_modes_roundtrip_per_component(self, pk, sk, matrix, mode):
        executor = BatchCryptoExecutor(mode, max_workers=2)
        encrypted = executor.encrypt_many(pk, matrix)
        assert all(isinstance(e, EncryptedVector) for e in encrypted)
        decrypted = executor.decrypt_many(sk, encrypted)
        for out, expected in zip(decrypted, matrix):
            np.testing.assert_allclose(out, expected, atol=1e-12)

    @pytest.mark.parametrize("mode", ["sequential", "thread"])
    def test_modes_roundtrip_packed(self, pk, sk, matrix, mode):
        executor = BatchCryptoExecutor(mode, max_workers=2)
        encrypted = executor.encrypt_many(pk, matrix, packed=True, max_weight=8)
        assert all(isinstance(e, PackedEncryptedVector) for e in encrypted)
        for out, expected in zip(executor.decrypt_many(sk, encrypted), matrix):
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_modes_produce_identical_plaintexts(self, pk, sk, matrix):
        results = {}
        for mode in ("sequential", "thread"):
            encrypted = BatchCryptoExecutor(mode).encrypt_many(pk, matrix,
                                                               packed=True,
                                                               max_weight=8)
            results[mode] = np.stack(
                BatchCryptoExecutor(mode).decrypt_many(sk, encrypted))
        np.testing.assert_array_equal(results["sequential"], results["thread"])

    def test_shared_noise_pool_in_thread_mode(self, pk, sk, matrix):
        pool = NoisePool(pk, rng=random.Random(8))
        pool.refill(matrix.size)
        executor = BatchCryptoExecutor("thread", max_workers=3)
        encrypted = executor.encrypt_many(pk, matrix, noise=pool)
        for out, expected in zip(executor.decrypt_many(sk, encrypted), matrix):
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_noise_pool_pre_drawn_for_process_mode(self, pk, sk):
        vectors = np.random.default_rng(9).uniform(0, 1, (3, 4))
        pool = NoisePool(pk, rng=random.Random(10))
        executor = BatchCryptoExecutor("process", max_workers=2)
        encrypted = executor.encrypt_many(pk, vectors, packed=True, max_weight=4,
                                          noise=pool)
        assert pool.generated > 0  # terms drawn in the parent, shipped to workers
        for out, expected in zip(executor.decrypt_many(sk, encrypted), vectors):
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_empty_input(self, pk, sk):
        executor = BatchCryptoExecutor("sequential")
        assert executor.encrypt_many(pk, []) == []
        assert executor.decrypt_many(sk, []) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BatchCryptoExecutor("gpu")
        with pytest.raises(ValueError):
            BatchCryptoExecutor("thread", max_workers=0)

    def test_convenience_wrappers(self, pk, sk):
        vectors = [[0.5, 0.25], [0.125, 1.0]]
        encrypted = encrypt_many(pk, vectors, mode="thread", max_workers=2)
        decrypted = decrypt_many(sk, encrypted, mode="thread", max_workers=2)
        np.testing.assert_allclose(np.stack(decrypted), np.asarray(vectors),
                                   atol=1e-12)
