"""A single encrypted number supporting additive homomorphic arithmetic.

:class:`EncryptedNumber` wraps a raw Paillier ciphertext together with the
public key and the fixed-point scale of its plaintext.  It supports:

* ``enc + enc`` — ciphertext-ciphertext addition,
* ``enc + plain`` — ciphertext-plaintext addition,
* ``enc * scalar`` — multiplication by a plaintext integer scalar,
* re-randomisation (:meth:`obfuscate`) so that repeated transmissions of the
  same value are unlinkable.

These are exactly the operations Dubhe's server needs: it sums the encrypted
registries / label distributions of the participating clients without ever
decrypting them.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from .encoding import DEFAULT_BASE, DEFAULT_PRECISION, FixedPointEncoder
from .paillier import PaillierPrivateKey, PaillierPublicKey

__all__ = ["EncryptedNumber", "encrypt_number", "decrypt_number"]

Number = Union[int, float]


class EncryptedNumber:
    """A Paillier ciphertext of a fixed-point encoded number."""

    __slots__ = ("public_key", "ciphertext", "base", "precision")

    def __init__(self, public_key: PaillierPublicKey, ciphertext: int,
                 base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION):
        self.public_key = public_key
        self.ciphertext = ciphertext
        self.base = base
        self.precision = precision

    # -- construction / destruction -----------------------------------------

    @classmethod
    def encrypt(cls, public_key: PaillierPublicKey, value: Number,
                encoder: Optional[FixedPointEncoder] = None,
                rng: Optional[random.Random] = None) -> "EncryptedNumber":
        """Encrypt a float/int under *public_key*."""
        encoder = encoder or FixedPointEncoder()
        encoded = encoder.encode(value)
        modular = encoder.to_modular(encoded, public_key)
        raw = public_key.raw_encrypt(modular, rng=rng)
        return cls(public_key, raw, encoder.base, encoder.precision)

    def decrypt(self, private_key: PaillierPrivateKey) -> float:
        """Decrypt back to a float with this ciphertext's fixed-point scale."""
        if private_key.public_key != self.public_key:
            raise ValueError("private key does not match this ciphertext's public key")
        encoder = FixedPointEncoder(self.base, self.precision)
        residue = private_key.raw_decrypt(self.ciphertext)
        return encoder.decode_modular(residue, self.public_key)

    # -- homomorphic arithmetic ---------------------------------------------

    def _check_compatible(self, other: "EncryptedNumber") -> None:
        if self.public_key != other.public_key:
            raise ValueError("cannot combine ciphertexts under different keys")
        if self.base != other.base or self.precision != other.precision:
            raise ValueError("cannot combine ciphertexts with different scales")

    def __add__(self, other: Union["EncryptedNumber", Number]) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            self._check_compatible(other)
            raw = self.public_key.raw_add(self.ciphertext, other.ciphertext)
            return EncryptedNumber(self.public_key, raw, self.base, self.precision)
        if isinstance(other, (int, float)):
            encoder = FixedPointEncoder(self.base, self.precision)
            encoded = encoder.encode(other)
            modular = encoder.to_modular(encoded, self.public_key)
            raw = self.public_key.raw_add_plain(self.ciphertext, modular)
            return EncryptedNumber(self.public_key, raw, self.base, self.precision)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "EncryptedNumber":
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            raise TypeError("EncryptedNumber only supports multiplication by int scalars")
        raw = self.public_key.raw_mul(self.ciphertext, scalar)
        return EncryptedNumber(self.public_key, raw, self.base, self.precision)

    __rmul__ = __mul__

    # -- utilities -----------------------------------------------------------

    def obfuscate(self, rng: Optional[random.Random] = None) -> "EncryptedNumber":
        """Re-randomise the ciphertext (multiply by an encryption of zero)."""
        r = self.public_key.get_random_lt_n(rng)
        blinder = pow(r, self.public_key.n, self.public_key.nsquare)
        raw = (self.ciphertext * blinder) % self.public_key.nsquare
        return EncryptedNumber(self.public_key, raw, self.base, self.precision)

    def nbytes(self) -> int:
        """Wire size of this ciphertext in bytes."""
        return self.public_key.ciphertext_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncryptedNumber(key_bits={self.public_key.key_size}, "
            f"precision={self.precision})"
        )


def encrypt_number(public_key: PaillierPublicKey, value: Number,
                   rng: Optional[random.Random] = None) -> EncryptedNumber:
    """Functional shorthand for :meth:`EncryptedNumber.encrypt`."""
    return EncryptedNumber.encrypt(public_key, value, rng=rng)


def decrypt_number(private_key: PaillierPrivateKey, value: EncryptedNumber) -> float:
    """Functional shorthand for :meth:`EncryptedNumber.decrypt`."""
    return value.decrypt(private_key)
