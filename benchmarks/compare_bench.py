#!/usr/bin/env python
"""Regression gate: compare a smoke benchmark run against a committed baseline.

CI runs the smoke variants of ``bench_crypto.py`` / ``bench_sim.py`` /
``bench_registry.py`` on whatever runner it gets, so *absolute* throughput is
not comparable to the committed ``BENCH_*.json`` (different CPUs, different
load).  What IS comparable are the machine-relative **ratios** both files
record — packed vs per-component encryption, vectorized vs sequential
training, warm vs cold rounds, batched vs sequential evaluation, batched vs
looped registration and streaming vs materialised peak memory: each divides
two measurements taken on the same box, so a code-level regression moves
them on every machine.

This script extracts every ratio metric present in *both* files and fails
(exit 1) when any candidate value has regressed more than ``--tolerance``
(default 30%) below the baseline.  ``--allow-regression`` downgrades
failures to warnings — the override for intentional trade-offs (pair it with
regenerating the committed baseline in the same PR).

Two guardrails keep the gate honest:

* only *stable* ratios are compared — averaged-over-many-operations or
  deterministic ones (packed-encrypt speedup, wire-size ratio, per-mode
  training speedups, warm/cold split, eval speedup).  One-shot
  millisecond-scale timings (crypto aggregate/decrypt) are recorded in the
  JSON but excluded here: on a loaded shared runner they can swing far more
  than any real regression.
* every metric carries a **workload fingerprint** (cohort size, test-set
  size, client count, …); a metric whose fingerprint differs between
  baseline and candidate is skipped with a warning instead of being gated
  across incomparable workloads.

A second mode reads a run ledger (:mod:`repro.ledger`) instead of two JSON
files: every recorded run embeds the committed ``BENCH_*.json`` payloads and
the git SHA it ran under, so ``--ledger`` prints how each gated ratio moved
across the recorded runs — a metric *trajectory* rather than a two-point
gate.

Usage::

    python benchmarks/compare_bench.py --baseline BENCH_sim.json \
        --candidate /tmp/BENCH_sim_smoke.json
    python benchmarks/compare_bench.py --ledger runs.db
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["compare", "extract_metrics", "ledger_trajectories", "main"]


#: crypto speedup components stable enough to gate: ``encrypt`` is averaged
#: over every client's full registry, ``wire`` is a deterministic byte ratio.
#: ``aggregate``/``decrypt`` are one-shot millisecond timings — recorded in
#: the JSON, too noisy to gate on shared runners.
STABLE_CRYPTO_COMPONENTS = ("encrypt", "wire")

#: executor modes whose speedup-vs-sequential ratio tracks code-level changes
#: rather than the host: ``thread``/``process`` ratios swing with core count
#: and spawn overhead, so they are recorded but never gated.
STABLE_SIM_MODES = ("vectorized",)


def extract_metrics(payload: dict) -> dict[str, dict]:
    """Flatten a BENCH_*.json payload to comparable ratio metrics.

    Keys are stable, human-readable paths (``sim/k=32/speedup/vectorized``);
    each entry holds the dimensionless ``value`` and the ``workload``
    fingerprint it was measured under.  Unknown payloads yield an empty dict
    rather than an error, so the gate degrades gracefully on schema drift.
    """
    metrics: dict[str, dict] = {}

    def add(key: str, value: float, workload: dict) -> None:
        metrics[key] = {"value": float(value), "workload": workload}

    benchmark = payload.get("benchmark", "")
    if benchmark == "crypto_throughput":
        for row in payload.get("results", []):
            key = f"crypto/key={row.get('key_size')}"
            workload = {"n_clients": row.get("n_clients"),
                        "registry_length": row.get("registry_length")}
            for component, value in (row.get("speedup") or {}).items():
                if component in STABLE_CRYPTO_COMPONENTS:
                    add(f"{key}/speedup/{component}", value, workload)
    elif benchmark == "simulation_throughput":
        for row in payload.get("results", []):
            key = f"sim/k={row.get('k')}"
            workload = {"samples_per_client": row.get("samples_per_client")}
            for mode, value in (row.get("speedup_vs_sequential") or {}).items():
                if mode in STABLE_SIM_MODES:
                    add(f"{key}/speedup/{mode}", value, workload)
        # multi_round's warm_vs_cold_speedup is NOT gated: its numerator is a
        # one-shot cold-round timing, exactly the class of measurement the
        # module guardrail excludes (the nightly --min-warm-speedup gate
        # checks it against a loose absolute floor instead)
        evaluation = payload.get("evaluation")
        if evaluation:
            add("sim/evaluation/batched_vs_sequential_speedup",
                evaluation["batched_vs_sequential_speedup"],
                {"n_test": evaluation.get("n_test"),
                 "sequential_batch_size": evaluation.get("sequential_batch_size")})
    elif benchmark == "registry_scale":
        for row in payload.get("results", []):
            key = f"registry/n={row.get('n')}"
            registration = row.get("registration") or {}
            workload = {"batch_size": row.get("batch_size"),
                        "num_classes": row.get("num_classes"),
                        "loop_clients": registration.get("loop_clients")}
            speedup = (row.get("speedup") or {}).get("register_batch")
            if speedup is not None:
                # averaged over >= 10^4 registrations per side: stable
                add(f"{key}/speedup/register_batch", speedup, workload)
            memory = row.get("memory") or {}
            # reduction is only recorded when the materialised run covered
            # the same N (it is capped at smoke scale); tracemalloc peaks
            # are allocation counts, not timings, so the ratio is stable
            if memory.get("reduction") is not None:
                add(f"{key}/memory/reduction", memory["reduction"],
                    {"batch_size": row.get("batch_size"),
                     "num_classes": row.get("num_classes"),
                     "materialized_clients": memory.get("materialized_clients")})
        secure = payload.get("secure")
        if secure:
            # deterministic byte ratio: count packing vs the float default
            per_client = secure.get("ciphertexts_per_client") or {}
            if per_client.get("count_packing"):
                add("registry/secure/packing_ciphertext_ratio",
                    per_client["default_packing"] / per_client["count_packing"],
                    {"n_clients": secure.get("n_clients"),
                     "key_size": secure.get("key_size")})
    return metrics


def compare(baseline: dict[str, dict], candidate: dict[str, dict],
            tolerance: float) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines) for the shared metrics.

    Metrics whose workload fingerprints differ between the two files are
    reported as skipped, never gated — a ratio measured on a different
    test-set size or cohort is not evidence either way.
    """
    lines: list[str] = []
    regressions: list[str] = []
    shared = sorted(set(baseline) & set(candidate))
    for key in shared:
        base = baseline[key]
        cand = candidate[key]
        if base["workload"] != cand["workload"]:
            lines.append(
                f"  {key}: SKIPPED (workload mismatch: baseline "
                f"{base['workload']}, candidate {cand['workload']})"
            )
            continue
        floor = base["value"] * (1.0 - tolerance)
        status = "ok"
        if cand["value"] < floor:
            status = "REGRESSED"
            regressions.append(
                f"{key}: {cand['value']:g}x < {floor:g}x "
                f"(baseline {base['value']:g}x - {tolerance:.0%})"
            )
        lines.append(f"  {key}: baseline {base['value']:g}x, "
                     f"candidate {cand['value']:g}x [{status}]")
    return lines, regressions


def ledger_trajectories(runs: "list") -> dict[str, list[tuple[str, str, float]]]:
    """Per-metric value trajectories across a ledger's recorded runs.

    *runs* is ``RunLedger.runs()`` output (oldest first).  Each run's
    embedded ``BENCH_*.json`` payloads go through :func:`extract_metrics`;
    the result maps metric key -> ordered ``(run_id, git_sha, value)``
    samples.  Runs recorded without benchmark context (or with payloads too
    large to embed) simply contribute nothing.
    """
    trajectories: dict[str, list[tuple[str, str, float]]] = {}
    for info in runs:
        bench = info.bench or {}
        sha = (bench.get("git_sha") or "-")[:9]
        for payload in (bench.get("bench") or {}).values():
            if not isinstance(payload, dict) or payload.get("skipped"):
                continue
            for key, metric in extract_metrics(payload).items():
                trajectories.setdefault(key, []).append(
                    (info.run_id, sha, metric["value"]))
    return trajectories


def _print_ledger(path: str) -> int:
    sys.path.insert(0, "src")  # repo-root invocation without PYTHONPATH
    from repro.ledger import LedgerError, RunLedger

    try:
        with RunLedger(path, create=False) as ledger:
            runs = ledger.runs()
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trajectories = ledger_trajectories(runs)
    if not trajectories:
        print(f"no benchmark context recorded in {path}")
        return 0
    print(f"benchmark ratio trajectories across {len(runs)} recorded "
          f"run(s) in {path}:")
    for key in sorted(trajectories):
        print(f"  {key}:")
        for run_id, sha, value in trajectories[key]:
            print(f"    {run_id}  {sha:<9}  {value:g}x")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ledger", default=None,
                        help="print metric trajectories across the runs "
                             "recorded in this ledger instead of gating two "
                             "JSON files")
    parser.add_argument("--baseline",
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--candidate",
                        help="freshly generated smoke BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below the baseline "
                             "ratio before the gate fails (default 0.30)")
    parser.add_argument("--allow-regression", action="store_true",
                        help="report regressions but exit 0 (override for "
                             "intentional trade-offs)")
    args = parser.parse_args(argv)
    if args.ledger is not None:
        return _print_ledger(args.ledger)
    if args.baseline is None or args.candidate is None:
        parser.error("--baseline and --candidate are required "
                     "(or use --ledger)")
    if not 0 <= args.tolerance < 1:
        print("tolerance must lie in [0, 1)", file=sys.stderr)
        return 2

    with open(args.baseline) as fh:
        baseline = extract_metrics(json.load(fh))
    with open(args.candidate) as fh:
        candidate = extract_metrics(json.load(fh))

    if not baseline:
        print(f"no comparable metrics in baseline {args.baseline}", file=sys.stderr)
        return 2
    lines, regressions = compare(baseline, candidate, args.tolerance)
    if not lines:
        print("no shared metrics between baseline and candidate", file=sys.stderr)
        return 2

    print(f"comparing {args.candidate} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%}):")
    for line in lines:
        print(line)
    if all("SKIPPED" in line for line in lines):
        print("WARNING: every shared metric was measured under a different "
              "workload; nothing was gated")
        return 0
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        if args.allow_regression:
            print("--allow-regression set: exiting 0 despite regressions")
            return 0
        return 1
    print("OK: no metric regressed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
