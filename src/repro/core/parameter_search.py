"""The Dubhe parameter-search procedure (§5.3.2).

The registration thresholds ``σ_i`` decide how concentrated a client's data
must be before it is categorised as having ``i`` dominating classes.  Poorly
chosen thresholds push every client into the "no dominating class" bucket
(registry carries no information) or categorise weakly skewed clients too
aggressively (participation probabilities stop flattening the population
distribution).

Whenever the federation's structure changes (global data pattern, client
count, participation rate), the unsettled selection module traverses a grid
of candidate thresholds; for each candidate it simulates ``H`` tentative
selections and scores ``||E_h(p_o,h) − p_u||₁``.  The winning thresholds are
dispatched to the clients and the module is settled.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional, Sequence

import numpy as np

from .config import DubheConfig
from .multitime import multi_time_selection
from .probability import bernoulli_participation, participation_probabilities
from .registry import RegistryCodebook

__all__ = ["ParameterSearchResult", "default_sigma_grid", "search_thresholds"]


@dataclass(frozen=True)
class ParameterSearchResult:
    """Outcome of a parameter search."""

    thresholds: dict[int, float]
    score: float                       # ||E_h(p_o,h) − p_u||₁ of the winner
    config: DubheConfig                # a settled copy of the input config
    all_scores: dict[tuple[float, ...], float]  # grid point → score


def default_sigma_grid(values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)) -> tuple[float, ...]:
    """The default grid of candidate threshold values."""
    grid = tuple(float(v) for v in values)
    if not grid or any(not 0 <= v <= 1 for v in grid):
        raise ValueError("sigma grid values must lie in [0, 1]")
    return grid


def _score_candidate(config: DubheConfig, client_distributions: np.ndarray,
                     tries: int, rng: np.random.Generator) -> float:
    """Score one threshold assignment by the expected population bias."""
    codebook = RegistryCodebook(config)
    registrations = codebook.register_many(client_distributions)
    overall = codebook.aggregate(registrations)
    probabilities = participation_probabilities(
        codebook, registrations, overall, config.participants_per_round
    )
    uniform = np.full(config.num_classes, 1.0 / config.num_classes)
    n_clients = client_distributions.shape[0]

    def draw(_h: int) -> list[int]:
        volunteers = bernoulli_participation(probabilities, rng=rng)
        pool = [int(v) for v in volunteers]
        k = config.participants_per_round
        if len(pool) > k:
            keep = rng.choice(len(pool), size=k, replace=False)
            pool = [pool[i] for i in keep]
        elif len(pool) < k:
            outside = np.setdiff1d(np.arange(n_clients), np.asarray(pool, dtype=int))
            extra = rng.choice(outside, size=k - len(pool), replace=False)
            pool.extend(int(e) for e in extra)
        return pool

    def population_of(selected: Sequence[int]) -> np.ndarray:
        return client_distributions[np.asarray(list(selected), dtype=int)].mean(axis=0)

    result = multi_time_selection(draw, population_of, uniform, tries)
    # §5.3.2 scores the *expectation* of p_o over the H tries
    return float(np.abs(result.mean_population - uniform).sum())


def search_thresholds(client_distributions: np.ndarray, config: DubheConfig,
                      sigma_grid: Optional[Sequence[float]] = None,
                      tries: Optional[int] = None,
                      seed: Optional[int] = None) -> ParameterSearchResult:
    """Grid-search the registration thresholds for a federation.

    Parameters
    ----------
    client_distributions:
        Plaintext label distributions used to *simulate* the search.  In the
        deployed protocol the equivalent information only ever flows through
        encrypted registries/distributions; the search itself evaluates the
        same quantity ``||E_h(p_o,h) − p_u||₁`` the agent would compute from
        decrypted aggregates.
    config:
        A :class:`DubheConfig`; its ``thresholds`` are ignored except σ_C.
    sigma_grid:
        Candidate values for every free threshold (defaults to
        ``{0.1, 0.3, 0.5, 0.7, 0.9}``).
    tries:
        Number of tentative selections per grid point (defaults to the
        config's ``tentative_selections``).
    """
    distributions = np.asarray(client_distributions, dtype=float)
    if distributions.ndim != 2 or distributions.shape[1] != config.num_classes:
        raise ValueError("client_distributions must be (n_clients, num_classes)")
    grid = default_sigma_grid() if sigma_grid is None else default_sigma_grid(sigma_grid)
    tries = config.tentative_selections if tries is None else int(tries)
    if tries < 1:
        raise ValueError("tries must be positive")
    rng = np.random.default_rng(seed if seed is not None else config.seed)

    free = [i for i in config.reference_set if i != config.num_classes]
    if not free:
        settled = config.with_thresholds({config.num_classes: 0.0})
        score = _score_candidate(settled, distributions, tries, rng)
        return ParameterSearchResult({config.num_classes: 0.0}, score, settled, {(): score})

    best_score = np.inf
    best_thresholds: dict[int, float] = {}
    all_scores: dict[tuple[float, ...], float] = {}
    for assignment in product(grid, repeat=len(free)):
        # thresholds must be non-increasing in i: a block with more dominating
        # classes cannot demand a higher per-class share than a smaller block
        if any(assignment[j] < assignment[j + 1] for j in range(len(assignment) - 1)):
            continue
        thresholds = {i: s for i, s in zip(free, assignment)}
        thresholds[config.num_classes] = 0.0
        candidate = config.with_thresholds(thresholds)
        score = _score_candidate(candidate, distributions, tries, rng)
        all_scores[assignment] = score
        if score < best_score:
            best_score = score
            best_thresholds = thresholds
    settled = config.with_thresholds(best_thresholds)
    return ParameterSearchResult(best_thresholds, float(best_score), settled, all_scores)
