"""NumPy neural-network substrate (the reproduction's PyTorch stand-in).

Public API
----------
* :class:`Module`, :class:`Parameter` — model/parameter plumbing with
  ``state_dict`` and flat-vector views for federated aggregation.
* layers — :class:`Linear`, :class:`Conv2d`, :class:`MaxPool2d`,
  :class:`AvgPool2d`, :class:`ReLU`, :class:`Flatten`, :class:`Dropout`,
  :class:`Sequential`.
* :class:`CrossEntropyLoss`, :func:`softmax`, :func:`log_softmax`.
* optimisers — :class:`SGD`, :class:`Adam`.
* models — :class:`MLP`, :class:`MnistCNN`, :class:`CifarCNN`,
  :func:`build_model`.
* metrics — :func:`accuracy`, :func:`evaluate_model`,
  :class:`BatchedEvaluator` (forward-only batched test pass).
* cohort execution — :class:`BatchedModel`, :class:`BatchedParameter`,
  :func:`batched_cross_entropy` (train K clients as one batched tensor
  program; see :mod:`repro.nn.batched`).
"""

from .batched import (
    BatchedModel,
    BatchedParameter,
    UnvectorizableModelError,
    batched_cross_entropy,
    register_cohort_chain,
    register_layer_vectorizer,
)
from .conv import AvgPool2d, Conv2d, MaxPool2d, col2im, im2col
from .init import kaiming_uniform, xavier_uniform, zeros
from .layers import Dropout, Flatten, Linear, ReLU, Sequential
from .loss import CrossEntropyLoss, log_softmax, softmax
from .metrics import (
    BatchedEvaluator,
    accuracy,
    confusion_matrix,
    evaluate_model,
    per_class_accuracy,
)
from .models import MLP, CifarCNN, MnistCNN, build_model
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchedEvaluator",
    "BatchedModel",
    "BatchedParameter",
    "CifarCNN",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "Linear",
    "MLP",
    "MaxPool2d",
    "MnistCNN",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "UnvectorizableModelError",
    "accuracy",
    "batched_cross_entropy",
    "build_model",
    "col2im",
    "confusion_matrix",
    "evaluate_model",
    "im2col",
    "kaiming_uniform",
    "log_softmax",
    "per_class_accuracy",
    "register_cohort_chain",
    "register_layer_vectorizer",
    "softmax",
    "xavier_uniform",
    "zeros",
]
