"""Multi-time (H-time) tentative selection (§5.3).

Because registries and label distributions travel under additive HE, the
federation can cheaply *rehearse* a selection several times before committing:
each tentative try produces a candidate participant set whose population
distribution is scored (by the agent) against the uniform distribution, and
the best try wins.  The same machinery scores candidate thresholds during the
parameter search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["TentativeTry", "MultiTimeResult", "multi_time_selection"]

T = TypeVar("T")


@dataclass(frozen=True)
class TentativeTry:
    """One tentative draw and its unbiasedness score ``||p_o,h − p_u||₁``.

    Example
    -------
    >>> import numpy as np
    >>> TentativeTry(0, (1, 2), 0.5, np.array([0.75, 0.25])).score
    0.5
    """

    index: int
    candidate: tuple
    score: float
    population: np.ndarray


@dataclass(frozen=True)
class MultiTimeResult:
    """Outcome of an H-time selection.

    Example
    -------
    >>> import numpy as np
    >>> t = TentativeTry(0, (1,), 0.5, np.array([0.75, 0.25]))
    >>> MultiTimeResult(t, (t,)).best_score
    0.5
    """

    best: TentativeTry
    tries: tuple[TentativeTry, ...]

    @property
    def best_score(self) -> float:
        """Score of the winning tentative try."""
        return self.best.score

    @property
    def scores(self) -> np.ndarray:
        """All H scores in try order."""
        return np.array([t.score for t in self.tries])

    @property
    def mean_population(self) -> np.ndarray:
        """``E_h(p_o,h)`` — the statistic scored by the parameter search."""
        return np.mean([t.population for t in self.tries], axis=0)


def multi_time_selection(
    draw: Callable[[int], Sequence[int]],
    population_of: Callable[[Sequence[int]], np.ndarray],
    uniform: np.ndarray,
    tries: int,
    population_of_many: Callable[[Sequence[Sequence[int]]], np.ndarray] | None = None,
) -> MultiTimeResult:
    """Run *tries* tentative draws and keep the one closest to uniform.

    Parameters
    ----------
    draw:
        ``draw(h)`` produces the candidate participant set of tentative try
        ``h`` (client indices — any integer sequence, including NumPy index
        arrays; candidates are normalised to tuples of Python ints so
        downstream consumers can serialise them).
    population_of:
        Maps a candidate set to its population distribution ``p_o``.
    uniform:
        The target distribution ``p_u``.
    tries:
        Number of tentative selections ``H``.
    population_of_many:
        Optional batch counterpart of *population_of*: maps a list of
        candidate sets to the ``(H, C)`` matrix of their populations.  When
        given (and the non-empty draws share one size), all H tries are
        scored with one vectorised pass instead of H Python calls; row ``h``
        must equal ``population_of(candidates[h])``.

    Example
    -------
    >>> import numpy as np
    >>> dists = np.array([[1.0, 0.0], [0.0, 1.0]])
    >>> result = multi_time_selection(
    ...     draw=lambda h: [h], population_of=lambda c: dists[list(c)].mean(axis=0),
    ...     uniform=np.array([0.5, 0.5]), tries=2)
    >>> result.best.candidate in {(0,), (1,)}
    True
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    uniform = np.asarray(uniform, dtype=float)
    candidates = [tuple(int(c) for c in draw(h)) for h in range(tries)]
    populations: list[Optional[np.ndarray]] = [None] * tries
    scores = np.empty(tries)
    non_empty = [h for h, c in enumerate(candidates) if c]
    if non_empty:
        sizes = {len(candidates[h]) for h in non_empty}
        if population_of_many is not None and len(sizes) == 1:
            batch = np.asarray(
                population_of_many([candidates[h] for h in non_empty]), dtype=float
            )
            batch_scores = np.abs(batch - uniform[None, :]).sum(axis=1)
            for j, h in enumerate(non_empty):
                populations[h] = batch[j]
                scores[h] = float(batch_scores[j])
        else:
            for h in non_empty:
                populations[h] = np.asarray(population_of(candidates[h]), dtype=float)
                scores[h] = float(np.abs(populations[h] - uniform).sum())
    results: list[TentativeTry] = []
    for h, candidate in enumerate(candidates):
        if populations[h] is None:
            # an empty draw is maximally biased; keep it only if every try is empty
            population = uniform * 0.0
            score = float(np.abs(uniform).sum()) + 1.0
        else:
            population = populations[h]
            score = scores[h]
        results.append(TentativeTry(h, candidate, score, population))
    best = min(results, key=lambda t: t.score)
    return MultiTimeResult(best, tuple(results))
