"""Partial-round aggregation: survivor weights and the server's skip policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples
from repro.federated.aggregation import (
    partial_round_weights,
    weighted_average_states,
)
from repro.federated.server import FederatedServer
from repro.nn.models import MLP


@st.composite
def counts_and_survivors(draw):
    """A planned cohort's sample counts plus a non-empty survivor subset."""
    counts = draw(st.lists(st.integers(min_value=1, max_value=512),
                           min_size=1, max_size=32))
    survivors = draw(st.sets(st.integers(min_value=0, max_value=len(counts) - 1),
                             min_size=1, max_size=len(counts)))
    return counts, sorted(survivors)


class TestPartialRoundWeightsProperties:
    @settings(max_examples=scaled_max_examples(200), deadline=None)
    @given(case=counts_and_survivors())
    def test_weights_over_any_survivor_subset_sum_to_one(self, case):
        counts, survivors = case
        weights = partial_round_weights(counts, survivors=survivors)
        assert weights.shape == (len(survivors),)
        assert np.all(weights > 0)
        assert np.isclose(weights.sum(), 1.0, atol=1e-12)

    @settings(max_examples=scaled_max_examples(200), deadline=None)
    @given(counts=st.lists(st.integers(min_value=1, max_value=512),
                           min_size=1, max_size=32))
    def test_full_survival_equals_full_cohort_weights(self, counts):
        full = partial_round_weights(counts)
        everyone = partial_round_weights(counts, survivors=range(len(counts)))
        np.testing.assert_allclose(everyone, full, rtol=0, atol=0)
        np.testing.assert_allclose(
            full, np.asarray(counts, dtype=float) / sum(counts))

    @settings(max_examples=scaled_max_examples(100), deadline=None)
    @given(case=counts_and_survivors())
    def test_equal_counts_reduce_to_plain_average(self, case):
        counts, survivors = case
        uniform = [counts[0]] * len(counts)  # FedVC: every virtual client equal
        weights = partial_round_weights(uniform, survivors=survivors)
        np.testing.assert_allclose(weights, 1.0 / len(survivors), atol=1e-12)

    @settings(max_examples=scaled_max_examples(100), deadline=None)
    @given(case=counts_and_survivors())
    def test_weighted_partial_aggregate_is_survivor_convex_combination(self, case):
        counts, survivors = case
        states = [{"w": np.full(3, float(k))} for k in range(len(counts))]
        weights = partial_round_weights(counts, survivors=survivors)
        merged = weighted_average_states([states[i] for i in survivors], weights)
        expected = sum(w * states[i]["w"] for w, i in zip(weights, survivors))
        np.testing.assert_allclose(merged["w"], expected, atol=1e-12)


class TestPartialRoundWeightsValidation:
    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            partial_round_weights([])
        with pytest.raises(ValueError):
            partial_round_weights([3, -1])

    def test_rejects_bad_survivor_sets(self):
        with pytest.raises(ValueError):
            partial_round_weights([1, 2], survivors=[])
        with pytest.raises(ValueError):
            partial_round_weights([1, 2], survivors=[0, 0])
        with pytest.raises(ValueError):
            partial_round_weights([1, 2], survivors=[2])
        with pytest.raises(ValueError):
            partial_round_weights([0, 0], survivors=[0])


class TestServerSkipPolicy:
    def _server(self):
        return FederatedServer(lambda: MLP(8, 2, hidden=(4,), seed=0))

    def _state(self, value):
        server = self._server()
        return {k: np.full_like(v, value) for k, v in server.global_state().items()}

    def test_round_below_floor_is_skipped(self):
        server = self._server()
        before = server.global_state()
        out = server.aggregate([self._state(1.0)], expected_count=4,
                               min_participation=0.5)
        assert server.last_aggregation_skipped
        assert server.rounds_skipped == 1 and server.rounds_completed == 0
        for key in before:
            np.testing.assert_array_equal(out[key], before[key])

    def test_round_at_floor_aggregates(self):
        server = self._server()
        server.aggregate([self._state(1.0), self._state(3.0)], expected_count=4,
                         min_participation=0.5)
        assert not server.last_aggregation_skipped
        assert server.rounds_completed == 1 and server.rounds_skipped == 0
        np.testing.assert_allclose(
            server.global_state()["net.layers.1.weight"], 2.0)

    def test_no_survivors_always_skips(self):
        server = self._server()
        before = server.global_state()
        out = server.aggregate([], expected_count=4, min_participation=0.0)
        assert server.last_aggregation_skipped
        for key in before:
            np.testing.assert_array_equal(out[key], before[key])

    def test_empty_without_expected_count_still_raises(self):
        with pytest.raises(ValueError):
            self._server().aggregate([])

    def test_flag_resets_on_next_aggregation(self):
        server = self._server()
        server.aggregate([], expected_count=2)
        assert server.last_aggregation_skipped
        server.aggregate([self._state(1.0)], expected_count=2,
                         min_participation=0.5)
        assert not server.last_aggregation_skipped

    def test_invalid_arguments(self):
        server = self._server()
        with pytest.raises(ValueError):
            server.aggregate([self._state(1.0)], expected_count=0)
        with pytest.raises(ValueError):
            server.aggregate([self._state(1.0)], expected_count=2,
                             min_participation=1.5)
