"""Vectorized-vs-sequential equivalence tests for the cohort execution back-end."""

import numpy as np
import pytest

from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.aggregation import StackedClientStates, average_states
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.federated.server import FederatedServer
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.nn.models import MLP, MnistCNN
from repro.nn.module import Module

TOL = 1e-10

MODEL_FACTORIES = {
    "mlp": lambda: MLP(64, 10, hidden=(16,), seed=7),
    "mnist_cnn": lambda: MnistCNN(1, 8, 10, channels=(3, 5), hidden=12,
                                  dropout=0.25, seed=7),
}


def make_clients(n_clients=4, samples_per_class=3, generator_seed=0):
    gen = make_synthetic_mnist(seed=generator_seed)
    return [
        FederatedClient(
            k, 10,
            dataset=gen.generate([samples_per_class] * 10, rng=np.random.default_rng(k)),
            seed=1000 + k,
        )
        for k in range(n_clients)
    ]


def assert_states_match(a_states, b_states, tol=TOL):
    assert len(a_states) == len(b_states)
    for a, b in zip(a_states, b_states):
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], atol=tol, rtol=0)


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
    @pytest.mark.parametrize("config", [
        LocalTrainingConfig(batch_size=8, local_epochs=1, learning_rate=1e-3),
        LocalTrainingConfig(batch_size=8, local_epochs=2, learning_rate=1e-3),
        LocalTrainingConfig(batch_size=8, learning_rate=1e-2, optimizer="sgd"),
        LocalTrainingConfig(batch_size=5, local_epochs=2, learning_rate=1e-3,
                            max_batches_per_epoch=3),
    ], ids=["adam", "two-epochs", "sgd", "ragged-batch-cap"])
    def test_per_client_states_match_sequential(self, model_name, config):
        factory = MODEL_FACTORIES[model_name]
        server = FederatedServer(factory)
        global_state = server.global_state()
        seq = LocalUpdateExecutor("sequential").run_round(
            make_clients(), factory, global_state, config, round_index=2
        )
        executor = LocalUpdateExecutor("vectorized")
        vec = executor.run_round(
            make_clients(), factory, global_state, config, round_index=2
        )
        assert executor.last_fallback_reason is None
        assert_states_match(seq, vec)
        agg_seq = average_states(seq)
        agg_vec = average_states(vec)
        for key in agg_seq:
            np.testing.assert_allclose(agg_seq[key], agg_vec[key], atol=TOL, rtol=0)

    def test_returns_stacked_states_with_views(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        states = LocalUpdateExecutor("vectorized").run_round(
            make_clients(3), factory, server.global_state(), LocalTrainingConfig()
        )
        assert isinstance(states, StackedClientStates)
        for name, stacked in states.stacked.items():
            assert stacked.shape[0] == 3
            for k in range(3):
                # per-client entries are views into the stacked array
                assert states[k][name].base is not None
                np.testing.assert_array_equal(states[k][name], stacked[k])

    def test_round_index_changes_batch_order(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-2)
        a = LocalUpdateExecutor("vectorized").run_round(
            make_clients(), factory, server.global_state(), config, round_index=0
        )
        b = LocalUpdateExecutor("vectorized").run_round(
            make_clients(), factory, server.global_state(), config, round_index=1
        )
        key = next(iter(a[0]))
        assert not np.allclose(a[0][key], b[0][key])

    def test_rounds_participated_increment(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        clients = make_clients(3)
        LocalUpdateExecutor("vectorized").run_round(
            clients, factory, server.global_state(), LocalTrainingConfig()
        )
        assert all(c.rounds_participated == 1 for c in clients)


class TestVectorizedFallback:
    def test_ragged_cohort_falls_back_to_sequential(self):
        gen = make_synthetic_mnist(seed=0)
        clients = [
            FederatedClient(0, 10, dataset=gen.generate([3] * 10,
                            rng=np.random.default_rng(0)), seed=1),
            FederatedClient(1, 10, dataset=gen.generate([4] * 10,
                            rng=np.random.default_rng(1)), seed=2),
        ]
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        executor = LocalUpdateExecutor("vectorized")
        vec = executor.run_round(clients, factory, server.global_state(), config)
        assert executor.last_fallback_reason is not None
        seq = LocalUpdateExecutor("sequential").run_round(
            [FederatedClient(0, 10, dataset=clients[0].dataset, seed=1),
             FederatedClient(1, 10, dataset=clients[1].dataset, seed=2)],
            factory, server.global_state(), config,
        )
        assert_states_match(seq, vec)

    def test_unvectorizable_model_falls_back(self):
        class Squared(Module):
            def __init__(self):
                from repro.nn.layers import Linear

                self.lin = Linear(64, 10, seed=0)

            def forward(self, x):
                return self.lin(x.reshape(x.shape[0], -1)) ** 2

            def backward(self, grad):
                raise NotImplementedError

        def factory():
            return Squared()

        server = FederatedServer(factory)
        executor = LocalUpdateExecutor("vectorized")
        # falls back before touching the unimplemented backward of the chain
        with pytest.raises(NotImplementedError):
            executor.run_round(make_clients(2), factory, server.global_state(),
                               LocalTrainingConfig())
        assert executor.last_fallback_reason is not None

    def test_empty_client_list(self):
        assert LocalUpdateExecutor("vectorized").run_round(
            [], MODEL_FACTORIES["mlp"], {}, LocalTrainingConfig()
        ) == []


@pytest.fixture(scope="module")
def sim_setup():
    generator = make_synthetic_mnist(seed=0)
    global_dist = half_normal_class_proportions(10, 5.0)
    partition = EMDTargetPartitioner(10, 24, 1.0, seed=0).partition(global_dist)
    test_set = make_uniform_test_set(generator, samples_per_class=4, seed=1)
    return generator, partition, test_set


class RoundRobinSelector:
    def __init__(self, n_clients, k):
        self.n_clients = n_clients
        self.k = k

    def select(self, round_index):
        start = (round_index * self.k) % self.n_clients
        return [(start + i) % self.n_clients for i in range(self.k)]


def run_simulation(sim_setup, mode, rounds=2):
    generator, partition, test_set = sim_setup
    sim = FederatedSimulation(
        partition=partition,
        generator=generator,
        model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
        selector=RoundRobinSelector(partition.n_clients, 4),
        test_set=test_set,
        config=FederatedConfig(
            rounds=rounds,
            eval_every=1,
            local=LocalTrainingConfig(batch_size=8, learning_rate=1e-3),
            executor_mode=mode,
            seed=0,
        ),
    )
    return sim, sim.run()


class TestSimulationExecutorModes:
    @pytest.mark.parametrize("mode", ["sequential", "thread", "vectorized"])
    def test_run_smoke(self, sim_setup, mode):
        sim, history = run_simulation(sim_setup, mode)
        assert len(history) == 2
        assert all(r.test_accuracy is not None for r in history.records)

    def test_vectorized_matches_sequential_curves(self, sim_setup):
        # NOTE: partitions with equal-size virtual clients stack into a dense
        # cohort, so the vectorized run never falls back and the accuracy
        # curves must agree with sequential execution
        sim_seq, hist_seq = run_simulation(sim_setup, "sequential", rounds=3)
        sim_vec, hist_vec = run_simulation(sim_setup, "vectorized", rounds=3)
        assert sim_vec.executor.last_fallback_reason is None
        np.testing.assert_allclose(hist_seq.accuracies(), hist_vec.accuracies(),
                                   atol=TOL)
        seq_state = sim_seq.server.global_state()
        vec_state = sim_vec.server.global_state()
        for key in seq_state:
            np.testing.assert_allclose(seq_state[key], vec_state[key], atol=TOL,
                                       rtol=0)

    def test_dataset_cache_is_shared_and_bounded(self, sim_setup):
        generator, partition, test_set = sim_setup
        sim = FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
            selector=RoundRobinSelector(partition.n_clients, 4),
            test_set=test_set,
            config=FederatedConfig(
                rounds=3,
                local=LocalTrainingConfig(learning_rate=1e-3),
                dataset_cache_size=3,
                seed=0,
            ),
        )
        sim.run()
        assert sim.dataset_cache is not None
        assert len(sim.dataset_cache) <= 3
        assert sim.dataset_cache.hits + sim.dataset_cache.misses > 0

    def test_cache_disabled_when_none(self, sim_setup):
        generator, partition, test_set = sim_setup
        sim = FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
            selector=RoundRobinSelector(partition.n_clients, 2),
            test_set=test_set,
            config=FederatedConfig(rounds=1, dataset_cache_size=None, seed=0),
        )
        assert sim.dataset_cache is None
        sim.run_round(0)

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            FederatedConfig(dataset_cache_size=0)

    def test_workspace_persists_across_simulation_rounds(self, sim_setup):
        sim, _ = run_simulation(sim_setup, "vectorized", rounds=3)
        assert sim.executor.workspace_builds == 1
        assert sim.executor.workspace is not None

    def test_float32_simulation_smoke(self, sim_setup):
        generator, partition, test_set = sim_setup
        sim = FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
            selector=RoundRobinSelector(partition.n_clients, 4),
            test_set=test_set,
            config=FederatedConfig(
                rounds=2,
                local=LocalTrainingConfig(batch_size=8, learning_rate=1e-3),
                executor_mode="vectorized",
                dtype="float32",
                seed=0,
            ),
        )
        history = sim.run()
        assert sim.executor.last_fallback_reason is None
        assert all(r.test_accuracy is not None for r in history.records)

    def test_sequential_eval_backend_matches_batched(self, sim_setup):
        generator, partition, test_set = sim_setup

        def build(eval_backend):
            return FederatedSimulation(
                partition=partition,
                generator=generator,
                model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
                selector=RoundRobinSelector(partition.n_clients, 4),
                test_set=test_set,
                config=FederatedConfig(
                    rounds=2,
                    local=LocalTrainingConfig(batch_size=8, learning_rate=1e-3),
                    executor_mode="vectorized",
                    eval_backend=eval_backend,
                    seed=0,
                ),
            )

        hist_batched = build("batched").run()
        hist_sequential = build("sequential").run()
        np.testing.assert_array_equal(hist_batched.accuracies(),
                                      hist_sequential.accuracies())
