"""Encrypted vectors: the wire format of Dubhe registries and distributions.

Dubhe exchanges two kinds of vectors under encryption:

* the **registry** ``R^(t,k)`` — a one-hot 0/1 vector of length
  ``l = Σ_{i∈G} C(C, i)`` (§5.1), and
* the **label distribution** ``p_l`` — a length-``C`` float vector used in
  the multi-time selection protocol (§5.3).

:class:`EncryptedVector` encrypts each component individually with Paillier
and supports element-wise homomorphic addition, which is the only operation
the server performs.  The class also reports plaintext and ciphertext wire
sizes, which drive the §6.4 overhead reproduction.
"""

from __future__ import annotations

import pickle
import random
from typing import Iterable, Optional, Sequence

import numpy as np

from .encoding import DEFAULT_BASE, DEFAULT_PRECISION, FixedPointEncoder
from .paillier import PaillierPrivateKey, PaillierPublicKey

__all__ = ["EncryptedVector", "plaintext_vector_bytes"]


def plaintext_vector_bytes(values: Sequence[float] | np.ndarray) -> int:
    """Size in bytes of the pickled plaintext vector (as a Python list).

    The paper reports plaintext registry sizes of 0.47–0.49 KB for lengths
    56/53 "in Python3", which corresponds to pickling the list of Python
    numbers; we use the same convention so the overhead comparison is
    apples-to-apples.
    """
    return len(pickle.dumps([float(v) for v in values]))


class EncryptedVector:
    """A vector whose components are individually Paillier-encrypted."""

    def __init__(self, public_key: PaillierPublicKey, ciphertexts: list[int],
                 base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION):
        self.public_key = public_key
        self.ciphertexts = list(ciphertexts)
        self.base = base
        self.precision = precision

    # -- construction --------------------------------------------------------

    @classmethod
    def encrypt(cls, public_key: PaillierPublicKey,
                values: Iterable[float] | np.ndarray,
                encoder: Optional[FixedPointEncoder] = None,
                rng: Optional[random.Random] = None) -> "EncryptedVector":
        """Encrypt every component of *values* under *public_key*."""
        encoder = encoder or FixedPointEncoder()
        ciphertexts = []
        for v in np.asarray(list(values), dtype=float).ravel():
            encoded = encoder.encode(float(v))
            modular = encoder.to_modular(encoded, public_key)
            ciphertexts.append(public_key.raw_encrypt(modular, rng=rng))
        return cls(public_key, ciphertexts, encoder.base, encoder.precision)

    def decrypt(self, private_key: PaillierPrivateKey) -> np.ndarray:
        """Decrypt back to a float ndarray."""
        if private_key.public_key != self.public_key:
            raise ValueError("private key does not match this vector's public key")
        encoder = FixedPointEncoder(self.base, self.precision)
        out = np.empty(len(self.ciphertexts), dtype=float)
        for i, c in enumerate(self.ciphertexts):
            out[i] = encoder.decode_modular(private_key.raw_decrypt(c), self.public_key)
        return out

    # -- homomorphic algebra --------------------------------------------------

    def _check_compatible(self, other: "EncryptedVector") -> None:
        if self.public_key != other.public_key:
            raise ValueError("cannot combine vectors encrypted under different keys")
        if len(self.ciphertexts) != len(other.ciphertexts):
            raise ValueError(
                f"length mismatch: {len(self.ciphertexts)} vs {len(other.ciphertexts)}"
            )
        if self.base != other.base or self.precision != other.precision:
            raise ValueError("cannot combine vectors with different fixed-point scales")

    def __add__(self, other: "EncryptedVector") -> "EncryptedVector":
        if not isinstance(other, EncryptedVector):
            return NotImplemented
        self._check_compatible(other)
        summed = [
            self.public_key.raw_add(a, b)
            for a, b in zip(self.ciphertexts, other.ciphertexts)
        ]
        return EncryptedVector(self.public_key, summed, self.base, self.precision)

    def scale(self, scalar: int) -> "EncryptedVector":
        """Multiply every encrypted component by a plaintext integer scalar."""
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            raise TypeError("scale expects a plaintext int scalar")
        scaled = [self.public_key.raw_mul(c, scalar) for c in self.ciphertexts]
        return EncryptedVector(self.public_key, scaled, self.base, self.precision)

    @staticmethod
    def sum(vectors: Sequence["EncryptedVector"]) -> "EncryptedVector":
        """Homomorphically sum a non-empty sequence of encrypted vectors."""
        if not vectors:
            raise ValueError("cannot sum an empty sequence of encrypted vectors")
        total = vectors[0]
        for v in vectors[1:]:
            total = total + v
        return total

    # -- sizes / serialization -------------------------------------------------

    def __len__(self) -> int:
        return len(self.ciphertexts)

    def nbytes(self) -> int:
        """Total ciphertext wire size in bytes (components only)."""
        return len(self.ciphertexts) * self.public_key.ciphertext_bytes()

    def to_bytes(self) -> bytes:
        """Serialize ciphertexts to a compact byte string (length-prefixed)."""
        width = self.public_key.ciphertext_bytes()
        chunks = [len(self.ciphertexts).to_bytes(4, "big"), width.to_bytes(4, "big")]
        chunks.extend(c.to_bytes(width, "big") for c in self.ciphertexts)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, public_key: PaillierPublicKey, payload: bytes,
                   base: int = DEFAULT_BASE,
                   precision: int = DEFAULT_PRECISION) -> "EncryptedVector":
        """Inverse of :meth:`to_bytes` (the receiver knows the public key)."""
        count = int.from_bytes(payload[0:4], "big")
        width = int.from_bytes(payload[4:8], "big")
        ciphertexts = []
        offset = 8
        for _ in range(count):
            ciphertexts.append(int.from_bytes(payload[offset : offset + width], "big"))
            offset += width
        return cls(public_key, ciphertexts, base, precision)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncryptedVector(len={len(self)}, key_bits={self.public_key.key_size})"
        )
