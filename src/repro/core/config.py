"""Configuration of the Dubhe client-selection system.

Collects every knob the paper exposes: the reference set ``G`` of possible
numbers of dominating classes, the per-``i`` thresholds ``σ_i``, the round
participation target ``K``, the number of tentative multi-time selections
``H``, and the Paillier key size used by the secure path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..crypto.paillier import DEFAULT_KEY_SIZE

__all__ = [
    "AGGREGATION_MODES",
    "DEFAULT_REGISTRATION_BATCH",
    "DubheConfig",
    "ExecutorConfig",
    "GROUP1_REFERENCE_SET",
    "GROUP2_REFERENCE_SET",
    "LedgerConfig",
    "RUNTIME_DTYPES",
    "RUN_MODES",
    "SHARD_POLICIES",
    "TRANSPORT_KINDS",
    "TransportConfig",
    "partition_cohort",
    "resolve_aggregation_mode",
    "resolve_num_workers",
    "resolve_run_mode",
    "resolve_runtime_dtype",
    "resolve_shard_policy",
    "resolve_transport_kind",
]

#: Reference set used by the paper for the 10-class experiments (MNIST/CIFAR10).
GROUP1_REFERENCE_SET: tuple[int, ...] = (1, 2, 10)

#: Reference set used by the paper for the 52-class FEMNIST experiment.
GROUP2_REFERENCE_SET: tuple[int, ...] = (1, 52)

#: Floating-point dtypes the cohort (vectorized) runtime accepts.  float64 is
#: the default and reproduces the sequential back-end bit-for-bit; float32 is
#: the opt-in fast path (half the memory traffic through the flat pools) with
#: documented tolerance.
RUNTIME_DTYPES: tuple[str, ...] = ("float64", "float32")


def resolve_runtime_dtype(dtype: "str | np.dtype | type") -> np.dtype:
    """Validate and normalise a runtime dtype knob to a :class:`numpy.dtype`.

    Shared by every layer that threads the knob (``FederatedConfig`` →
    ``LocalUpdateExecutor`` → ``BatchedModel``/optimisers) so they all accept
    the same spellings and reject anything outside :data:`RUNTIME_DTYPES`.

    Example
    -------
    >>> resolve_runtime_dtype("float32").name
    'float32'
    """
    resolved = np.dtype(dtype)
    if resolved.name not in RUNTIME_DTYPES:
        raise ValueError(
            f"runtime dtype must be one of {RUNTIME_DTYPES}, got {resolved.name!r}"
        )
    return resolved


#: How the parallel (multi-cohort) scheduler assigns the K selected clients
#: to worker shards.  ``"contiguous"`` keeps selection order (shard 0 gets
#: clients 0..s-1, ...) with near-equal shard sizes; ``"interleaved"`` deals
#: clients round-robin (shard i gets clients i, i+W, i+2W, ...), which
#: balances any position-correlated cost across workers.  Both policies merge
#: back into the original client order, so results are identical either way.
SHARD_POLICIES: tuple[str, ...] = ("contiguous", "interleaved")

#: Soft cap on the default worker count: federated cohorts on the benchmark
#: models stop scaling well before this, and oversubscribing a shared box
#: with one process per core of a large machine hurts more than it helps.
_DEFAULT_MAX_WORKERS = 8


def resolve_shard_policy(policy: str) -> str:
    """Validate a shard-policy knob against :data:`SHARD_POLICIES`.

    Example
    -------
    >>> resolve_shard_policy("contiguous")
    'contiguous'
    """
    if policy not in SHARD_POLICIES:
        raise ValueError(
            f"shard policy must be one of {SHARD_POLICIES}, got {policy!r}"
        )
    return policy


#: How a federated run interacts with the run ledger (:mod:`repro.ledger`).
#: ``"live"`` records the run as it executes (or runs unrecorded when no
#: ledger path is configured); ``"resume"`` reopens a recorded run, restores
#: the server from its last committed round checkpoint and continues;
#: ``"verify"`` re-executes a recorded run and asserts bit-identical
#: per-round selections and metrics.
RUN_MODES: tuple[str, ...] = ("live", "resume", "verify")


def resolve_run_mode(run_mode: str) -> str:
    """Validate a run-mode knob against :data:`RUN_MODES`.

    Example
    -------
    >>> resolve_run_mode("live")
    'live'
    """
    if run_mode not in RUN_MODES:
        raise ValueError(
            f"run mode must be one of {RUN_MODES}, got {run_mode!r}"
        )
    return run_mode


def resolve_num_workers(num_workers: Optional[int] = None) -> int:
    """Normalise the parallel-scheduler worker count.

    ``None`` picks a sensible default for the current box: one worker per
    CPU core, capped at 8 (cohort training stops scaling past a handful of
    shards on the models this reproduction ships).  Explicit values are
    validated and returned unchanged — asking for more workers than cores is
    allowed (useful in tests) but wasteful.

    Example
    -------
    >>> resolve_num_workers(2)
    2
    >>> resolve_num_workers() >= 1
    True
    """
    if num_workers is None:
        return max(1, min(os.cpu_count() or 1, _DEFAULT_MAX_WORKERS))
    if num_workers < 1:
        raise ValueError("num_workers must be positive when given")
    return int(num_workers)


def partition_cohort(num_clients: int, num_workers: int,
                     policy: str = "contiguous") -> "list[np.ndarray]":
    """Partition ``K`` client positions into per-worker index shards.

    Returns one integer index array per shard.  At most ``num_workers``
    shards are produced and every shard is non-empty, so ``K < num_workers``
    simply yields ``K`` single-client shards; when ``K`` is not divisible the
    first ``K mod W`` shards hold one extra client.  Concatenating (or
    interleaving) the shards always reproduces ``range(K)`` exactly once —
    the merge step relies on that bijection.

    Example
    -------
    >>> [s.tolist() for s in partition_cohort(5, 2)]
    [[0, 1, 2], [3, 4]]
    >>> [s.tolist() for s in partition_cohort(5, 2, policy="interleaved")]
    [[0, 2, 4], [1, 3]]
    >>> len(partition_cohort(3, 8))
    3
    """
    if num_clients < 1:
        raise ValueError("num_clients must be positive")
    num_workers = resolve_num_workers(num_workers)
    policy = resolve_shard_policy(policy)
    shards = min(num_clients, num_workers)
    if policy == "interleaved":
        return [np.arange(s, num_clients, shards) for s in range(shards)]
    base, extra = divmod(num_clients, shards)
    sizes = [base + (1 if s < extra else 0) for s in range(shards)]
    bounds = np.cumsum([0] + sizes)
    return [np.arange(bounds[s], bounds[s + 1]) for s in range(shards)]


#: How the secure-aggregation server folds the stream of client ciphertexts.
#: ``"flat"`` is the original left-to-right accumulator (fold depth N − 1);
#: ``"tree"`` merges fixed-arity partials so the longest sequential addition
#: chain is O(log N).  Paillier addition is associative and commutative, so
#: the two modes produce bit-identical ciphertexts — the tree only changes
#: *when* additions happen, which is what lets the server parallelise or
#: bound latency at million-client scale.
AGGREGATION_MODES: tuple[str, ...] = ("flat", "tree")

#: Default client chunk size for streaming registration.  Peak server memory
#: is O(batch), never O(N); 4096 keeps the per-batch registry matrices a few
#: MB while amortising the vectorised Algorithm 1 over enough rows.
DEFAULT_REGISTRATION_BATCH = 4096


def resolve_aggregation_mode(mode: str) -> str:
    """Validate an aggregation-mode knob against :data:`AGGREGATION_MODES`.

    Example
    -------
    >>> resolve_aggregation_mode("tree")
    'tree'
    """
    if mode not in AGGREGATION_MODES:
        raise ValueError(
            f"aggregation mode must be one of {AGGREGATION_MODES}, got {mode!r}"
        )
    return mode


#: How a federated run talks to its clients.  ``"inprocess"`` (default) runs
#: the round loop against the in-process execution back-ends
#: (:class:`repro.transport.InProcessTransport` wrapping
#: :class:`repro.federated.LocalUpdateExecutor`); ``"socket"`` promotes the
#: round protocol to the asyncio TCP service layer
#: (:class:`repro.transport.SocketTransport`), where every client is a remote
#: peer speaking the versioned wire format.
TRANSPORT_KINDS: tuple[str, ...] = ("inprocess", "socket")


def resolve_transport_kind(kind: str) -> str:
    """Validate a transport-kind knob against :data:`TRANSPORT_KINDS`.

    Example
    -------
    >>> resolve_transport_kind("inprocess")
    'inprocess'
    """
    if kind not in TRANSPORT_KINDS:
        raise ValueError(
            f"transport kind must be one of {TRANSPORT_KINDS}, got {kind!r}"
        )
    return kind


@dataclass(frozen=True)
class ExecutorConfig:
    """The execution-back-end group of a federated run's configuration.

    Groups every knob that selects *how local updates run* — the back-end
    (:data:`repro.federated.EXECUTOR_MODES`), the parallel scheduler's fleet
    geometry, the cohort runtime precision, the shared dataset pool and the
    server's evaluation back-end.  ``FederatedConfig`` accepts either this
    nested group (``FederatedConfig(executor=ExecutorConfig(mode=...))``) or
    the original flat kwargs (``FederatedConfig(executor_mode=...)``) — the
    two spellings resolve identically.

    Example
    -------
    >>> ExecutorConfig(mode="parallel", num_workers=2).shard_policy
    'contiguous'
    """

    mode: str = "sequential"
    num_workers: Optional[int] = None
    shard_policy: str = "contiguous"
    scheduler_timeout: Optional[float] = 120.0
    dtype: str = "float64"
    dataset_cache_size: Optional[int] = 1024
    eval_backend: str = "batched"

    def __post_init__(self) -> None:
        # per-field checks only; cross-field rules (num_workers requires the
        # parallel back-end, ...) stay in FederatedConfig, which validates
        # the synced flat fields either way
        from ..federated.executor import EXECUTOR_MODES  # lazy: no cycle

        if self.mode not in EXECUTOR_MODES:
            raise ValueError(
                f"executor mode must be one of {EXECUTOR_MODES}, got "
                f"{self.mode!r}"
            )
        resolve_shard_policy(self.shard_policy)
        resolve_runtime_dtype(self.dtype)


@dataclass(frozen=True)
class LedgerConfig:
    """The run-ledger group of a federated run's configuration.

    Groups the :mod:`repro.ledger` plumbing: where the SQLite ledger lives,
    which run mode drives the session (:data:`RUN_MODES`), which recorded
    run to resume/verify and how to label a fresh one.  Accepted by
    ``FederatedConfig(ledger=...)`` next to the original flat kwargs
    (``ledger_path=...``, ``run_mode=...``, ...).

    Example
    -------
    >>> LedgerConfig(path="runs.db", run_mode="live").replay_source_run_id
    """

    path: Optional[str] = None
    run_mode: str = "live"
    replay_source_run_id: Optional[str] = None
    run_name: Optional[str] = None

    def __post_init__(self) -> None:
        resolve_run_mode(self.run_mode)


@dataclass(frozen=True)
class TransportConfig:
    """The service-layer group of a federated run's configuration.

    ``kind`` picks the transport (:data:`TRANSPORT_KINDS`).  The remaining
    fields only matter for ``"socket"``: ``host``/``port`` are the server's
    bind address (``port=0`` binds an ephemeral port, read back from
    :attr:`repro.transport.SocketTransport.address`);
    ``round_timeout`` is the per-client collection deadline in seconds — a
    client whose :class:`~repro.transport.messages.ModelDelta` misses it is
    dropped from the round as a ``"straggler"`` (``None`` waits forever);
    ``connect_timeout`` bounds how long a round waits for the cohort's
    clients to register; ``retries``/``backoff``/``max_backoff``/
    ``retry_jitter`` shape the capped, jittered exponential backoff
    (:class:`repro.core.retry.RetryPolicy`) used by the server while waiting
    for registrations and by :class:`repro.transport.TransportClient` when
    connecting or reconnecting; ``send_queue`` bounds each connection's
    outbound message queue (backpressure: senders block rather than buffer
    without limit); ``max_frame_bytes`` caps a single wire frame;
    ``min_participation`` is the partial-round floor applied when real
    timeouts (not an injected scenario) shrink the cohort;
    ``heartbeat_interval`` is how often (seconds) the server probes each
    connection with a :class:`~repro.transport.messages.Heartbeat` (``0``
    disables liveness probing) and ``heartbeat_limit`` is how many silent
    intervals a connection may accumulate before it is declared dead and
    torn down — half-open TCP connections are detected after roughly
    ``heartbeat_interval * heartbeat_limit`` seconds instead of stalling
    the round until ``round_timeout``.

    Example
    -------
    >>> TransportConfig(kind="socket", round_timeout=5.0).host
    '127.0.0.1'
    """

    kind: str = "inprocess"
    host: str = "127.0.0.1"
    port: int = 0
    round_timeout: Optional[float] = 60.0
    connect_timeout: float = 10.0
    retries: int = 5
    backoff: float = 0.05
    max_backoff: float = 2.0
    retry_jitter: float = 0.1
    send_queue: int = 32
    max_frame_bytes: int = 1 << 28
    min_participation: float = 0.0
    heartbeat_interval: float = 10.0
    heartbeat_limit: int = 3

    def __post_init__(self) -> None:
        resolve_transport_kind(self.kind)
        if not 0 <= self.port <= 65535:
            raise ValueError("port must lie in [0, 65535]")
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive (or None)")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        self.retry_policy()  # validates retries/backoff/max_backoff/jitter
        if self.send_queue < 1:
            raise ValueError("send_queue must be positive")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be at least 1024")
        if not 0.0 <= self.min_participation <= 1.0:
            raise ValueError("min_participation must lie in [0, 1]")
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0 (0 disables)")
        if self.heartbeat_limit < 1:
            raise ValueError("heartbeat_limit must be positive")

    def retry_policy(self, seed: int = 0) -> "RetryPolicy":
        """The :class:`~repro.core.retry.RetryPolicy` these knobs describe.

        ``seed`` desynchronises the jitter of independent actors (the
        client passes its ``client_id`` so a reconnecting fleet spreads
        out); the schedule stays deterministic for a given seed.

        Example
        -------
        >>> TransportConfig(retry_jitter=0.0).retry_policy().delay(0)
        0.05
        """
        from .retry import RetryPolicy  # local: keep module import light

        return RetryPolicy(
            retries=self.retries,
            backoff=self.backoff,
            max_backoff=self.max_backoff,
            jitter=self.retry_jitter,
            seed=seed,
        )


@dataclass(frozen=True)
class DubheConfig:
    """All Dubhe hyper-parameters in one immutable object.

    Parameters
    ----------
    num_classes:
        Label-space size ``C``.
    reference_set:
        The set ``G ⊆ [C]`` of possible numbers of dominating classes.  The
        paper requires ``C ∈ G`` (the "no dominating class" bucket whose
        threshold is fixed at 0); this is validated here.
    thresholds:
        Mapping ``i → σ_i`` for every ``i ∈ G`` except ``C`` (``σ_C = 0`` is
        implied).  Found by the parameter-search procedure when omitted.
    participants_per_round:
        Target number of participating clients per round (``K``).
    tentative_selections:
        Number of tentative draws ``H`` in the multi-time selection
        (``H = 1`` reduces to a one-off selection).
    key_size:
        Paillier modulus size in bits for the secure protocol.
    registration_batch_size:
        Client chunk size used by streaming registration
        (:meth:`repro.core.secure.SecureRegistrationRound.run_stream`); peak
        registration memory is proportional to this, independent of N.
    """

    num_classes: int
    reference_set: tuple[int, ...] = GROUP1_REFERENCE_SET
    thresholds: Mapping[int, float] = field(default_factory=dict)
    participants_per_round: int = 20
    tentative_selections: int = 1
    key_size: int = DEFAULT_KEY_SIZE
    seed: Optional[int] = None
    registration_batch_size: int = DEFAULT_REGISTRATION_BATCH

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        ref = tuple(sorted(set(int(i) for i in self.reference_set)))
        if not ref:
            raise ValueError("reference_set must not be empty")
        if any(i < 1 or i > self.num_classes for i in ref):
            raise ValueError("reference_set entries must lie in [1, num_classes]")
        if self.num_classes not in ref:
            raise ValueError(
                "the paper requires C (the 'no dominating class' bucket) to be in G"
            )
        object.__setattr__(self, "reference_set", ref)
        thresholds = {int(k): float(v) for k, v in dict(self.thresholds).items()}
        for i, sigma in thresholds.items():
            if i not in ref:
                raise ValueError(f"threshold given for i={i} not in the reference set")
            if i == self.num_classes and sigma != 0.0:
                raise ValueError("σ_C is fixed at 0 by the paper")
            if not 0 <= sigma <= 1:
                raise ValueError("thresholds must lie in [0, 1]")
        thresholds.setdefault(self.num_classes, 0.0)
        object.__setattr__(self, "thresholds", thresholds)
        if self.participants_per_round < 1:
            raise ValueError("participants_per_round must be positive")
        if self.tentative_selections < 1:
            raise ValueError("tentative_selections must be positive")
        if self.key_size < 16:
            raise ValueError("key_size too small")
        if self.registration_batch_size < 1:
            raise ValueError("registration_batch_size must be positive")

    # -- helpers -------------------------------------------------------------------

    def threshold_for(self, i: int) -> float:
        """The threshold ``σ_i`` (raises if the reference-set entry has no value yet)."""
        if i not in self.reference_set:
            raise KeyError(f"{i} is not in the reference set")
        if i not in self.thresholds:
            raise KeyError(f"threshold σ_{i} has not been set (run parameter search)")
        return self.thresholds[i]

    def has_all_thresholds(self) -> bool:
        """Whether every reference-set entry has a threshold assigned."""
        return all(i in self.thresholds for i in self.reference_set)

    def with_thresholds(self, thresholds: Mapping[int, float]) -> "DubheConfig":
        """A copy of this config with new thresholds (used by parameter search)."""
        return DubheConfig(
            num_classes=self.num_classes,
            reference_set=self.reference_set,
            thresholds=dict(thresholds),
            participants_per_round=self.participants_per_round,
            tentative_selections=self.tentative_selections,
            key_size=self.key_size,
            seed=self.seed,
            registration_batch_size=self.registration_batch_size,
        )
