"""Cohort stacking and pooled client-dataset generation.

Two pieces of plumbing for the vectorized (cohort) execution back-end:

* :class:`DatasetCache` — a bounded, thread-safe LRU pool of materialised
  client datasets keyed by client id.  Synthetic client data is generated
  deterministically from a per-client seed, so eviction is safe (a re-selected
  evicted client regenerates bit-identical data) while repeatedly-selected
  clients stop paying the generation cost every round.
* :func:`stack_cohort` — stack the K selected clients' datasets into one
  ``(K, N_vc, …)`` features array and ``(K, N_vc)`` labels array, the layout
  every batched kernel consumes.  Virtual clients all hold the same number of
  samples (the paper's FedVC convention), which is what makes the cohort a
  dense rectangular tensor; ragged cohorts raise :class:`CohortShapeError`
  and callers fall back to per-client execution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from .dataset import ArrayDataset

__all__ = ["Cohort", "CohortShapeError", "DatasetCache", "stack_cohort"]


class CohortShapeError(ValueError):
    """The client datasets cannot be stacked into one rectangular cohort."""


class DatasetCache:
    """A bounded LRU cache of materialised client datasets.

    Parameters
    ----------
    capacity:
        Maximum number of client datasets held at once.  The least recently
        *used* (selected) client is evicted first, so the hot set of
        frequently-selected clients stays resident while a federation of
        millions of clients keeps bounded memory.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, ArrayDataset] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, factory: Callable[[], ArrayDataset]) -> ArrayDataset:
        """The cached dataset for *key*, materialising it via *factory* on miss."""
        with self._lock:
            dataset = self._entries.get(key)
            if dataset is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return dataset
            self.misses += 1
        # generate outside the lock: misses on distinct clients can overlap
        dataset = factory()
        with self._lock:
            self._entries[key] = dataset
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return dataset

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DatasetCache(size={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")


@dataclass(frozen=True)
class Cohort:
    """K clients' datasets stacked into dense ``(K, N_vc, …)`` arrays."""

    x: np.ndarray  #: features, shape ``(K, N_vc, *feature_shape)``
    y: np.ndarray  #: integer labels, shape ``(K, N_vc)``
    num_classes: int

    @property
    def clients(self) -> int:
        return self.x.shape[0]

    @property
    def samples_per_client(self) -> int:
        return self.x.shape[1]


def stack_cohort(datasets: Sequence[ArrayDataset]) -> Cohort:
    """Stack per-client datasets into one rectangular cohort.

    All datasets must hold the same number of samples with the same feature
    shape (the FedVC virtual-client invariant); otherwise
    :class:`CohortShapeError` is raised.
    """
    if not datasets:
        raise CohortShapeError("cannot stack an empty cohort")
    xs = [np.asarray(ds.x) for ds in datasets]
    ys = [np.asarray(ds.y) for ds in datasets]
    reference = xs[0].shape
    for k, x in enumerate(xs[1:], start=1):
        if x.shape != reference:
            raise CohortShapeError(
                f"client {k} has data shape {x.shape}, expected {reference}; "
                "ragged cohorts cannot be vectorized"
            )
    num_classes = max(ds.num_classes for ds in datasets)
    return Cohort(x=np.stack(xs), y=np.stack(ys), num_classes=num_classes)
