"""In-memory dataset containers.

:class:`ArrayDataset` is the minimal dataset abstraction the rest of the
stack needs: indexable ``(x, y)`` pairs backed by numpy arrays, cheap
subsetting by index (client shards are views, not copies — important when a
thousand virtual clients share one underlying array), and label-distribution
helpers used by the selection algorithms.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .distributions import label_counts, label_distribution

__all__ = ["ArrayDataset", "Subset", "train_test_split"]


class ArrayDataset:
    """A dataset of features ``x`` and integer labels ``y`` held in memory."""

    def __init__(self, x: np.ndarray, y: np.ndarray, num_classes: Optional[int] = None):
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"feature/label length mismatch: {len(x)} vs {len(y)}")
        if y.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")
        self.x = x
        self.y = y.astype(int)
        if num_classes is None:
            num_classes = int(self.y.max()) + 1 if len(self.y) else 0
        if len(self.y) and self.y.max() >= num_classes:
            raise ValueError("labels exceed num_classes")
        self.num_classes = num_classes

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.y)

    def __getitem__(self, index):
        return self.x[index], self.y[index]

    # -- label statistics --------------------------------------------------------

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts."""
        return label_counts(self.y, self.num_classes)

    def class_distribution(self) -> np.ndarray:
        """Empirical label distribution."""
        return label_distribution(self.y, self.num_classes)

    # -- subsetting ---------------------------------------------------------------

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Subset":
        """A view of this dataset restricted to *indices*."""
        return Subset(self, np.asarray(indices, dtype=int))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayDataset(n={len(self)}, num_classes={self.num_classes}, "
            f"x_shape={self.x.shape[1:]})"
        )


class Subset(ArrayDataset):
    """A view of a parent :class:`ArrayDataset` restricted to given indices."""

    def __init__(self, parent: ArrayDataset, indices: np.ndarray):
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= len(parent)):
            raise IndexError("subset indices out of range")
        self.parent = parent
        self.indices = indices
        # note: x/y here are fancy-indexed copies only when accessed through
        # __getitem__; we avoid materialising them eagerly for large parents.
        self.num_classes = parent.num_classes

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        return self.parent[self.indices[index]]

    @property
    def x(self) -> np.ndarray:  # type: ignore[override]
        return self.parent.x[self.indices]

    @property
    def y(self) -> np.ndarray:  # type: ignore[override]
        return self.parent.y[self.indices]

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Subset":
        return Subset(self.parent, self.indices[np.asarray(indices, dtype=int)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Subset(n={len(self)}, of={self.parent!r})"


def train_test_split(dataset: ArrayDataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None,
                     stratified: bool = True) -> tuple[Subset, Subset]:
    """Split a dataset into train/test subsets.

    With ``stratified=True`` (default) every class contributes the same
    fraction of its samples to the test set, so the test distribution matches
    the source distribution.  The paper's *test* set is uniform over classes;
    use :func:`repro.data.synthetic.make_uniform_test_set` for that.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    if stratified:
        test_idx: list[np.ndarray] = []
        for c in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.y == c)
            idx = rng.permutation(idx)
            take = int(round(len(idx) * test_fraction))
            test_idx.append(idx[:take])
        test_indices = np.concatenate(test_idx) if test_idx else np.empty(0, dtype=int)
    else:
        test_indices = rng.permutation(n)[: int(round(n * test_fraction))]
    mask = np.ones(n, dtype=bool)
    mask[test_indices] = False
    train_indices = np.flatnonzero(mask)
    return dataset.subset(train_indices), dataset.subset(test_indices)
