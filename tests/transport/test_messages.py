"""Round-trip and rejection tests of the typed protocol messages.

Every message of the round protocol must survive ``encode_message`` →
``decode_message`` exactly, and a frame carrying an unknown type code or an
impossible payload must fail with a structured error — never parse into the
wrong message.
"""

import numpy as np
import pytest

from repro.crypto import generate_keypair
from repro.crypto.packing import PackedEncryptedVector
from repro.federated.client import LocalTrainingConfig
from repro.transport.messages import (
    MESSAGE_TYPES,
    ErrorNotice,
    Heartbeat,
    HeartbeatAck,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    decode_message,
    encode_message,
)
from repro.transport.wire import CorruptFrameError, encode_frame

KEYPAIR = generate_keypair(key_size=256)

STATE = {
    "dense.weight": np.arange(6, dtype=np.float64).reshape(2, 3) / 7.0,
    "dense.bias": np.array([-0.5, 0.25], dtype=np.float32),
}


def roundtrip(message):
    frame = encode_message(message)
    back, consumed = decode_message(frame + b"tail bytes of the next frame")
    assert consumed == len(frame)
    return back


class TestRoundTrips:
    def test_register(self):
        assert roundtrip(Register(3, 10, 120)) == Register(3, 10, 120)

    def test_register_with_session_token(self):
        msg = Register(3, 10, 120, token="s7")
        assert roundtrip(msg) == msg and roundtrip(msg).token == "s7"

    def test_register_ack(self):
        assert roundtrip(RegisterAck(3, 1, 4)) == RegisterAck(3, 1, 4)

    def test_register_ack_carries_token_and_resumed(self):
        back = roundtrip(RegisterAck(3, 1, 4, token="s2", resumed=True))
        assert back.token == "s2" and back.resumed is True

    def test_heartbeat_pair(self):
        assert roundtrip(Heartbeat(41)).seq == 41
        assert roundtrip(HeartbeatAck(41)).seq == 41

    def test_probability_broadcast(self):
        msg = ProbabilityBroadcast(2, (0.125, 0.375, 0.5))
        assert roundtrip(msg) == msg

    def test_selection_notice_with_state_and_deadline(self):
        msg = SelectionNotice(
            round_index=4, client_id=9,
            config=LocalTrainingConfig(batch_size=4, local_epochs=2,
                                       learning_rate=5e-3),
            state=STATE, deadline=12.5)
        back = roundtrip(msg)
        assert back == msg
        assert back.state["dense.bias"].dtype == np.float32

    def test_selection_notice_without_deadline(self):
        msg = SelectionNotice(0, 1, LocalTrainingConfig(), {})
        assert roundtrip(msg).deadline is None

    def test_model_delta(self):
        msg = ModelDelta(1, 7, STATE)
        assert roundtrip(msg) == msg

    def test_model_delta_token_survives_but_never_compares(self):
        msg = ModelDelta(1, 7, STATE, token="s9")
        back = roundtrip(msg)
        assert back.token == "s9"
        # equality is over (round, client, state): a resent delta from a
        # fresh session still equals the original
        assert back == ModelDelta(1, 7, STATE, token="other")

    def test_round_result_partial(self):
        msg = RoundResult(3, False, accuracy=0.625,
                          failures={4: "straggler", 1: "offline"})
        assert roundtrip(msg) == msg

    def test_round_result_skipped_without_accuracy(self):
        back = roundtrip(RoundResult(5, True))
        assert back.skipped and back.accuracy is None and back.failures == {}

    def test_shutdown_and_error(self):
        assert roundtrip(Shutdown("drained")).reason == "drained"
        assert roundtrip(ErrorNotice("bad upload")).detail == "bad upload"

    def test_packed_ciphertext_upload(self):
        public, private = KEYPAIR
        vector = PackedEncryptedVector.encrypt(public, [0.5, -0.25, 0.125])
        back = roundtrip(PackedCiphertextUpload(2, "registry", vector))
        assert back.client_id == 2 and back.tag == "registry"
        assert back.vector.ciphertexts == vector.ciphertexts
        assert np.allclose(back.vector.decrypt(private), [0.5, -0.25, 0.125],
                           atol=1e-5)


class TestRejection:
    def test_type_codes_are_unique_and_registered(self):
        assert len(MESSAGE_TYPES) == 11
        assert sorted(MESSAGE_TYPES) == list(range(1, 12))

    def test_unknown_type_code_is_corrupt(self):
        with pytest.raises(CorruptFrameError, match="unknown message type"):
            decode_message(encode_frame(250, b""))

    def test_invalid_training_recipe_is_corrupt(self):
        frame = bytearray(encode_message(
            SelectionNotice(0, 1, LocalTrainingConfig(batch_size=1), {})))
        # a zero batch size is representable on the wire but invalid as a
        # config; decoding must reject it as corrupt, not construct it.
        # batch_size sits after the 8-byte header, round_index, client_id
        # and the one-byte deadline-absent flag
        offset = 8 + 4 + 4 + 1
        frame[offset:offset + 4] = (0).to_bytes(4, "big")
        # refresh the CRC so only the semantic damage remains
        import zlib

        body = bytes(frame[:-4])
        crc = (zlib.crc32(body[:8]) ^ zlib.crc32(body[8:])) & 0xFFFFFFFF
        frame[-4:] = crc.to_bytes(4, "big")
        with pytest.raises(CorruptFrameError, match="training recipe"):
            decode_message(bytes(frame))

    def test_truncated_message_payload_is_corrupt(self):
        payload = Register(1, 10, 64).to_payload()
        with pytest.raises(CorruptFrameError):
            Register.from_payload(payload[:5])
