"""Mini-batch iteration over in-memory datasets.

A deliberately small stand-in for ``torch.utils.data.DataLoader``: shuffling,
fixed batch size ``B`` (the paper uses ``B = 8``), optional drop-last, and a
seeded RNG so federated experiments are bit-reproducible.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .dataset import ArrayDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over an :class:`ArrayDataset` in mini-batches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of samples per batch (``B`` in the paper's configuration).
    shuffle:
        Reshuffle sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch.
    seed:
        Seed of the shuffling RNG; each epoch advances the stream, so two
        loaders constructed with the same seed produce identical batch
        sequences.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int = 8, shuffle: bool = True,
                 drop_last: bool = False, seed: Optional[int] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        x = self.dataset.x
        y = self.dataset.y
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            yield x[batch_idx], y[batch_idx]
