"""Tests for EncryptedNumber homomorphic arithmetic on floats."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.crypto.encrypted_number import EncryptedNumber, decrypt_number, encrypt_number
from repro.crypto.paillier import generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=128, rng=random.Random(31337))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


class TestEncryptDecrypt:
    @pytest.mark.parametrize("x", [0.0, 1.0, 0.1, -2.75, 123.456, -0.0001])
    def test_roundtrip(self, pk, sk, x):
        assert EncryptedNumber.encrypt(pk, x).decrypt(sk) == pytest.approx(x, abs=1e-9)

    def test_functional_helpers(self, pk, sk):
        assert decrypt_number(sk, encrypt_number(pk, 2.5)) == pytest.approx(2.5)

    def test_wrong_private_key_rejected(self, pk):
        other = generate_keypair(key_size=128, rng=random.Random(1)).private_key
        with pytest.raises(ValueError):
            EncryptedNumber.encrypt(pk, 1.0).decrypt(other)

    def test_nbytes_matches_key(self, pk):
        assert EncryptedNumber.encrypt(pk, 1.0).nbytes() == pk.ciphertext_bytes()


class TestArithmetic:
    def test_cipher_plus_cipher(self, pk, sk):
        c = EncryptedNumber.encrypt(pk, 0.25) + EncryptedNumber.encrypt(pk, 0.5)
        assert c.decrypt(sk) == pytest.approx(0.75, abs=1e-9)

    def test_cipher_plus_plain(self, pk, sk):
        c = EncryptedNumber.encrypt(pk, 0.25) + 0.5
        assert c.decrypt(sk) == pytest.approx(0.75, abs=1e-9)

    def test_plain_plus_cipher(self, pk, sk):
        c = 1.5 + EncryptedNumber.encrypt(pk, -0.5)
        assert c.decrypt(sk) == pytest.approx(1.0, abs=1e-9)

    def test_scalar_multiplication(self, pk, sk):
        c = EncryptedNumber.encrypt(pk, 0.3) * 4
        assert c.decrypt(sk) == pytest.approx(1.2, abs=1e-9)

    def test_rmul(self, pk, sk):
        c = 4 * EncryptedNumber.encrypt(pk, 0.3)
        assert c.decrypt(sk) == pytest.approx(1.2, abs=1e-9)

    def test_float_scalar_rejected(self, pk):
        with pytest.raises(TypeError):
            EncryptedNumber.encrypt(pk, 0.3) * 1.5

    def test_bool_scalar_rejected(self, pk):
        with pytest.raises(TypeError):
            EncryptedNumber.encrypt(pk, 0.3) * True

    def test_cross_key_addition_rejected(self, pk):
        other_pk = generate_keypair(key_size=128, rng=random.Random(5)).public_key
        with pytest.raises(ValueError):
            EncryptedNumber.encrypt(pk, 1.0) + EncryptedNumber.encrypt(other_pk, 1.0)

    def test_add_unrelated_type_notimplemented(self, pk):
        assert EncryptedNumber.encrypt(pk, 1.0).__add__("x") is NotImplemented


class TestObfuscation:
    def test_obfuscate_changes_ciphertext_not_plaintext(self, pk, sk):
        c = EncryptedNumber.encrypt(pk, 0.7)
        o = c.obfuscate()
        assert o.ciphertext != c.ciphertext
        assert o.decrypt(sk) == pytest.approx(0.7, abs=1e-9)


@settings(max_examples=scaled_max_examples(20), deadline=None)
@given(
    a=st.floats(min_value=-100, max_value=100, allow_nan=False),
    b=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
def test_property_float_homomorphism(a, b):
    kp = generate_keypair(key_size=128, rng=random.Random(77))
    c = EncryptedNumber.encrypt(kp.public_key, a) + EncryptedNumber.encrypt(kp.public_key, b)
    assert c.decrypt(kp.private_key) == pytest.approx(a + b, abs=1e-8)
