"""A synthetic FEMNIST-like federated dataset.

The paper's third workload is FEMNIST (LEAF): the 52 handwritten-letter
classes, originally 3400 writers, split into **8962 clients** with an even
number of samples per client.  Table 1 reports the resulting statistics:
global imbalance ratio ``ρ = 13.64`` and average client discrepancy
``EMD_avg = 0.554``.

Real FEMNIST images are unavailable offline, so this module builds a
federation with the *same statistical fingerprint*:

* 52 classes with a global half-normal skew tuned to ``ρ ≈ 13.64``,
* per-client "writer style" heterogeneity — every client predominantly holds
  a handful of letters (as a real writer's sample does) with the mixture
  weight calibrated so that ``EMD_avg ≈ 0.554``, and
* an even number of samples per client (the paper equalises client sizes).

Images come from a :class:`~repro.data.synthetic.SyntheticImageGenerator`
with 52 prototype glyphs, so the classification task itself is learnable by
the same CNN the paper uses for FEMNIST.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from .partition import ClientPartition, EMDTargetPartitioner
from .skew import half_normal_class_proportions
from .synthetic import SyntheticImageGenerator

__all__ = [
    "FEMNIST_NUM_CLASSES",
    "FEMNIST_PAPER_CLIENTS",
    "FEMNIST_PAPER_RHO",
    "FEMNIST_PAPER_EMD",
    "LEAF_FEMNIST_URL",
    "FemnistFederation",
    "download_femnist",
    "make_femnist_federation",
]

#: Number of letter classes in the paper's FEMNIST experiment.
FEMNIST_NUM_CLASSES = 52

#: Client population used in the paper (Table 1).
FEMNIST_PAPER_CLIENTS = 8962

#: Global imbalance ratio reported in Table 1.
FEMNIST_PAPER_RHO = 13.64

#: Average client EMD reported in Table 1.
FEMNIST_PAPER_EMD = 0.554

#: Where the LEAF benchmark publishes the real FEMNIST archive.
LEAF_FEMNIST_URL = (
    "https://s3.amazonaws.com/nist-srd/SD19/by_class.zip"
)


def download_femnist(dest: "str | os.PathLike", url: str = LEAF_FEMNIST_URL,
                     retries: int = 4, timeout: float = 30.0,
                     backoff: float = 1.0,
                     urlopen: Optional[Callable] = None,
                     sleep: Optional[Callable[[float], None]] = None) -> Path:
    """Fetch the real FEMNIST archive with retry, backoff and timeout.

    The synthetic federation above needs no download; this helper exists for
    users who want the genuine LEAF images.  Transient network failures are
    retried up to *retries* times with exponential backoff (``backoff``,
    ``2·backoff``, ``4·backoff``, … seconds) and every attempt carries a
    socket *timeout*, so a hung mirror cannot stall the caller forever.  The
    archive is written atomically (a partial download never masquerades as a
    finished one) and an already-downloaded *dest* is returned immediately.
    *urlopen*/*sleep* are injectable for tests.

    Example
    -------
    >>> import io, tempfile, os
    >>> fake = lambda url, timeout: io.BytesIO(b"archive-bytes")
    >>> out = download_femnist(os.path.join(tempfile.mkdtemp(), "f.zip"),
    ...                        urlopen=fake, sleep=lambda s: None)
    >>> out.read_bytes()
    b'archive-bytes'
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout <= 0 or backoff <= 0:
        raise ValueError("timeout and backoff must be positive")
    if urlopen is None:  # pragma: no cover - exercised via injection in tests
        from urllib.request import urlopen as _default_urlopen
        urlopen = _default_urlopen
    if sleep is None:
        sleep = time.sleep
    dest = Path(os.fspath(dest))
    if dest.exists():
        return dest
    dest.parent.mkdir(parents=True, exist_ok=True)
    partial = dest.with_suffix(dest.suffix + ".part")
    last_error: Optional[BaseException] = None
    for attempt in range(retries + 1):
        if attempt > 0:
            sleep(backoff * 2 ** (attempt - 1))
        try:
            with urlopen(url, timeout=timeout) as response:
                with open(partial, "wb") as sink:
                    while True:
                        chunk = response.read(1 << 20)
                        if not chunk:
                            break
                        sink.write(chunk)
            os.replace(partial, dest)
            return dest
        except OSError as exc:  # URLError subclasses OSError
            last_error = exc
            partial.unlink(missing_ok=True)
    raise OSError(
        f"failed to download {url} after {retries + 1} attempt(s): "
        f"{last_error}"
    ) from last_error


@dataclass
class FemnistFederation:
    """A FEMNIST-like federation: partition statistics plus an image generator."""

    partition: ClientPartition
    generator: SyntheticImageGenerator
    samples_per_client: int

    @property
    def n_clients(self) -> int:
        return self.partition.n_clients

    @property
    def num_classes(self) -> int:
        return self.partition.num_classes

    def summary(self) -> dict:
        """Table-1-style statistics of this federation."""
        return {
            "dataset": "FEMNIST (synthetic reproduction)",
            "num_classes": self.num_classes,
            "n_clients": self.n_clients,
            "samples_per_client": self.samples_per_client,
            "rho": self.partition.achieved_rho(),
            "emd_avg": self.partition.achieved_emd_avg(),
        }


def make_femnist_federation(n_clients: int = 200, samples_per_client: int = 32,
                            rho: float = FEMNIST_PAPER_RHO,
                            emd_avg: float = FEMNIST_PAPER_EMD,
                            num_classes: int = FEMNIST_NUM_CLASSES,
                            image_size: int = 8,
                            dominating_classes: tuple[int, ...] = (1, 2),
                            writer_concentration: float = 0.5,
                            seed: Optional[int] = None) -> FemnistFederation:
    """Build a FEMNIST-like federation with the paper's statistical fingerprint.

    Parameters
    ----------
    n_clients:
        Number of clients.  The paper uses 8962; the default is scaled down so
        the test-suite stays fast.  Pass ``FEMNIST_PAPER_CLIENTS`` to match the
        paper exactly (selection-only experiments handle that size easily).
    samples_per_client:
        Per-client sample count (the paper equalises client sizes; its virtual
        client size for group 2 is ``N_VC = 32``).
    rho, emd_avg:
        Target global imbalance ratio and client discrepancy (defaults are the
        Table 1 values).
    dominating_classes:
        How many letters dominate a client's local data — real FEMNIST writers
        contribute a handful of over-represented letters.
    writer_concentration:
        Lower bound on the share of a client's data held by its dominating
        letters.  Real writers genuinely over-represent a few letters; with a
        52-class label space the small per-client sample counts put the
        *empirical* EMD above the Table 1 value regardless, so the paper's
        EMD target alone would leave clients with no dominating letters at
        all (and nothing for any selection method to exploit).
    seed:
        Master seed for the partition and the image prototypes.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be positive")
    global_dist = half_normal_class_proportions(num_classes, rho)
    partitioner = EMDTargetPartitioner(
        n_clients=n_clients,
        samples_per_client=samples_per_client,
        emd_target=emd_avg,
        dominating_classes=dominating_classes,
        min_alpha=writer_concentration,
        seed=seed,
    )
    partition = partitioner.partition(global_dist)
    partition.metadata.update({"dataset": "femnist", "target_rho": rho, "target_emd": emd_avg})
    generator = SyntheticImageGenerator(
        num_classes=num_classes,
        image_shape=(1, image_size, image_size),
        noise_scale=0.4,
        class_overlap=0.35,
        jitter=1,
        seed=seed,
    )
    return FemnistFederation(partition, generator, samples_per_client)
