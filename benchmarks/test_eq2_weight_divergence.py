"""Eq. (2) / §4.2 — weight divergence grows with both EMD terms.

The paper's mathematical contribution bounds the divergence between FedAvg
weights and the optimal (centralised, uniformly trained) weights by two
terms: ① the average EMD between each client's distribution and the
population distribution, and ② the EMD between the population distribution
and the uniform distribution.  Dubhe can only influence term ② — that is why
minimising ``||p_o − p_u||₁`` (eq. (3)) is its objective.

This benchmark measures the divergence empirically on the synthetic MNIST
task in three regimes and checks the qualitative behaviour the bound
predicts:

* IID clients, balanced population        → smallest divergence;
* non-IID clients, balanced population    → larger (term ① active);
* non-IID clients, skewed population      → largest (terms ① and ② active).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table
from repro.analysis.divergence import weight_divergence_experiment
from repro.data.synthetic import make_synthetic_mnist
from repro.nn.models import MLP

ROUNDS = 2
LOCAL_STEPS = 10
LR = 0.1
SAMPLES = 20


def paper_scale() -> dict:
    return {"statement": "eq. (2): ||w_fed - w*|| bounded by terms ∝ ||p_k - p_o||_1 "
                         "and ∝ ||p_o - p_u||_1",
            "models": "CNN / ResNet18, full MNIST/CIFAR10"}


def _client_specs(regime: str) -> list[list[int]]:
    """Per-client class-count vectors for the three regimes."""
    if regime == "iid_balanced":
        return [[SAMPLES // 2] * 10 for _ in range(4)]
    if regime == "noniid_balanced":
        # each client concentrated on distinct classes, union still balanced
        return [
            [SAMPLES * 2 if c in (0, 1, 2) else 0 for c in range(10)],
            [SAMPLES * 2 if c in (3, 4) else 0 for c in range(10)],
            [SAMPLES * 2 if c in (5, 6, 7) else 0 for c in range(10)],
            [SAMPLES * 2 if c in (8, 9) else 0 for c in range(10)],
        ]
    if regime == "noniid_skewed":
        # concentrated clients AND a skewed union (classes 0-3 dominate)
        return [
            [SAMPLES * 4 if c in (0, 1) else 0 for c in range(10)],
            [SAMPLES * 4 if c in (0, 2) else 0 for c in range(10)],
            [SAMPLES * 4 if c in (1, 3) else 0 for c in range(10)],
            [SAMPLES * 2 if c in (4, 5) else 0 for c in range(10)],
        ]
    raise ValueError(regime)


@pytest.mark.benchmark(group="eq2")
def test_eq2_weight_divergence(benchmark):
    generator = make_synthetic_mnist(seed=12)

    def experiment():
        reports = {}
        for regime in ("iid_balanced", "noniid_balanced", "noniid_skewed"):
            rng = np.random.default_rng(12)
            datasets = [generator.generate(spec, rng=rng) for spec in _client_specs(regime)]
            reports[regime] = weight_divergence_experiment(
                lambda: MLP(generator.flat_feature_dim(), 10, hidden=(16,), seed=13),
                datasets, num_classes=10, rounds=ROUNDS, local_steps=LOCAL_STEPS,
                lr=LR, batch_size=256, seed=12,
            )
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for regime, report in reports.items():
        rows.append({
            "regime": regime,
            "term1_emd_client_pop": round(report.emd_clients_to_population, 3),
            "term2_emd_pop_uniform": round(report.emd_population_to_uniform, 3),
            "weight_divergence": round(report.weight_divergence, 4),
        })
    print_table("Eq. (2): measured weight divergence per regime", rows)

    iid = reports["iid_balanced"]
    noniid = reports["noniid_balanced"]
    skewed = reports["noniid_skewed"]

    # the EMD terms behave as constructed
    assert iid.emd_clients_to_population < noniid.emd_clients_to_population
    assert noniid.emd_population_to_uniform < skewed.emd_population_to_uniform + 1e-9
    assert skewed.emd_population_to_uniform > 0.5

    # and the measured divergence follows the bound's ordering
    assert noniid.weight_divergence > iid.weight_divergence
    assert skewed.weight_divergence > iid.weight_divergence
