"""Parallel batch encryption/decryption of many vectors.

Mirrors :mod:`repro.federated.executor`: the same three back-ends
(``sequential`` / ``thread`` / ``process``) applied to the crypto hot path,
so all N clients of a secure registration round encrypt concurrently instead
of one after another.  Work items are pure functions of (public key, values,
packing parameters), so every mode produces vectors that decrypt to
identical plaintexts.

Note on parallelism: CPython's big-int ``pow`` holds the GIL, so only
``process`` mode achieves true CPU parallelism for the modular
exponentiations.  ``thread`` mode exists for API parity (and for bignum
back-ends that release the GIL); with a prewarmed
:class:`~repro.crypto.paillier.NoisePool` the online work is mostly
GIL-bound Python either way, and ``sequential`` is the honest default.

Noise interplay
---------------
* ``sequential`` and ``thread`` modes consume a shared (thread-safe)
  :class:`~repro.crypto.paillier.NoisePool` directly.
* ``process`` mode cannot share a pool across interpreters, so when a pool
  is supplied the required ``r^n`` terms are drawn in the parent and shipped
  with each work item; otherwise workers generate their own secure noise.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence, Union

import numpy as np

from .encoding import DEFAULT_BASE, DEFAULT_PRECISION
from .packing import DEFAULT_MAX_WEIGHT, PackedEncryptedVector, PackingScheme
from .paillier import NoisePool, PaillierPrivateKey, PaillierPublicKey
from .vector import EncryptedVector

__all__ = ["BatchCryptoExecutor", "encrypt_many", "decrypt_many", "encrypt_one"]

AnyEncryptedVector = Union[EncryptedVector, PackedEncryptedVector]


def encrypt_one(public_key: PaillierPublicKey, values: np.ndarray, packed: bool,
                max_weight: int, base: int, precision: int, max_abs_value: float,
                noise: Optional[Union[NoisePool, Sequence[int]]],
                rng: Optional[random.Random]) -> AnyEncryptedVector:
    """Worker body: encrypt one vector (packed or per-component)."""
    if packed:
        return PackedEncryptedVector.encrypt(
            public_key, values, max_weight=max_weight, base=base,
            precision=precision, max_abs_value=max_abs_value,
            noise=noise, rng=rng,
        )
    encoder = EncryptedVector.encoder_for(base, precision)
    return EncryptedVector.encrypt(public_key, values, encoder=encoder,
                                   rng=rng, noise=noise)


def _decrypt_one(private_key: PaillierPrivateKey,
                 vector: AnyEncryptedVector) -> np.ndarray:
    """Worker body: decrypt one vector back to floats."""
    return vector.decrypt(private_key)


class BatchCryptoExecutor:
    """Run bulk encrypt/decrypt with the chosen back-end.

    Parameters mirror :class:`~repro.federated.executor.LocalUpdateExecutor`.
    """

    def __init__(self, mode: str = "sequential", max_workers: Optional[int] = None):
        if mode not in ("sequential", "thread", "process"):
            raise ValueError("mode must be 'sequential', 'thread' or 'process'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.mode = mode
        self.max_workers = max_workers

    # -- internals -----------------------------------------------------------

    def _map(self, fn, work_items: list[tuple]) -> list:
        if self.mode == "sequential":
            return [fn(*item) for item in work_items]
        pool_cls = ThreadPoolExecutor if self.mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=self.max_workers) as pool:
            futures = [pool.submit(fn, *item) for item in work_items]
            return [f.result() for f in futures]

    def _noise_per_item(self, public_key: PaillierPublicKey,
                       vectors: Sequence[np.ndarray], packed: bool,
                       max_weight: int, base: int, precision: int,
                       max_abs_value: float,
                       noise: Optional[NoisePool]) -> list:
        """Resolve the per-work-item noise argument for the current mode."""
        if noise is None:
            return [None] * len(vectors)
        if self.mode != "process":
            return [noise] * len(vectors)  # NoisePool is thread-safe
        # process mode: pre-draw r^n terms here and ship plain ints
        per_item = []
        for values in vectors:
            if packed:
                scheme = PackingScheme(public_key, len(np.ravel(values)),
                                       max_weight=max_weight, base=base,
                                       precision=precision,
                                       max_abs_value=max_abs_value)
                per_item.append(noise.take_many(scheme.num_ciphertexts))
            else:
                per_item.append(noise.take_many(len(np.ravel(values))))
        return per_item

    # -- public API ----------------------------------------------------------

    def encrypt_many(self, public_key: PaillierPublicKey,
                     vectors: Sequence[Sequence[float]] | np.ndarray,
                     packed: bool = False,
                     max_weight: int = DEFAULT_MAX_WEIGHT,
                     base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION,
                     max_abs_value: float = 1.0,
                     noise: Optional[NoisePool] = None,
                     rng: Optional[random.Random] = None) -> list[AnyEncryptedVector]:
        """Encrypt every vector in *vectors*, concurrently where possible.

        A seeded *rng* (reproducible ciphertexts) is honoured only in
        ``sequential`` mode; ``thread``/``process`` modes interleave workers,
        so they fall back to secure per-worker randomness — plaintexts are
        unaffected, ciphertext bits are not reproducible.
        """
        arrays = [np.asarray(v, dtype=float).ravel() for v in vectors]
        if not arrays:
            return []
        # a shared seeded rng is only meaningful without worker interleaving
        worker_rng = rng if self.mode == "sequential" else None
        noise_args = self._noise_per_item(public_key, arrays, packed, max_weight,
                                          base, precision, max_abs_value, noise)
        work = [
            (public_key, values, packed, max_weight, base, precision,
             max_abs_value, noise_arg, worker_rng)
            for values, noise_arg in zip(arrays, noise_args)
        ]
        return self._map(encrypt_one, work)

    def decrypt_many(self, private_key: PaillierPrivateKey,
                     vectors: Sequence[AnyEncryptedVector]) -> list[np.ndarray]:
        """Decrypt every vector in *vectors*, concurrently where possible."""
        return self._map(_decrypt_one, [(private_key, v) for v in vectors])


def encrypt_many(public_key: PaillierPublicKey,
                 vectors: Sequence[Sequence[float]] | np.ndarray,
                 mode: str = "sequential", max_workers: Optional[int] = None,
                 **kwargs) -> list[AnyEncryptedVector]:
    """Convenience wrapper: ``BatchCryptoExecutor(mode).encrypt_many(...)``."""
    return BatchCryptoExecutor(mode, max_workers).encrypt_many(public_key, vectors,
                                                               **kwargs)


def decrypt_many(private_key: PaillierPrivateKey,
                 vectors: Sequence[AnyEncryptedVector],
                 mode: str = "sequential",
                 max_workers: Optional[int] = None) -> list[np.ndarray]:
    """Convenience wrapper: ``BatchCryptoExecutor(mode).decrypt_many(...)``."""
    return BatchCryptoExecutor(mode, max_workers).decrypt_many(private_key, vectors)
