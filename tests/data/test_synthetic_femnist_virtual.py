"""Tests for synthetic datasets, the FEMNIST-like federation and virtual clients."""

import numpy as np
import pytest

from repro.data.femnist import (
    FEMNIST_NUM_CLASSES,
    FEMNIST_PAPER_EMD,
    FEMNIST_PAPER_RHO,
    make_femnist_federation,
)
from repro.data.partition import ClientPartition, EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import (
    SyntheticImageGenerator,
    make_synthetic_cifar,
    make_synthetic_mnist,
    make_uniform_test_set,
)
from repro.data.virtual_clients import make_virtual_clients


class TestSyntheticGenerator:
    def test_shapes(self):
        gen = make_synthetic_mnist(seed=0)
        ds = gen.generate([5] * 10)
        assert ds.x.shape == (50, 1, 8, 8)
        assert ds.num_classes == 10

    def test_cifar_like_has_three_channels(self):
        gen = make_synthetic_cifar(seed=0)
        assert gen.image_shape[0] == 3
        assert gen.flat_feature_dim() == 3 * 8 * 8

    def test_class_counts_respected(self):
        gen = make_synthetic_mnist(seed=1)
        ds = gen.generate([0, 3, 0, 7, 0, 0, 0, 0, 0, 2])
        np.testing.assert_array_equal(ds.class_counts(), [0, 3, 0, 7, 0, 0, 0, 0, 0, 2])

    def test_same_seed_same_prototypes(self):
        a = make_synthetic_mnist(seed=5)
        b = make_synthetic_mnist(seed=5)
        np.testing.assert_allclose(a.prototypes, b.prototypes)

    def test_different_seed_different_prototypes(self):
        a = make_synthetic_mnist(seed=5)
        b = make_synthetic_mnist(seed=6)
        assert not np.allclose(a.prototypes, b.prototypes)

    def test_classes_are_separable(self):
        # nearest-prototype classification should beat chance by a wide margin,
        # otherwise no model can learn the task
        gen = make_synthetic_mnist(seed=2)
        ds = gen.generate([30] * 10, rng=np.random.default_rng(0))
        flat_protos = gen.prototypes.reshape(10, -1)
        flat_x = ds.x.reshape(len(ds), -1)
        dists = ((flat_x[:, None, :] - flat_protos[None, :, :]) ** 2).sum(axis=2)
        pred = dists.argmin(axis=1)
        assert (pred == ds.y).mean() > 0.55

    def test_uniform_test_set(self):
        gen = make_synthetic_mnist(seed=3)
        test = make_uniform_test_set(gen, samples_per_class=7, seed=0)
        np.testing.assert_array_equal(test.class_counts(), [7] * 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticImageGenerator(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageGenerator(num_classes=3, image_shape=(1, 4, 6))
        with pytest.raises(ValueError):
            SyntheticImageGenerator(num_classes=3, class_overlap=2.0)
        with pytest.raises(ValueError):
            SyntheticImageGenerator(num_classes=3, noise_scale=-1)
        gen = make_synthetic_mnist(seed=0)
        with pytest.raises(ValueError):
            gen.sample_class(99, 1)
        with pytest.raises(ValueError):
            gen.generate([1, 2])
        with pytest.raises(ValueError):
            make_uniform_test_set(gen, samples_per_class=0)


class TestFemnistFederation:
    def test_summary_matches_paper_statistics(self):
        # larger per-client sample counts keep the empirical-EMD sampling
        # noise below the Table 1 target; without writer-style concentration
        # both Table 1 statistics are reachable
        fed = make_femnist_federation(n_clients=400, samples_per_client=200,
                                      writer_concentration=0.0, seed=0)
        summary = fed.summary()
        assert summary["num_classes"] == FEMNIST_NUM_CLASSES
        assert summary["n_clients"] == 400
        # ρ and EMD_avg should land near the Table 1 values
        assert summary["rho"] == pytest.approx(FEMNIST_PAPER_RHO, rel=0.6)
        assert summary["emd_avg"] == pytest.approx(FEMNIST_PAPER_EMD, abs=0.3)

    def test_default_federation_has_writer_style_concentration(self):
        # the default federation gives every client genuinely dominating
        # letters, which is what Dubhe's registry needs to act on
        fed = make_femnist_federation(n_clients=200, samples_per_client=64, seed=0)
        dists = fed.partition.client_distributions()
        top_share = np.sort(dists, axis=1)[:, -3:].sum(axis=1)
        assert np.median(top_share) > 0.3

    def test_client_sizes_even(self):
        fed = make_femnist_federation(n_clients=50, samples_per_client=32, seed=1)
        np.testing.assert_array_equal(fed.partition.client_sizes(), np.full(50, 32))

    def test_generator_covers_52_classes(self):
        fed = make_femnist_federation(n_clients=10, seed=2)
        assert fed.generator.num_classes == 52

    def test_invalid_clients(self):
        with pytest.raises(ValueError):
            make_femnist_federation(n_clients=0)


class TestVirtualClients:
    def test_every_virtual_client_has_exact_size(self):
        global_dist = half_normal_class_proportions(10, 5.0)
        real = EMDTargetPartitioner(20, 300, 1.0, seed=0).partition(global_dist)
        mapping = make_virtual_clients(real, samples_per_client=128, seed=0)
        np.testing.assert_array_equal(
            mapping.partition.client_sizes(),
            np.full(mapping.n_virtual, 128),
        )

    def test_large_clients_are_split(self):
        counts = np.array([[400, 400], [10, 10]])
        real = ClientPartition(counts, 2)
        mapping = make_virtual_clients(real, samples_per_client=100, seed=0)
        assert len(mapping.virtual_of(0)) == 8
        assert len(mapping.virtual_of(1)) == 1

    def test_small_clients_duplicate(self):
        counts = np.array([[3, 2]])
        real = ClientPartition(counts, 2)
        mapping = make_virtual_clients(real, samples_per_client=64, seed=0)
        assert mapping.n_virtual == 1
        assert mapping.partition.client_sizes()[0] == 64

    def test_class_proportions_preserved_in_expectation(self):
        counts = np.array([[900, 100]])
        real = ClientPartition(counts, 2)
        mapping = make_virtual_clients(real, samples_per_client=1000, seed=1)
        dist = mapping.partition.client_distribution(0)
        assert dist[0] == pytest.approx(0.9, abs=0.05)

    def test_empty_client_skipped(self):
        counts = np.array([[0, 0], [5, 5]])
        real = ClientPartition(counts, 2)
        mapping = make_virtual_clients(real, samples_per_client=10, seed=0)
        assert mapping.n_virtual == 1

    def test_invalid_parameters(self):
        real = ClientPartition(np.array([[1, 1]]), 2)
        with pytest.raises(ValueError):
            make_virtual_clients(real, samples_per_client=0)
        empty = ClientPartition(np.array([[0, 0]]), 2)
        with pytest.raises(ValueError):
            make_virtual_clients(empty, samples_per_client=4)
