"""The encrypted registration / selection protocol (the HE side of Dubhe).

Roles, matching Figure 3/4 of the paper:

* **clients** hold plaintext label distributions, fill registries locally,
  and encrypt everything they transmit with the round public key;
* the **server** only ever touches ciphertexts: it sums the encrypted
  registries (or encrypted distributions during multi-time selection) and
  forwards aggregates — it never holds the private key;
* the **agent** (a randomly chosen client) generates the round key-pair,
  dispatches it to clients, and performs decryption duties on aggregates.

The protocol classes below also meter every byte and message they move so
the §6.4 overhead study reads its numbers from the same code path the
selection uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from ..crypto.keyagent import KeyAgent
from ..crypto.paillier import PaillierPublicKey
from ..crypto.vector import EncryptedVector, plaintext_vector_bytes
from .config import DubheConfig
from .registry import RegistrationResult, RegistryCodebook

__all__ = [
    "ProtocolStats",
    "SecureAggregationServer",
    "SecureClient",
    "SecureRegistrationRound",
    "SecureDistributionAggregation",
]


@dataclass
class ProtocolStats:
    """Bytes, messages and wall-time spent by one protocol execution."""

    messages: int = 0
    plaintext_bytes: int = 0
    ciphertext_bytes: int = 0
    encrypt_seconds: float = 0.0
    decrypt_seconds: float = 0.0

    def merged_with(self, other: "ProtocolStats") -> "ProtocolStats":
        return ProtocolStats(
            messages=self.messages + other.messages,
            plaintext_bytes=self.plaintext_bytes + other.plaintext_bytes,
            ciphertext_bytes=self.ciphertext_bytes + other.ciphertext_bytes,
            encrypt_seconds=self.encrypt_seconds + other.encrypt_seconds,
            decrypt_seconds=self.decrypt_seconds + other.decrypt_seconds,
        )

    @property
    def expansion_factor(self) -> float:
        """Ciphertext size relative to plaintext size."""
        if self.plaintext_bytes == 0:
            return 0.0
        return self.ciphertext_bytes / self.plaintext_bytes


class SecureAggregationServer:
    """The honest-but-curious server: aggregates ciphertexts, nothing else.

    The class deliberately has no attribute that could hold a private key and
    no decryption method — tests assert this structural property.
    """

    def __init__(self, public_key: PaillierPublicKey):
        self.public_key = public_key
        self._received: list[EncryptedVector] = []
        self.stats = ProtocolStats()

    def receive(self, ciphertext: EncryptedVector) -> None:
        """Accept one client's encrypted vector."""
        if ciphertext.public_key != self.public_key:
            raise ValueError("ciphertext was produced under a different round key")
        self._received.append(ciphertext)
        self.stats.messages += 1
        self.stats.ciphertext_bytes += ciphertext.nbytes()

    def aggregate(self) -> EncryptedVector:
        """Homomorphically sum every received vector (still encrypted)."""
        if not self._received:
            raise ValueError("no ciphertexts received")
        return EncryptedVector.sum(self._received)

    @property
    def received_count(self) -> int:
        return len(self._received)

    def reset(self) -> None:
        self._received = []


class SecureClient:
    """A client's view of the secure protocol: encrypt before transmitting."""

    def __init__(self, client_id: int, distribution: np.ndarray):
        self.client_id = client_id
        self.distribution = np.asarray(distribution, dtype=float)
        self.registration: Optional[RegistrationResult] = None
        self.stats = ProtocolStats()

    def register(self, codebook: RegistryCodebook) -> RegistrationResult:
        """Run Algorithm 1 locally (plaintext never leaves the client)."""
        self.registration = codebook.register(self.distribution)
        return self.registration

    def _encrypt(self, values: np.ndarray, public_key: PaillierPublicKey) -> EncryptedVector:
        start = perf_counter()
        ciphertext = EncryptedVector.encrypt(public_key, values)
        self.stats.encrypt_seconds += perf_counter() - start
        self.stats.messages += 1
        self.stats.plaintext_bytes += plaintext_vector_bytes(values)
        self.stats.ciphertext_bytes += ciphertext.nbytes()
        return ciphertext

    def encrypted_registry(self, public_key: PaillierPublicKey) -> EncryptedVector:
        """The encrypted registry this client sends to the server."""
        if self.registration is None:
            raise RuntimeError("client has not registered yet")
        return self._encrypt(self.registration.registry, public_key)

    def encrypted_distribution(self, public_key: PaillierPublicKey) -> EncryptedVector:
        """The encrypted label distribution sent during multi-time selection."""
        return self._encrypt(self.distribution, public_key)


@dataclass
class SecureRegistrationRound:
    """One full registration round: keygen → encrypt → aggregate → decrypt.

    Returns the overall registry exactly as each client would decrypt it,
    plus the overhead statistics of every role.
    """

    config: DubheConfig
    agent: Optional[KeyAgent] = None
    _stats: ProtocolStats = field(default_factory=ProtocolStats)

    def run(self, client_distributions: Sequence[np.ndarray] | np.ndarray,
            ) -> tuple[np.ndarray, list[RegistrationResult], ProtocolStats]:
        """Execute the protocol for every client distribution given."""
        distributions = np.asarray(client_distributions, dtype=float)
        if distributions.ndim != 2:
            raise ValueError("client_distributions must be 2-D")
        codebook = RegistryCodebook(self.config)
        agent = self.agent or KeyAgent(key_size=self.config.key_size)
        keypair = agent.new_round()
        n_clients = distributions.shape[0]
        agent.dispatch_public_key(n_clients)
        agent.dispatch_private_key(n_clients)

        clients = [SecureClient(k, distributions[k]) for k in range(n_clients)]
        server = SecureAggregationServer(keypair.public_key)
        registrations: list[RegistrationResult] = []
        for client in clients:
            registrations.append(client.register(codebook))
            server.receive(client.encrypted_registry(keypair.public_key))
        encrypted_total = server.aggregate()

        # every client can decrypt the synchronized aggregate with sk_t; we
        # decrypt once (the result is identical for every client)
        start = perf_counter()
        overall = encrypted_total.decrypt(keypair.private_key)
        decrypt_seconds = perf_counter() - start

        stats = ProtocolStats()
        for client in clients:
            stats = stats.merged_with(client.stats)
        stats = stats.merged_with(server.stats)
        stats.decrypt_seconds += decrypt_seconds
        # synchronising the aggregate back to N clients is N more messages
        stats.messages += n_clients
        stats.ciphertext_bytes += encrypted_total.nbytes() * n_clients
        self._stats = stats
        return overall, registrations, stats


class SecureDistributionAggregation:
    """The multi-time-selection data path: encrypted ``p_l`` aggregation.

    The selected clients of a tentative try encrypt their label
    distributions; the server sums the ciphertexts; the agent decrypts the
    aggregate and scores ``||p_o − p_u||₁``.  Population distributions of
    individual clients are never visible to the server.
    """

    def __init__(self, config: DubheConfig, agent: Optional[KeyAgent] = None):
        self.config = config
        self.agent = agent or KeyAgent(key_size=config.key_size)
        self.keypair = self.agent.new_round()
        self.stats = ProtocolStats()

    def score_selection(self, client_distributions: np.ndarray,
                        selected: Sequence[int]) -> float:
        """Return ``||p_o − p_u||₁`` for *selected*, computed under encryption."""
        distributions = np.asarray(client_distributions, dtype=float)
        selected = list(selected)
        if not selected:
            raise ValueError("cannot score an empty selection")
        server = SecureAggregationServer(self.keypair.public_key)
        clients = [SecureClient(k, distributions[k]) for k in selected]
        for client in clients:
            server.receive(client.encrypted_distribution(self.keypair.public_key))
        aggregate = server.aggregate()
        uniform = np.full(self.config.num_classes, 1.0 / self.config.num_classes)
        score = self.agent.score_population(aggregate, uniform)
        round_stats = ProtocolStats()
        for client in clients:
            round_stats = round_stats.merged_with(client.stats)
        round_stats = round_stats.merged_with(server.stats)
        round_stats.decrypt_seconds += 0.0
        self.stats = self.stats.merged_with(round_stats)
        return score
