"""Dubhe: the paper's client-selection system (the core contribution).

Public API
----------
* :class:`DubheConfig` — reference set ``G``, thresholds ``σ_i``, ``K``, ``H``.
* :class:`RegistryCodebook`, :class:`RegistrationResult`,
  :class:`ClientCategory` — the registry and Algorithm 1.
* probability rules — :func:`participation_probability`,
  :func:`expected_participants`, :func:`bernoulli_participation`.
* selectors — :class:`RandomSelector`, :class:`GreedySelector`,
  :class:`DubheSelector`.
* multi-time selection — :func:`multi_time_selection`,
  :class:`MultiTimeResult`.
* parameter search — :func:`search_thresholds`,
  :class:`ParameterSearchResult`.
* secure protocol — :class:`SecureRegistrationRound`,
  :class:`SecureDistributionAggregation`, :class:`SecureAggregationServer`,
  :class:`SecureClient`, :class:`ProtocolStats`.
* overhead accounting — :func:`measure_encryption_overhead`,
  :func:`communication_overhead`.
"""

from .config import (
    GROUP1_REFERENCE_SET,
    GROUP2_REFERENCE_SET,
    RUN_MODES,
    RUNTIME_DTYPES,
    DubheConfig,
    resolve_run_mode,
    resolve_runtime_dtype,
)
from .multitime import MultiTimeResult, TentativeTry, multi_time_selection
from .overhead import (
    CommunicationOverheadReport,
    EncryptionOverheadReport,
    communication_overhead,
    measure_encryption_overhead,
)
from .parameter_search import ParameterSearchResult, default_sigma_grid, search_thresholds
from .probability import (
    bernoulli_participation,
    expected_category_count,
    expected_participants,
    participation_probabilities,
    participation_probability,
)
from .registry import ClientCategory, RegistrationResult, RegistryCodebook
from .retry import RetryPolicy
from .secure import (
    ProtocolStats,
    SecureAggregationServer,
    SecureClient,
    SecureDistributionAggregation,
    SecureRegistrationRound,
)
from .secure_selector import SecureDubheSelector
from .selectors import ClientSelector, DubheSelector, GreedySelector, RandomSelector

__all__ = [
    "ClientCategory",
    "ClientSelector",
    "CommunicationOverheadReport",
    "DubheConfig",
    "DubheSelector",
    "EncryptionOverheadReport",
    "GROUP1_REFERENCE_SET",
    "GROUP2_REFERENCE_SET",
    "GreedySelector",
    "MultiTimeResult",
    "ParameterSearchResult",
    "ProtocolStats",
    "RUNTIME_DTYPES",
    "RUN_MODES",
    "RandomSelector",
    "RegistrationResult",
    "RegistryCodebook",
    "RetryPolicy",
    "SecureAggregationServer",
    "SecureClient",
    "SecureDistributionAggregation",
    "SecureDubheSelector",
    "SecureRegistrationRound",
    "TentativeTry",
    "bernoulli_participation",
    "communication_overhead",
    "default_sigma_grid",
    "expected_category_count",
    "expected_participants",
    "measure_encryption_overhead",
    "multi_time_selection",
    "participation_probabilities",
    "participation_probability",
    "resolve_run_mode",
    "resolve_runtime_dtype",
    "search_thresholds",
]
