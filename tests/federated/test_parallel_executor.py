"""Determinism, sharding and fallback tests for executor_mode="parallel"."""

import numpy as np
import pytest

from repro.core.config import (
    SHARD_POLICIES,
    partition_cohort,
    resolve_num_workers,
    resolve_shard_policy,
)
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.aggregation import StackedClientStates, average_states
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.federated.scheduler import CohortScheduler, SchedulerError
from repro.federated.server import FederatedServer
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.nn.models import MLP, MnistCNN

TOL = 1e-10

MODEL_FACTORIES = {
    "mlp": lambda: MLP(64, 10, hidden=(16,), seed=7),
    "mnist_cnn": lambda: MnistCNN(1, 8, 10, channels=(3, 5), hidden=12,
                                  dropout=0.25, seed=7),
}


def make_clients(n_clients=5, samples_per_class=3, generator_seed=0):
    gen = make_synthetic_mnist(seed=generator_seed)
    return [
        FederatedClient(
            k, 10,
            dataset=gen.generate([samples_per_class] * 10,
                                 rng=np.random.default_rng(k)),
            seed=1000 + k,
        )
        for k in range(n_clients)
    ]


def assert_states_match(a_states, b_states, tol=TOL):
    assert len(a_states) == len(b_states)
    for a, b in zip(a_states, b_states):
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], atol=tol, rtol=0)


@pytest.fixture
def parallel_executor():
    executor = LocalUpdateExecutor("parallel", num_workers=2)
    yield executor
    executor.close()


class TestShardPartition:
    def test_even_split(self):
        shards = partition_cohort(8, 2)
        assert [list(s) for s in shards] == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_remainder_goes_to_leading_shards(self):
        shards = partition_cohort(7, 3)
        assert [len(s) for s in shards] == [3, 2, 2]
        assert sorted(np.concatenate(shards)) == list(range(7))

    def test_fewer_clients_than_workers(self):
        shards = partition_cohort(3, 8)
        assert [len(s) for s in shards] == [1, 1, 1]

    def test_interleaved_policy(self):
        shards = partition_cohort(7, 2, policy="interleaved")
        assert [list(s) for s in shards] == [[0, 2, 4, 6], [1, 3, 5]]

    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_every_policy_is_a_bijection(self, policy):
        for k, w in [(1, 1), (5, 2), (16, 5), (4, 9)]:
            shards = partition_cohort(k, w, policy=policy)
            assert sorted(np.concatenate(shards)) == list(range(k))
            assert all(len(s) > 0 for s in shards)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            resolve_shard_policy("zigzag")
        with pytest.raises(ValueError):
            partition_cohort(4, 2, policy="zigzag")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            resolve_num_workers(0)
        assert resolve_num_workers() >= 1
        assert resolve_num_workers(3) == 3


class TestParallelEquivalence:
    @pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
    def test_per_client_states_match_vectorized(self, model_name,
                                                parallel_executor):
        factory = MODEL_FACTORIES[model_name]
        server = FederatedServer(factory)
        global_state = server.global_state()
        config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
        vec = LocalUpdateExecutor("vectorized").run_round(
            make_clients(), factory, global_state, config, round_index=2
        )
        par = parallel_executor.run_round(
            make_clients(), factory, global_state, config, round_index=2
        )
        assert parallel_executor.last_fallback_reason is None
        assert isinstance(par, StackedClientStates)
        assert_states_match(vec, par)
        agg_vec = average_states(vec)
        agg_par = average_states(par)
        for key in agg_vec:
            np.testing.assert_allclose(agg_vec[key], agg_par[key], atol=TOL,
                                       rtol=0)

    def test_three_rounds_changing_selection_match_vectorized(self):
        factory = MODEL_FACTORIES["mlp"]
        config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
        pool = make_clients(8)
        pool_vec = make_clients(8)
        selections = [[0, 1, 2, 3], [2, 3, 4, 5], [7, 0, 5, 1]]

        par_server = FederatedServer(factory)
        vec_server = FederatedServer(factory)
        par_exec = LocalUpdateExecutor("parallel", num_workers=2)
        vec_exec = LocalUpdateExecutor("vectorized")
        try:
            for r, picks in enumerate(selections):
                par_server.aggregate(par_exec.run_round(
                    [pool[i] for i in picks], factory,
                    par_server.global_state(copy=False), config, round_index=r))
                vec_server.aggregate(vec_exec.run_round(
                    [pool_vec[i] for i in picks], factory,
                    vec_server.global_state(copy=False), config, round_index=r))
            assert par_exec.last_fallback_reason is None
            assert par_exec.scheduler.builds == 1  # fleet stayed warm
            assert par_exec.scheduler.rounds_dispatched == len(selections)
            par_state = par_server.global_state()
            for key, value in vec_server.global_state().items():
                np.testing.assert_allclose(value, par_state[key], atol=TOL,
                                           rtol=0)
        finally:
            par_exec.close()

    @pytest.mark.parametrize("n_clients,num_workers", [(3, 8), (7, 2)],
                             ids=["K<workers", "K%workers!=0"])
    def test_shard_edge_cases_match_vectorized(self, n_clients, num_workers):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
        vec = LocalUpdateExecutor("vectorized").run_round(
            make_clients(n_clients), factory, server.global_state(), config
        )
        executor = LocalUpdateExecutor("parallel", num_workers=num_workers)
        try:
            par = executor.run_round(
                make_clients(n_clients), factory, server.global_state(), config
            )
            assert executor.last_fallback_reason is None
            assert len(executor.scheduler._shards) == min(n_clients, num_workers)
            assert_states_match(vec, par)
        finally:
            executor.close()

    def test_interleaved_policy_matches_contiguous(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
        vec = LocalUpdateExecutor("vectorized").run_round(
            make_clients(5), factory, server.global_state(), config
        )
        executor = LocalUpdateExecutor("parallel", num_workers=2,
                                       shard_policy="interleaved")
        try:
            par = executor.run_round(
                make_clients(5), factory, server.global_state(), config
            )
            assert executor.last_fallback_reason is None
            assert_states_match(vec, par)
        finally:
            executor.close()

    def test_rounds_participated_increment(self, parallel_executor):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        clients = make_clients(4)
        parallel_executor.run_round(clients, factory, server.global_state(),
                                    LocalTrainingConfig())
        assert all(c.rounds_participated == 1 for c in clients)

    def test_factory_change_with_same_layout_rebuilds_fleet(self):
        # same parameter names/shapes, different arithmetic (dropout rate):
        # the forked workers captured the old factory, so the scheduler must
        # detect the structural change and re-fork instead of silently
        # training the stale program
        def cnn(p):
            return lambda: MnistCNN(1, 8, 10, channels=(3, 5), hidden=12,
                                    dropout=p, seed=7)

        config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
        executor = LocalUpdateExecutor("parallel", num_workers=2)
        try:
            server = FederatedServer(cnn(0.25))
            executor.run_round(make_clients(4), cnn(0.25),
                               server.global_state(), config, round_index=0)
            assert executor.scheduler.builds == 1
            par = executor.run_round(make_clients(4), cnn(0.6),
                                     server.global_state(), config,
                                     round_index=1)
            assert executor.scheduler.builds == 2
            assert executor.last_fallback_reason is None
            vec = LocalUpdateExecutor("vectorized").run_round(
                make_clients(4), cnn(0.6), server.global_state(), config,
                round_index=1)
            assert_states_match(vec, par)
        finally:
            executor.close()

    def test_scheduler_rebuilds_on_cohort_size_change(self, parallel_executor):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        parallel_executor.run_round(make_clients(4), factory,
                                    server.global_state(), config)
        parallel_executor.run_round(make_clients(6), factory,
                                    server.global_state(), config)
        assert parallel_executor.scheduler.builds == 2
        assert parallel_executor.last_fallback_reason is None

    def test_float32_parallel_tracks_float64(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        ref = LocalUpdateExecutor("vectorized").run_round(
            make_clients(4), factory, server.global_state(), config
        )
        executor = LocalUpdateExecutor("parallel", num_workers=2,
                                       dtype="float32")
        try:
            par = executor.run_round(make_clients(4), factory,
                                     server.global_state(), config)
            assert executor.last_fallback_reason is None
            assert par.stacked[next(iter(par.stacked))].dtype == np.float32
            assert_states_match(ref, par, tol=1e-4)
        finally:
            executor.close()


class TestParallelFallback:
    def test_worker_crash_falls_back_to_vectorized(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        executor = LocalUpdateExecutor("parallel", num_workers=2)
        try:
            executor.run_round(make_clients(4), factory, server.global_state(),
                               config, round_index=0)
            assert executor.last_fallback_reason is None
            # kill one worker mid-fleet: the next round must detect the dead
            # pipe, mark the scheduler broken and fall back transparently
            victim = executor.scheduler._workers[0]
            victim.terminate()
            victim.join(timeout=5.0)
            vec = LocalUpdateExecutor("vectorized").run_round(
                make_clients(4), factory, server.global_state(), config,
                round_index=1)
            par = executor.run_round(make_clients(4), factory,
                                     server.global_state(), config,
                                     round_index=1)
            assert executor.last_fallback_reason is not None
            assert executor.scheduler.broken is not None
            assert_states_match(vec, par)
            # later rounds keep working (permanently on the fallback path)
            again = executor.run_round(make_clients(4), factory,
                                       server.global_state(), config,
                                       round_index=2)
            assert executor.last_fallback_reason is not None
            assert len(again) == 4
        finally:
            executor.close()

    def test_ragged_cohort_falls_back_to_sequential(self):
        gen = make_synthetic_mnist(seed=0)
        clients = [
            FederatedClient(0, 10, dataset=gen.generate([3] * 10,
                            rng=np.random.default_rng(0)), seed=1),
            FederatedClient(1, 10, dataset=gen.generate([4] * 10,
                            rng=np.random.default_rng(1)), seed=2),
        ]
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        executor = LocalUpdateExecutor("parallel", num_workers=2)
        try:
            par = executor.run_round(clients, factory, server.global_state(),
                                     config)
            assert executor.last_fallback_reason is not None
            seq = LocalUpdateExecutor("sequential").run_round(
                [FederatedClient(0, 10, dataset=clients[0].dataset, seed=1),
                 FederatedClient(1, 10, dataset=clients[1].dataset, seed=2)],
                factory, server.global_state(), config,
            )
            assert_states_match(seq, par)
        finally:
            executor.close()

    def test_close_terminates_workers(self):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        executor = LocalUpdateExecutor("parallel", num_workers=2)
        executor.run_round(make_clients(4), factory, server.global_state(),
                           LocalTrainingConfig())
        workers = list(executor.scheduler._workers)
        assert workers and all(w.is_alive() for w in workers)
        executor.close()
        assert all(not w.is_alive() for w in workers)
        # close() is idempotent and the executor stays usable afterwards
        executor.close()
        executor.run_round(make_clients(4), factory, server.global_state(),
                           LocalTrainingConfig())
        assert executor.scheduler.builds == 2
        executor.close()

    def test_fleet_build_oserror_falls_back_to_vectorized(self, monkeypatch):
        # /dev/shm exhaustion, fork limits etc. surface as OSError during
        # the fleet build; the round must degrade, not crash the experiment
        import repro.federated.scheduler as scheduler_module

        def exhausted(*args, **kwargs):
            raise OSError("no space left on device (simulated)")

        monkeypatch.setattr(scheduler_module, "shared_pool", exhausted)
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        executor = LocalUpdateExecutor("parallel", num_workers=2)
        try:
            par = executor.run_round(make_clients(4), factory,
                                     server.global_state(), config)
            assert executor.last_fallback_reason is not None
            assert "build failed" in executor.last_fallback_reason
            vec = LocalUpdateExecutor("vectorized").run_round(
                make_clients(4), factory, server.global_state(), config)
            assert_states_match(vec, par)
        finally:
            executor.close()

    def test_scheduler_timeout_is_threaded_through(self):
        executor = LocalUpdateExecutor("parallel", num_workers=2,
                                       scheduler_timeout=7.5)
        try:
            factory = MODEL_FACTORIES["mlp"]
            server = FederatedServer(factory)
            executor.run_round(make_clients(2), factory, server.global_state(),
                               LocalTrainingConfig())
            assert executor.scheduler.timeout == 7.5
        finally:
            executor.close()
        with pytest.raises(ValueError):
            LocalUpdateExecutor("parallel", scheduler_timeout=0)
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="parallel", scheduler_timeout=-1.0)

    def test_merge_stacks_are_round_persistent(self, parallel_executor):
        factory = MODEL_FACTORIES["mlp"]
        server = FederatedServer(factory)
        config = LocalTrainingConfig(learning_rate=1e-3)
        first = parallel_executor.run_round(make_clients(4), factory,
                                            server.global_state(), config,
                                            round_index=0)
        first_arrays = {name: arr for name, arr in first.stacked.items()}
        second = parallel_executor.run_round(make_clients(4), factory,
                                             server.global_state(), config,
                                             round_index=1)
        # steady-state rounds reuse (and overwrite) the same merge stacks,
        # mirroring the vectorized pools' documented lifetime contract
        for name, arr in second.stacked.items():
            assert arr is first_arrays[name]

    def test_broken_scheduler_raises_immediately(self):
        scheduler = CohortScheduler(num_workers=2)
        scheduler.broken = "synthetic breakage"
        with pytest.raises(SchedulerError, match="synthetic breakage"):
            scheduler.run_round(make_clients(2), MODEL_FACTORIES["mlp"], {},
                                LocalTrainingConfig())


@pytest.fixture(scope="module")
def sim_setup():
    generator = make_synthetic_mnist(seed=0)
    global_dist = half_normal_class_proportions(10, 5.0)
    partition = EMDTargetPartitioner(10, 24, 1.0, seed=0).partition(global_dist)
    test_set = make_uniform_test_set(generator, samples_per_class=4, seed=1)
    return generator, partition, test_set


class RoundRobinSelector:
    def __init__(self, n_clients, k):
        self.n_clients = n_clients
        self.k = k

    def select(self, round_index):
        start = (round_index * self.k) % self.n_clients
        return [(start + i) % self.n_clients for i in range(self.k)]


def make_simulation(sim_setup, mode, rounds=3, **config_kwargs):
    generator, partition, test_set = sim_setup
    return FederatedSimulation(
        partition=partition,
        generator=generator,
        model_factory=lambda: MLP(64, 10, hidden=(16,), seed=5),
        selector=RoundRobinSelector(partition.n_clients, 4),
        test_set=test_set,
        config=FederatedConfig(
            rounds=rounds,
            eval_every=1,
            local=LocalTrainingConfig(batch_size=8, learning_rate=1e-3),
            executor_mode=mode,
            seed=0,
            **config_kwargs,
        ),
    )


class TestParallelSimulation:
    def test_parallel_matches_vectorized_curves(self, sim_setup):
        with make_simulation(sim_setup, "vectorized") as sim_vec:
            hist_vec = sim_vec.run()
            vec_state = sim_vec.server.global_state()
        with make_simulation(sim_setup, "parallel", num_workers=2) as sim_par:
            hist_par = sim_par.run()
            assert sim_par.executor.last_fallback_reason is None
            assert sim_par.executor.scheduler.builds == 1
            par_state = sim_par.server.global_state()
        np.testing.assert_allclose(hist_vec.accuracies(), hist_par.accuracies(),
                                   atol=TOL)
        for key in vec_state:
            np.testing.assert_allclose(vec_state[key], par_state[key], atol=TOL,
                                       rtol=0)

    def test_context_manager_closes_fleet(self, sim_setup):
        with make_simulation(sim_setup, "parallel", num_workers=2) as sim:
            sim.run_round(0)
            workers = list(sim.executor.scheduler._workers)
            assert workers and all(w.is_alive() for w in workers)
        assert all(not w.is_alive() for w in workers)

    def test_num_workers_requires_parallel_mode(self):
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="vectorized", num_workers=2)
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="parallel", num_workers=0)
        with pytest.raises(ValueError):
            FederatedConfig(shard_policy="zigzag")
        with pytest.raises(ValueError):
            FederatedConfig(executor_mode="vectorized",
                            shard_policy="interleaved")
        assert FederatedConfig(executor_mode="parallel",
                               shard_policy="interleaved").num_workers is None
