"""Population-bias measurement over repeated selections.

The quantity Dubhe optimises is ``||p_o − p_u||₁`` — the 1-norm distance
between the population distribution of a round's participants and the
uniform distribution.  Figure 9 of the paper characterises a selection
strategy by the *mean* and *standard deviation* of that quantity over 100
repeated selections at different participation rates.  This module provides
that measurement for any selector that implements ``select(round_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.distributions import emd, uniform_distribution

__all__ = ["SelectionBiasStats", "measure_selection_bias", "baseline_global_bias"]


@dataclass(frozen=True)
class SelectionBiasStats:
    """Mean/std of ``||p_o − p_u||₁`` over repeated selections of one strategy."""

    selector_name: str
    participants_per_round: int
    repetitions: int
    mean_bias: float
    std_bias: float
    biases: tuple[float, ...]

    def as_row(self) -> dict:
        return {
            "selector": self.selector_name,
            "K": self.participants_per_round,
            "mean": round(self.mean_bias, 4),
            "std": round(self.std_bias, 4),
        }


def measure_selection_bias(selector, client_distributions: np.ndarray,
                           repetitions: int = 100) -> SelectionBiasStats:
    """Run *repetitions* independent selections and summarise their bias.

    Parameters
    ----------
    selector:
        Any object with ``select(round_index)`` and (optionally) ``name`` /
        ``participants_per_round`` attributes (all selectors in
        :mod:`repro.core.selectors` qualify).
    client_distributions:
        Label distributions of every client, shape ``(N, C)``.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    distributions = np.asarray(client_distributions, dtype=float)
    uniform = uniform_distribution(distributions.shape[1])
    biases = []
    for r in range(repetitions):
        selected = list(selector.select(r))
        if not selected:
            raise RuntimeError("selector returned an empty selection")
        population = distributions[np.asarray(selected, dtype=int)].mean(axis=0)
        biases.append(emd(population, uniform))
    biases_arr = np.asarray(biases)
    return SelectionBiasStats(
        selector_name=getattr(selector, "name", type(selector).__name__),
        participants_per_round=getattr(selector, "participants_per_round", len(selected)),
        repetitions=repetitions,
        mean_bias=float(biases_arr.mean()),
        std_bias=float(biases_arr.std()),
        biases=tuple(float(b) for b in biases_arr),
    )


def baseline_global_bias(client_distributions: np.ndarray) -> float:
    """``||p_g − p_u||₁`` — Figure 9's "Base Line" (full participation bias)."""
    distributions = np.asarray(client_distributions, dtype=float)
    if distributions.ndim != 2 or distributions.shape[0] == 0:
        raise ValueError("client_distributions must be a non-empty 2-D array")
    global_dist = distributions.mean(axis=0)
    return emd(global_dist, uniform_distribution(distributions.shape[1]))
