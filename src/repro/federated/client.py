"""Federated clients: local data, local training, label-distribution reporting.

A :class:`FederatedClient` is a *virtual client* in the paper's sense (§4.1):
it owns exactly ``N_VC`` samples, trains the received global model for ``E``
local epochs with batch size ``B`` using Adam, and returns its updated
weights.  It can also report its label distribution — in plaintext only to
itself; the secure path through :mod:`repro.core.secure` encrypts it before
anything leaves the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..data.cohort import DatasetCache
from ..data.dataloader import DataLoader
from ..data.dataset import ArrayDataset
from ..data.distributions import label_distribution
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module
from ..nn.optim import Adam, SGD

__all__ = ["LocalTrainingConfig", "FederatedClient"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyper-parameters of one client's local update.

    Defaults follow the paper's group-1 configuration: batch size ``B = 8``,
    ``E = 1`` local epoch, Adam with learning rate ``1e-4``.

    Example
    -------
    >>> config = LocalTrainingConfig(batch_size=8, learning_rate=1e-3)
    >>> config.local_epochs, config.optimizer
    (1, 'adam')
    """

    batch_size: int = 8
    local_epochs: int = 1
    learning_rate: float = 1e-4
    optimizer: str = "adam"
    max_batches_per_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.max_batches_per_epoch is not None and self.max_batches_per_epoch < 1:
            raise ValueError("max_batches_per_epoch must be positive when given")


class FederatedClient:
    """One (virtual) client of the federation.

    Parameters
    ----------
    client_id:
        Stable identifier of the client within the federation.
    dataset:
        The client's local dataset.  It can also be supplied lazily through
        *dataset_factory* so that federations with thousands of clients do not
        materialise every client's samples up front (only selected clients
        ever generate data).
    num_classes:
        Label-space size ``C``.
    cache:
        Optional shared :class:`repro.data.cohort.DatasetCache`.  When given
        (and the dataset is lazy), materialised data lives in the bounded
        LRU pool keyed by ``client_id`` instead of being pinned on the
        client forever — repeatedly-selected clients hit the cache while a
        federation of millions keeps bounded memory.

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.dataset import ArrayDataset
    >>> data = ArrayDataset(np.zeros((8, 4)), np.zeros(8, dtype=int),
    ...                     num_classes=2)
    >>> client = FederatedClient(client_id=0, num_classes=2, dataset=data)
    >>> client.num_samples, client.label_distribution().tolist()
    (8, [1.0, 0.0])
    """

    def __init__(self, client_id: int, num_classes: int,
                 dataset: Optional[ArrayDataset] = None,
                 dataset_factory: Optional[Callable[[], ArrayDataset]] = None,
                 seed: Optional[int] = None,
                 cache: Optional[DatasetCache] = None):
        if dataset is None and dataset_factory is None:
            raise ValueError("provide either dataset or dataset_factory")
        self.client_id = client_id
        self.num_classes = num_classes
        self._dataset = dataset
        self._dataset_factory = dataset_factory
        self._cache = cache
        self.seed = seed
        self.rounds_participated = 0

    # -- data access -----------------------------------------------------------

    @property
    def dataset(self) -> ArrayDataset:
        """The client's local dataset (materialised lazily, pooled when cached)."""
        if self._dataset is not None:
            return self._dataset
        assert self._dataset_factory is not None
        if self._cache is not None:
            return self._cache.get(self.client_id, self._dataset_factory)
        self._dataset = self._dataset_factory()
        return self._dataset

    @property
    def num_samples(self) -> int:
        """Number of local samples (``N_VC`` under the FedVC convention)."""
        return len(self.dataset)

    def cohort_slot(self) -> tuple[tuple[int, int], ArrayDataset]:
        """A ``(key, dataset)`` pair for round-persistent cohort stacking.

        The key is stable exactly as long as the materialised dataset object
        is — memoised on the client, or resident in the shared
        :class:`~repro.data.cohort.DatasetCache` — so a
        :class:`~repro.data.cohort.CohortBuffer` slot holding it can skip the
        restack copy on the next round.  Cache eviction (or an uncached lazy
        factory) yields a fresh object and therefore a fresh key, forcing the
        copy; data is regenerated deterministically, so either way the slot
        contents are correct.
        """
        dataset = self.dataset
        return (self.client_id, id(dataset)), dataset

    def label_distribution(self) -> np.ndarray:
        """The plaintext label distribution ``p_l`` of this client's data."""
        return label_distribution(self.dataset.y, self.num_classes)

    def label_counts(self) -> np.ndarray:
        """Per-class sample counts of this client's data."""
        return self.label_distribution() * self.num_samples

    # -- local training -----------------------------------------------------------

    def local_train(self, model: Module, config: LocalTrainingConfig,
                    round_index: int = 0) -> dict[str, np.ndarray]:
        """Train *model* on the local dataset and return the updated state dict.

        The caller passes a model already loaded with the current global
        weights; this method mutates that model instance (the caller owns it,
        typically a per-client clone) and returns its state dict for
        aggregation.
        """
        loss_fn = CrossEntropyLoss()
        if config.optimizer == "adam":
            optimizer = Adam(model, lr=config.learning_rate)
        else:
            optimizer = SGD(model, lr=config.learning_rate)
        seed = None if self.seed is None else self.seed + 7919 * round_index
        loader = DataLoader(self.dataset, batch_size=config.batch_size, shuffle=True, seed=seed)
        model.train()
        for _ in range(config.local_epochs):
            for batch_index, (xb, yb) in enumerate(loader):
                if (config.max_batches_per_epoch is not None
                        and batch_index >= config.max_batches_per_epoch):
                    break
                logits = model(xb)
                _, grad = loss_fn(logits, yb)
                optimizer.zero_grad()
                model.backward(grad)
                optimizer.step()
        self.rounds_participated += 1
        return model.state_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "materialised" if self._dataset is not None else "lazy"
        return f"FederatedClient(id={self.client_id}, data={status})"
