"""The encrypted registration / selection protocol (the HE side of Dubhe).

Roles, matching Figure 3/4 of the paper:

* **clients** hold plaintext label distributions, fill registries locally,
  and encrypt everything they transmit with the round public key;
* the **server** only ever touches ciphertexts: it sums the encrypted
  registries (or encrypted distributions during multi-time selection) and
  forwards aggregates — it never holds the private key;
* the **agent** (a randomly chosen client) generates the round key-pair,
  dispatches it to clients, and performs decryption duties on aggregates.

The protocol classes below also meter every byte and message they move so
the §6.4 overhead study reads its numbers from the same code path the
selection uses.

Million-client scale
--------------------
Two orthogonal knobs push the round to large N (see ``docs/scaling.md``):

* ``aggregation="tree"`` folds received ciphertexts through a fixed-arity
  merge tree (:class:`~repro.crypto.packing.StreamingTreeAggregator`), so the
  longest chain of dependent Paillier additions is O(log N) instead of
  N − 1 — bit-identical ciphertexts, since Paillier addition is associative
  and commutative;
* :meth:`SecureRegistrationRound.run_stream` consumes client distributions
  in chunks, registering / encrypting / folding one batch at a time and
  discarding each batch's registries before the next, so peak memory is
  O(batch), never O(N).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..crypto.batch import AnyEncryptedVector, BatchCryptoExecutor, encrypt_one
from ..crypto.encoding import DEFAULT_BASE, DEFAULT_PRECISION
from ..crypto.keyagent import KeyAgent
from ..crypto.packing import (DEFAULT_MAX_WEIGHT, PackingScheme,
                              StreamingTreeAggregator)
from ..crypto.paillier import NoisePool, PaillierPublicKey
from ..crypto.vector import plaintext_vector_bytes
from .config import DubheConfig, resolve_aggregation_mode
from .registry import BatchRegistration, RegistrationResult, RegistryCodebook

__all__ = [
    "ProtocolStats",
    "SecureAggregationServer",
    "SecureClient",
    "SecureRegistrationRound",
    "SecureDistributionAggregation",
    "StreamedRegistration",
    "iter_distribution_batches",
]


@dataclass
class ProtocolStats:
    """Bytes, messages and wall-time spent by one protocol execution.

    Example
    -------
    >>> a = ProtocolStats(messages=2, plaintext_bytes=10, ciphertext_bytes=40)
    >>> b = a.merged_with(ProtocolStats(messages=1))
    >>> (b.messages, b.expansion_factor)
    (3, 4.0)
    """

    messages: int = 0
    plaintext_bytes: int = 0
    ciphertext_bytes: int = 0
    encrypt_seconds: float = 0.0
    decrypt_seconds: float = 0.0
    #: Offline cost of pre-generating ``r^n mod n²`` noise; kept separate
    #: from ``encrypt_seconds`` because it can run ahead of the round.
    noise_precompute_seconds: float = 0.0

    def merged_with(self, other: "ProtocolStats") -> "ProtocolStats":
        """A new :class:`ProtocolStats` holding the field-wise sums."""
        return ProtocolStats(
            messages=self.messages + other.messages,
            plaintext_bytes=self.plaintext_bytes + other.plaintext_bytes,
            ciphertext_bytes=self.ciphertext_bytes + other.ciphertext_bytes,
            encrypt_seconds=self.encrypt_seconds + other.encrypt_seconds,
            decrypt_seconds=self.decrypt_seconds + other.decrypt_seconds,
            noise_precompute_seconds=(self.noise_precompute_seconds
                                      + other.noise_precompute_seconds),
        )

    @property
    def expansion_factor(self) -> float:
        """Ciphertext size relative to plaintext size."""
        if self.plaintext_bytes == 0:
            return 0.0
        return self.ciphertext_bytes / self.plaintext_bytes


class SecureAggregationServer:
    """The honest-but-curious server: aggregates ciphertexts, nothing else.

    The class deliberately has no attribute that could hold a private key and
    no decryption method — tests assert this structural property.

    Aggregation is *streaming* in both modes, so server memory never grows
    with N: ``aggregation="flat"`` (default) folds each arrival into one
    running sum (O(1) state, fold depth N − 1); ``aggregation="tree"`` keeps
    O(log N) partial sums in a :class:`~repro.crypto.packing.StreamingTreeAggregator`
    so the longest chain of dependent additions — :attr:`fold_depth` — is
    O(log N).  The two modes produce bit-identical ciphertexts (Paillier
    addition is associative and commutative); the tree only matters for
    latency and pipelining at million-client scale.

    Example
    -------
    >>> from repro.crypto.paillier import generate_keypair
    >>> from repro.crypto.vector import EncryptedVector
    >>> pk = generate_keypair(key_size=64).public_key
    >>> server = SecureAggregationServer(pk, aggregation="tree")
    >>> server.receive(EncryptedVector.encrypt(pk, [1.0, 0.0]))
    >>> server.receive(EncryptedVector.encrypt(pk, [0.0, 1.0]))
    >>> (server.received_count, server.fold_depth)
    (2, 1)
    """

    def __init__(self, public_key: PaillierPublicKey, aggregation: str = "flat",
                 arity: int = 2):
        self.public_key = public_key
        self.aggregation = resolve_aggregation_mode(aggregation)
        self._tree: Optional[StreamingTreeAggregator] = (
            StreamingTreeAggregator(arity=arity) if self.aggregation == "tree"
            else None
        )
        self._aggregate: Optional[AnyEncryptedVector] = None
        self._count = 0
        self.stats = ProtocolStats()

    def receive(self, ciphertext: AnyEncryptedVector) -> None:
        """Accept one client's encrypted vector and fold it into the sum."""
        if ciphertext.public_key != self.public_key:
            raise ValueError("ciphertext was produced under a different round key")
        if self._tree is not None:
            self._tree.push(ciphertext)
        elif self._aggregate is None:
            # copy so in-place accumulation never mutates the sender's object
            self._aggregate = ciphertext.copy()
        else:
            self._aggregate.add_(ciphertext)
        self._count += 1
        self.stats.messages += 1
        self.stats.ciphertext_bytes += ciphertext.nbytes()

    def aggregate(self) -> AnyEncryptedVector:
        """The homomorphic sum of every received vector (still encrypted).

        Returns a copy, so callers can keep (or mutate) the result while the
        server continues to fold in late arrivals.
        """
        if self._count == 0:
            raise ValueError("no ciphertexts received")
        if self._tree is not None:
            return self._tree.combined()
        return self._aggregate.copy()

    @property
    def fold_depth(self) -> int:
        """Longest chain of dependent additions behind :meth:`aggregate`.

        ``N − 1`` for the flat fold, O(log N) for the tree — the scale suite
        asserts both.
        """
        if self._tree is not None:
            return self._tree.depth
        return max(0, self._count - 1)

    @property
    def received_count(self) -> int:
        """How many client ciphertexts have been folded in."""
        return self._count

    def reset(self) -> None:
        """Drop the running aggregate and start a fresh round."""
        if self._tree is not None:
            self._tree.reset()
        self._aggregate = None
        self._count = 0


class SecureClient:
    """A client's view of the secure protocol: encrypt before transmitting.

    Parameters
    ----------
    packed:
        When ``True`` the client transmits BatchCrypt-style packed
        ciphertexts (``⌈l/slots⌉`` ciphertexts per vector) instead of one
        ciphertext per component.
    max_weight:
        Packing headroom: how many clients' vectors the server may sum into
        the packed ciphertext.  Required when *packed*.
    noise:
        Optional :class:`NoisePool` of precomputed ``r^n mod n²`` terms.

    Example
    -------
    >>> import numpy as np
    >>> from repro.crypto.paillier import generate_keypair
    >>> pk = generate_keypair(key_size=64).public_key
    >>> client = SecureClient(0, np.array([0.8, 0.2]))
    >>> ciphertext = client.encrypted_distribution(pk)
    >>> client.stats.messages
    1
    """

    def __init__(self, client_id: int, distribution: np.ndarray,
                 packed: bool = False, max_weight: Optional[int] = None,
                 noise: Optional[NoisePool] = None):
        self.client_id = client_id
        self.distribution = np.asarray(distribution, dtype=float)
        self.registration: Optional[RegistrationResult] = None
        self.packed = packed
        self.max_weight = max_weight
        self.noise = noise
        self.stats = ProtocolStats()

    def register(self, codebook: RegistryCodebook) -> RegistrationResult:
        """Run Algorithm 1 locally (plaintext never leaves the client)."""
        self.registration = codebook.register(self.distribution)
        return self.registration

    def record_transmission(self, values: np.ndarray,
                            ciphertext: AnyEncryptedVector,
                            encrypt_seconds: float) -> None:
        """Account for one transmitted vector (used by batched encryption)."""
        self.stats.encrypt_seconds += encrypt_seconds
        self.stats.messages += 1
        self.stats.plaintext_bytes += plaintext_vector_bytes(values)
        self.stats.ciphertext_bytes += ciphertext.nbytes()

    def _encrypt(self, values: np.ndarray,
                 public_key: PaillierPublicKey) -> AnyEncryptedVector:
        if self.packed and self.max_weight is None:
            raise ValueError("packed clients need max_weight (the n_clients headroom)")
        start = perf_counter()
        # the same worker body the batch executor runs, so the client-side
        # and round-level encryption paths cannot drift apart
        ciphertext = encrypt_one(
            public_key, values, packed=self.packed,
            max_weight=(self.max_weight if self.max_weight is not None
                        else DEFAULT_MAX_WEIGHT),
            base=DEFAULT_BASE, precision=DEFAULT_PRECISION, max_abs_value=1.0,
            noise=self.noise, rng=None)
        self.record_transmission(values, ciphertext, perf_counter() - start)
        return ciphertext

    def encrypted_registry(self, public_key: PaillierPublicKey) -> AnyEncryptedVector:
        """The encrypted registry this client sends to the server."""
        if self.registration is None:
            raise RuntimeError("client has not registered yet")
        return self._encrypt(self.registration.registry, public_key)

    def encrypted_distribution(self, public_key: PaillierPublicKey) -> AnyEncryptedVector:
        """The encrypted label distribution sent during multi-time selection."""
        return self._encrypt(self.distribution, public_key)


def _noise_terms_needed(public_key: PaillierPublicKey, vector_length: int,
                        n_clients: int, packed: bool, max_weight: int) -> int:
    """How many ``r^n`` terms a round of *n_clients* encryptions consumes."""
    if not packed:
        return vector_length * n_clients
    scheme = PackingScheme(public_key, vector_length, max_weight=max_weight)
    return scheme.num_ciphertexts * n_clients


def _encrypt_and_deliver(public_key: PaillierPublicKey,
                         clients: Sequence[SecureClient],
                         vectors: Sequence[np.ndarray],
                         server: "SecureAggregationServer",
                         executor: BatchCryptoExecutor, packed: bool,
                         max_weight: int,
                         noise: Optional[NoisePool]) -> None:
    """Encrypt every client's vector in one batch and stream it to the server.

    Shared by registration and distribution aggregation so the stats
    attribution (wall time split evenly across clients) and delivery order
    cannot drift between the two protocols.
    """
    start = perf_counter()
    encrypted = executor.encrypt_many(public_key, vectors, packed=packed,
                                      max_weight=max_weight, noise=noise)
    encrypt_seconds = perf_counter() - start
    for client, values, ciphertext in zip(clients, vectors, encrypted):
        client.record_transmission(values, ciphertext,
                                   encrypt_seconds / len(clients))
        server.receive(ciphertext)


@dataclass(frozen=True)
class StreamedRegistration:
    """Everything a streaming registration round produces.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.registry import BatchRegistration
    >>> batch = BatchRegistration(np.array([1]), np.array([0]), 3)
    >>> s = StreamedRegistration(np.array([1.0, 0.0, 0.0]), batch,
    ...                          ProtocolStats(), 0, 1)
    >>> s.n_clients
    1
    """

    #: The decrypted overall registry ``R_A`` — bit-identical to ``run()``'s.
    overall: np.ndarray
    #: Per-client blocks/indices as compact int64 arrays (16 bytes/client).
    registration: BatchRegistration
    #: Aggregate overhead of every role, same accounting as ``run()``.
    stats: ProtocolStats
    #: Longest chain of dependent ciphertext additions performed.
    fold_depth: int
    #: How many client chunks the stream was consumed in.
    num_batches: int

    @property
    def n_clients(self) -> int:
        """Total number of clients registered across all batches."""
        return len(self.registration)


def iter_distribution_batches(distributions: np.ndarray,
                              batch_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous row chunks of a 2-D distribution array.

    The canonical way to feed an in-memory population to
    :meth:`SecureRegistrationRound.run_stream`; real deployments would yield
    chunks as cohorts arrive over the transport instead.

    Example
    -------
    >>> import numpy as np
    >>> [len(b) for b in iter_distribution_batches(np.zeros((5, 2)), 2)]
    [2, 2, 1]
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    distributions = np.asarray(distributions)
    if distributions.ndim != 2:
        raise ValueError("distributions must be 2-D")
    for start in range(0, distributions.shape[0], batch_size):
        yield distributions[start:start + batch_size]


@dataclass
class SecureRegistrationRound:
    """One full registration round: keygen → encrypt → aggregate → decrypt.

    Returns the overall registry exactly as each client would decrypt it,
    plus the overhead statistics of every role.

    Parameters
    ----------
    packed:
        Transmit packed ciphertexts (``⌈l/slots⌉`` per registry, headroom for
        all N clients' additions).  Packed and per-component rounds decrypt
        to bit-identical overall registries.
    executor_mode, max_workers:
        Back-end for encrypting all N clients' registries
        (``"sequential"`` / ``"thread"`` / ``"process"``, mirroring
        :class:`~repro.federated.executor.LocalUpdateExecutor`).  Only
        ``"process"`` parallelises the modular exponentiations in CPython
        (big-int ``pow`` holds the GIL); see :mod:`repro.crypto.batch`.
    precompute_noise:
        Pre-generate every ``r^n mod n²`` term in a :class:`NoisePool`
        before the timed encryption phase (amortised/offline noise).
    aggregation, arity:
        Server fold strategy (:data:`repro.core.config.AGGREGATION_MODES`):
        ``"flat"`` is the original running sum, ``"tree"`` bounds the fold
        depth to O(log N) with *arity*-way merges — bit-identical results.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.config import DubheConfig
    >>> config = DubheConfig(num_classes=2, reference_set=(1, 2),
    ...                      thresholds={1: 0.6, 2: 0.0}, key_size=64)
    >>> rng = np.random.default_rng(0)
    >>> population = rng.dirichlet((1.0, 1.0), size=8)
    >>> overall, registrations, stats = SecureRegistrationRound(config).run(
    ...     population)
    >>> streamed = SecureRegistrationRound(config).run_stream(population)
    >>> bool((streamed.overall == overall).all())
    True
    """

    config: DubheConfig
    agent: Optional[KeyAgent] = None
    packed: bool = False
    executor_mode: str = "sequential"
    max_workers: Optional[int] = None
    precompute_noise: bool = False
    aggregation: str = "flat"
    arity: int = 2
    _stats: ProtocolStats = field(default_factory=ProtocolStats)

    def __post_init__(self) -> None:
        resolve_aggregation_mode(self.aggregation)
        if self.arity < 2:
            raise ValueError("tree arity must be at least 2")

    def run(self, client_distributions: Sequence[np.ndarray] | np.ndarray,
            ) -> tuple[np.ndarray, list[RegistrationResult], ProtocolStats]:
        """Execute the protocol for every client distribution given."""
        distributions = np.asarray(client_distributions, dtype=float)
        if distributions.ndim != 2:
            raise ValueError("client_distributions must be 2-D")
        if distributions.shape[0] == 0:
            raise ValueError("client_distributions is empty")
        codebook = RegistryCodebook(self.config)
        agent = self.agent or KeyAgent(key_size=self.config.key_size)
        keypair = agent.new_round()
        n_clients = distributions.shape[0]
        agent.dispatch_public_key(n_clients)
        agent.dispatch_private_key(n_clients)

        clients = [SecureClient(k, distributions[k]) for k in range(n_clients)]
        server = SecureAggregationServer(keypair.public_key,
                                         aggregation=self.aggregation,
                                         arity=self.arity)
        registrations = [client.register(codebook) for client in clients]
        registries = [registration.registry for registration in registrations]

        noise: Optional[NoisePool] = None
        noise_seconds = 0.0
        if self.precompute_noise:
            start = perf_counter()
            noise = NoisePool(keypair.public_key)
            noise.refill(_noise_terms_needed(
                keypair.public_key, len(registries[0]), n_clients,
                self.packed, max_weight=n_clients))
            noise_seconds = perf_counter() - start

        executor = BatchCryptoExecutor(self.executor_mode, self.max_workers)
        _encrypt_and_deliver(keypair.public_key, clients, registries, server,
                             executor, self.packed, max_weight=n_clients,
                             noise=noise)
        encrypted_total = server.aggregate()

        # every client can decrypt the synchronized aggregate with sk_t; we
        # decrypt once (the result is identical for every client)
        start = perf_counter()
        overall = encrypted_total.decrypt(keypair.private_key)
        decrypt_seconds = perf_counter() - start

        stats = ProtocolStats()
        for client in clients:
            stats = stats.merged_with(client.stats)
        stats = stats.merged_with(server.stats)
        stats.decrypt_seconds += decrypt_seconds
        stats.noise_precompute_seconds += noise_seconds
        # synchronising the aggregate back to N clients is N more messages
        stats.messages += n_clients
        stats.ciphertext_bytes += encrypted_total.nbytes() * n_clients
        self._stats = stats
        return overall, registrations, stats

    def run_stream(self,
                   batches: np.ndarray | Iterable[np.ndarray],
                   total_clients: Optional[int] = None) -> StreamedRegistration:
        """Execute the protocol over a *stream* of distribution chunks.

        The scaled counterpart of :meth:`run`: each chunk is registered
        (vectorised Algorithm 1), encrypted and folded into the server's
        aggregate, then discarded — peak memory is O(batch · codebook length)
        plus 16 bytes per client for the returned index arrays, never
        O(N · codebook length).  The decrypted overall registry is
        bit-identical to :meth:`run`'s on the same clients (asserted by the
        streaming equivalence suite), and the packed path uses the integer
        count-packing scheme (:meth:`~repro.crypto.packing.PackingScheme.for_counts`),
        which needs ~2.3× fewer ciphertexts per registry than the float
        default.

        Parameters
        ----------
        batches:
            Either a 2-D ``(N, C)`` array — chunked internally by
            ``config.registration_batch_size`` — or an iterable of 2-D
            chunks (e.g. cohorts arriving over the transport).
        total_clients:
            Upper bound on the stream length.  Required for the packed path
            when *batches* is an iterable: it fixes the packing headroom
            (``max_weight``) before the first ciphertext is built.  The
            stream overrunning it is an error.
        """
        codebook = RegistryCodebook(self.config)
        if isinstance(batches, np.ndarray):
            if batches.ndim != 2:
                raise ValueError("client_distributions must be 2-D")
            if total_clients is None:
                total_clients = int(batches.shape[0])
            batches = iter_distribution_batches(
                batches, self.config.registration_batch_size)
        if total_clients is not None and total_clients < 1:
            raise ValueError("total_clients must be positive")
        if self.packed and total_clients is None:
            raise ValueError(
                "total_clients is required for packed streaming: it fixes the "
                "packing headroom (max_weight) before the first batch"
            )
        agent = self.agent or KeyAgent(key_size=self.config.key_size)
        keypair = agent.new_round()
        server = SecureAggregationServer(keypair.public_key,
                                         aggregation=self.aggregation,
                                         arity=self.arity)
        executor = BatchCryptoExecutor(self.executor_mode, self.max_workers)
        scheme = (PackingScheme.for_counts(keypair.public_key, codebook.length,
                                           max_weight=total_clients)
                  if self.packed else None)
        noise = NoisePool(keypair.public_key) if self.precompute_noise else None
        stats = ProtocolStats()
        blocks_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        n_seen = 0
        num_batches = 0
        for chunk in batches:
            arr = np.ascontiguousarray(chunk, dtype=np.float64)
            if arr.ndim != 2 or arr.shape[1] != self.config.num_classes:
                raise ValueError(
                    f"every batch must have shape (b, {self.config.num_classes}),"
                    f" got {arr.shape}"
                )
            if arr.shape[0] == 0:
                continue
            n_seen += arr.shape[0]
            if total_clients is not None and n_seen > total_clients:
                raise ValueError(
                    f"stream delivered more than total_clients={total_clients} "
                    "distributions"
                )
            num_batches += 1
            reg = codebook.register_batch(arr)
            blocks_parts.append(reg.blocks)
            index_parts.append(reg.indices)
            b = arr.shape[0]
            # this batch's one-hot registries; freed before the next batch
            registries = np.zeros((b, codebook.length))
            registries[np.arange(b), reg.indices] = 1.0
            if noise is not None:
                start = perf_counter()
                terms = (scheme.num_ciphertexts * b if scheme is not None
                         else codebook.length * b)
                noise.refill(terms)
                stats.noise_precompute_seconds += perf_counter() - start
            start = perf_counter()
            encrypted = executor.encrypt_many(
                keypair.public_key, registries, packed=self.packed,
                max_weight=(total_clients if total_clients is not None
                            else DEFAULT_MAX_WEIGHT),
                base=(2 if self.packed else DEFAULT_BASE),
                precision=(0 if self.packed else DEFAULT_PRECISION),
                noise=noise)
            stats.encrypt_seconds += perf_counter() - start
            for values, ciphertext in zip(registries, encrypted):
                # client-side accounting, mirroring record_transmission
                stats.messages += 1
                stats.plaintext_bytes += plaintext_vector_bytes(values)
                stats.ciphertext_bytes += ciphertext.nbytes()
                server.receive(ciphertext)
        if n_seen == 0:
            raise ValueError("stream contained no client distributions")
        agent.dispatch_public_key(n_seen)
        agent.dispatch_private_key(n_seen)
        encrypted_total = server.aggregate()
        fold_depth = server.fold_depth
        start = perf_counter()
        overall = encrypted_total.decrypt(keypair.private_key)
        stats.decrypt_seconds += perf_counter() - start
        stats = stats.merged_with(server.stats)
        # synchronising the aggregate back to N clients is N more messages
        stats.messages += n_seen
        stats.ciphertext_bytes += encrypted_total.nbytes() * n_seen
        self._stats = stats
        registration = BatchRegistration(
            blocks=np.concatenate(blocks_parts),
            indices=np.concatenate(index_parts),
            length=codebook.length,
        )
        return StreamedRegistration(overall=overall, registration=registration,
                                    stats=stats, fold_depth=fold_depth,
                                    num_batches=num_batches)


class SecureDistributionAggregation:
    """The multi-time-selection data path: encrypted ``p_l`` aggregation.

    The selected clients of a tentative try encrypt their label
    distributions; the server sums the ciphertexts; the agent decrypts the
    aggregate and scores ``||p_o − p_u||₁``.  Population distributions of
    individual clients are never visible to the server.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.config import DubheConfig
    >>> config = DubheConfig(num_classes=2, reference_set=(1, 2),
    ...                      thresholds={1: 0.6, 2: 0.0}, key_size=64)
    >>> aggregation = SecureDistributionAggregation(config)
    >>> distributions = np.array([[0.9, 0.1], [0.1, 0.9]])
    >>> round(aggregation.score_selection(distributions, [0, 1]), 6)
    0.0
    """

    def __init__(self, config: DubheConfig, agent: Optional[KeyAgent] = None,
                 packed: bool = False, executor_mode: str = "sequential",
                 max_workers: Optional[int] = None,
                 precompute_noise: bool = False):
        self.config = config
        self.agent = agent or KeyAgent(key_size=config.key_size)
        self.keypair = self.agent.new_round()
        self.packed = packed
        self.executor = BatchCryptoExecutor(executor_mode, max_workers)
        self.precompute_noise = precompute_noise
        self.noise: Optional[NoisePool] = (
            NoisePool(self.keypair.public_key) if precompute_noise else None
        )
        self.stats = ProtocolStats()

    def score_selection(self, client_distributions: np.ndarray,
                        selected: Sequence[int]) -> float:
        """Return ``||p_o − p_u||₁`` for *selected*, computed under encryption."""
        distributions = np.asarray(client_distributions, dtype=float)
        selected = list(selected)
        if not selected:
            raise ValueError("cannot score an empty selection")
        server = SecureAggregationServer(self.keypair.public_key)
        clients = [SecureClient(k, distributions[k]) for k in selected]

        noise_seconds = 0.0
        if self.noise is not None:
            start = perf_counter()
            self.noise.refill(_noise_terms_needed(
                self.keypair.public_key, distributions.shape[1], len(selected),
                self.packed, max_weight=len(selected)))
            noise_seconds = perf_counter() - start

        vectors = [distributions[k] for k in selected]
        _encrypt_and_deliver(self.keypair.public_key, clients, vectors, server,
                             self.executor, self.packed,
                             max_weight=len(selected), noise=self.noise)
        aggregate = server.aggregate()
        uniform = np.full(self.config.num_classes, 1.0 / self.config.num_classes)
        score = self.agent.score_population(aggregate, uniform)
        round_stats = ProtocolStats()
        for client in clients:
            round_stats = round_stats.merged_with(client.stats)
        round_stats = round_stats.merged_with(server.stats)
        round_stats.noise_precompute_seconds += noise_seconds
        self.stats = self.stats.merged_with(round_stats)
        return score
