"""Integration tests: the full Dubhe pipeline across substrates.

These tests exercise the paths the paper's experiments rely on:
secure registration feeding a Dubhe selector, all three selectors plugged
into the federated simulation, and the headline qualitative claim (Dubhe and
greedy beat random on skewed data in terms of population bias).
"""

import random

import numpy as np
import pytest

from repro import quick_federation
from repro.core.config import DubheConfig
from repro.core.parameter_search import search_thresholds
from repro.core.probability import participation_probabilities
from repro.core.registry import RegistryCodebook
from repro.core.secure import SecureRegistrationRound
from repro.core.selectors import DubheSelector, GreedySelector, RandomSelector
from repro.crypto.keyagent import KeyAgent
from repro.data.synthetic import make_uniform_test_set
from repro.federated.client import LocalTrainingConfig
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.nn.models import MLP


@pytest.fixture(scope="module")
def federation():
    partition, generator = quick_federation(
        n_clients=60, samples_per_client=24, rho=10.0, emd_avg=1.5, seed=0
    )
    return partition, generator


def settled_config(k=10, h=1, key_size=128):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                       participants_per_round=k, tentative_selections=h,
                       key_size=key_size)


class TestSecureSelectionPipeline:
    def test_probabilities_from_encrypted_registry_match_plaintext(self, federation):
        partition, _ = federation
        distributions = partition.client_distributions()[:15]
        config = settled_config(k=5)
        agent = KeyAgent(key_size=128, rng=random.Random(0))
        overall, registrations, _ = SecureRegistrationRound(config, agent=agent).run(distributions)
        codebook = RegistryCodebook(config)
        secure_probs = participation_probabilities(codebook, registrations,
                                                   np.round(overall), 5)
        plain_overall = codebook.aggregate(registrations)
        plain_probs = participation_probabilities(codebook, registrations, plain_overall, 5)
        np.testing.assert_allclose(secure_probs, plain_probs, atol=1e-9)


class TestSelectorsInsideSimulation:
    @pytest.mark.parametrize("selector_name", ["random", "greedy", "dubhe"])
    def test_each_selector_drives_training(self, federation, selector_name):
        partition, generator = federation
        distributions = partition.client_distributions()
        if selector_name == "random":
            selector = RandomSelector(distributions, 8, seed=0)
        elif selector_name == "greedy":
            selector = GreedySelector(distributions, 8, seed=0)
        else:
            selector = DubheSelector(distributions, settled_config(k=8), seed=0)
        test_set = make_uniform_test_set(generator, samples_per_class=4, seed=1)
        sim = FederatedSimulation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(16,), seed=11),
            selector=selector,
            test_set=test_set,
            config=FederatedConfig(rounds=2, eval_every=1,
                                   local=LocalTrainingConfig(learning_rate=1e-3), seed=0),
        )
        history = sim.run()
        assert len(history) == 2
        assert history.final_accuracy() >= 0.0
        assert all(len(r.selected_clients) == 8 for r in history.records)

    def test_dubhe_and_greedy_reduce_round_bias_vs_random(self, federation):
        partition, _ = federation
        distributions = partition.client_distributions()
        random_selector = RandomSelector(distributions, 10, seed=3)
        greedy_selector = GreedySelector(distributions, 10, seed=3)
        dubhe_selector = DubheSelector(distributions, settled_config(k=10, h=5), seed=3)
        rounds = 25
        rand_bias = np.mean([random_selector.bias_of(random_selector.select(r))
                             for r in range(rounds)])
        greedy_bias = np.mean([greedy_selector.bias_of(greedy_selector.select(r))
                               for r in range(rounds)])
        dubhe_bias = np.mean([dubhe_selector.bias_of(dubhe_selector.select(r))
                              for r in range(rounds)])
        # the paper's qualitative ordering: greedy <= dubhe < random
        assert dubhe_bias < rand_bias
        assert greedy_bias < rand_bias
        assert greedy_bias <= dubhe_bias + 0.05

    def test_parameter_search_feeds_simulation(self, federation):
        partition, generator = federation
        distributions = partition.client_distributions()
        unsettled = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                                participants_per_round=8, tentative_selections=3, seed=0)
        result = search_thresholds(distributions, unsettled, sigma_grid=(0.1, 0.5, 0.9), seed=0)
        selector = DubheSelector(distributions, result.config, seed=0)
        selected = selector.select(0)
        assert len(selected) == 8
