"""Scenario runs reported in the paper's own metrics.

A robustness claim is only worth something when it is measured with the
quantities the paper itself uses, so a :class:`ScenarioReport` reduces a
faulted run to per-round population EMD ``||p_o − p_u||₁`` (planned *and*
actually-aggregated cohort), test accuracy, the failure census by cause, and
how many rounds fell below the participation threshold.
:func:`compare_selectors` runs the same scenario under several selection
strategies (Dubhe vs greedy vs random, typically), which is exactly the
paper's Figure 6/9 comparison transplanted into a faulted world.

This module only reads the simulation's public surface
(:class:`~repro.federated.TrainingHistory` records and the partition), so it
works with any simulation-like object; heavyweight imports happen lazily
inside the functions to keep :mod:`repro.scenarios` import-light.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

__all__ = ["ScenarioReport", "compare_selectors", "run_scenario"]


@dataclass(frozen=True)
class ScenarioReport:
    """Per-round robustness metrics of one scenario run.

    ``planned_biases``/``actual_biases`` are the population EMD of the
    selector's cohort and of the survivors actually aggregated
    (``NaN`` where a round aggregated nobody); ``accuracies`` has ``NaN``
    where evaluation was skipped.  ``baseline_bias`` is Figure 9's
    full-participation "Base Line" for the same federation.

    Example
    -------
    >>> report = ScenarioReport(
    ...     name="demo", rounds=2,
    ...     planned_biases=(0.4, 0.5), actual_biases=(0.45, 0.5),
    ...     accuracies=(0.6, 0.7), failure_counts={"dropout": 1},
    ...     skipped_rounds=0, baseline_bias=0.3)
    >>> report.final_accuracy()
    0.7
    """

    name: str
    rounds: int
    planned_biases: tuple[float, ...]
    actual_biases: tuple[float, ...]
    accuracies: tuple[float, ...]
    failure_counts: Mapping[str, int]
    skipped_rounds: int
    baseline_bias: float
    fallback_reasons: tuple[str, ...] = ()

    def total_failures(self) -> int:
        """How many client-round faults the scenario injected in total.

        Example
        -------
        >>> ScenarioReport("d", 1, (0.1,), (0.1,), (0.5,),
        ...                {"offline": 2, "dropout": 1}, 0, 0.0).total_failures()
        3
        """
        return int(sum(self.failure_counts.values()))

    def final_accuracy(self) -> float:
        """Accuracy of the last evaluated round (NaN-skipping)."""
        accuracy = np.asarray(self.accuracies, dtype=float)
        valid = accuracy[~np.isnan(accuracy)]
        if valid.size == 0:
            raise ValueError("no evaluated rounds in this report")
        return float(valid[-1])

    def mean_actual_bias(self) -> float:
        """Mean survivor-population EMD over rounds that aggregated anyone."""
        biases = np.asarray(self.actual_biases, dtype=float)
        valid = biases[~np.isnan(biases)]
        if valid.size == 0:
            raise ValueError("no aggregated rounds in this report")
        return float(valid.mean())

    def summary(self) -> dict:
        """One row of the robustness benchmark table.

        Example
        -------
        >>> row = ScenarioReport("d", 1, (0.1,), (0.1,), (0.5,), {}, 0,
        ...                      0.3).summary()
        >>> row["rounds"], row["skipped_rounds"]
        (1, 0)
        """
        return {
            "name": self.name,
            "rounds": self.rounds,
            "final_accuracy": self.final_accuracy(),
            "mean_planned_bias": float(np.mean(self.planned_biases)),
            "mean_actual_bias": self.mean_actual_bias(),
            "baseline_bias": self.baseline_bias,
            "failures": dict(self.failure_counts),
            "skipped_rounds": self.skipped_rounds,
        }


def run_scenario(simulation, rounds: Optional[int] = None,
                 name: str = "scenario") -> ScenarioReport:
    """Deprecated spelling of a scenario run — prefer :class:`repro.api.Session`.

    ``Session(config).with_scenario(spec, name=name)...run(rounds)`` produces
    the same :class:`ScenarioReport` (as ``result.report``) through the
    unified entry point; see ``docs/session.md`` for the migration table.
    This wrapper delegates unchanged and emits a :class:`DeprecationWarning`.

    Example
    -------
    >>> # sim = FederatedSimulation(..., config=FederatedConfig(scenario=spec))
    >>> # report = run_scenario(sim, rounds=20, name="churn+dropout")
    >>> # report.summary()["skipped_rounds"]
    """
    warnings.warn(
        "run_scenario is deprecated; drive scenario runs through "
        "repro.api.Session.with_scenario (see docs/session.md for the "
        "migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_scenario_impl(simulation, rounds, name=name)


def _run_scenario_impl(simulation, rounds: Optional[int] = None,
                       name: str = "scenario") -> ScenarioReport:
    """Run a (scenario-configured) simulation and reduce it to a report.

    *simulation* is a :class:`~repro.federated.FederatedSimulation` whose
    config usually carries a :class:`~repro.scenarios.spec.ScenarioSpec`;
    a scenario-free simulation works too and simply reports zero failures.
    The simulation is left open (callers own its lifecycle).  When the
    simulation records to a run ledger (:mod:`repro.ledger`), the report's
    summary and *name* are attached to the recorded run's row.
    """
    from ..analysis.emd import baseline_global_bias  # lazy: avoids import cycle

    history = simulation.run(rounds)
    failure_counts: dict[str, int] = {}
    fallback_reasons: list[str] = []
    skipped = 0
    actual_biases: list[float] = []
    for record in history.records:
        for cause in record.failures.values():
            failure_counts[cause] = failure_counts.get(cause, 0) + 1
        if record.fallback_reason is not None:
            fallback_reasons.append(record.fallback_reason)
        if record.aggregation_skipped:
            skipped += 1
        # None means "no scenario: survivors == planned"; a round that
        # aggregated nobody records NaN there and it flows through
        actual_biases.append(record.population_bias
                             if record.actual_population_bias is None
                             else record.actual_population_bias)
    report = ScenarioReport(
        name=name,
        rounds=len(history),
        planned_biases=tuple(float(b) for b in history.population_biases()),
        actual_biases=tuple(float(b) for b in actual_biases),
        accuracies=tuple(float(a) for a in history.accuracies()),
        failure_counts=failure_counts,
        skipped_rounds=skipped,
        baseline_bias=float(baseline_global_bias(
            simulation.partition.client_distributions())),
        fallback_reasons=tuple(fallback_reasons),
    )
    session = getattr(simulation, "ledger_session", None)
    if session is not None:
        try:
            session.attach_report(report.summary(), name=name)
        except ValueError:
            pass  # nothing evaluated: the run row simply keeps no report
    return report


def compare_selectors(make_simulation: Callable[[str], object],
                      names: Sequence[str] = ("dubhe", "greedy", "random"),
                      rounds: Optional[int] = None,
                      ) -> "dict[str, ScenarioReport]":
    """Benchmark one scenario under several selection strategies.

    *make_simulation* receives a strategy name and returns a fresh
    simulation for it (same federation, same scenario, different selector) —
    mirroring the paper's accuracy-versus-selector comparison under faults.
    Each simulation is closed after its run.

    Example
    -------
    >>> # reports = compare_selectors(build_sim, names=("dubhe", "random"))
    >>> # {n: r.summary()["final_accuracy"] for n, r in reports.items()}
    """
    reports: dict[str, ScenarioReport] = {}
    for selector_name in names:
        simulation = make_simulation(selector_name)
        try:
            reports[selector_name] = _run_scenario_impl(simulation, rounds,
                                                        name=selector_name)
        finally:
            close = getattr(simulation, "close", None)
            if close is not None:
                close()
    return reports
