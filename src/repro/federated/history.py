"""Round-by-round training history of a federated run.

Figures 2, 6 and 8 of the paper plot test accuracy against rounds; Figure 7
reports the *average accuracy over the last 50 rounds*; Figures 2/8 also show
the participated class proportion.  :class:`TrainingHistory` records exactly
those series so every benchmark reads its numbers from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured about one federated round.

    Example
    -------
    >>> import numpy as np
    >>> record = RoundRecord(round_index=0, selected_clients=(3, 1),
    ...                      population_distribution=np.array([0.5, 0.5]),
    ...                      population_bias=0.0, test_accuracy=0.9)
    >>> record.selected_clients
    (3, 1)
    """

    round_index: int
    selected_clients: tuple[int, ...]
    population_distribution: np.ndarray
    population_bias: float            # ||p_o − p_u||₁ of this round's selection
    test_accuracy: Optional[float]    # None when evaluation was skipped this round
    train_loss: Optional[float] = None


@dataclass
class TrainingHistory:
    """Accumulated per-round records plus convenience reductions.

    Example
    -------
    >>> import numpy as np
    >>> history = TrainingHistory()
    >>> history.append(RoundRecord(0, (0, 1), np.array([0.5, 0.5]), 0.0, 0.8))
    >>> len(history), history.accuracies().tolist()
    (1, [0.8])
    """

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add one completed round's record to the history."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series ------------------------------------------------------------------

    def accuracies(self) -> np.ndarray:
        """Test accuracy per evaluated round (NaN where evaluation was skipped)."""
        return np.array(
            [np.nan if r.test_accuracy is None else r.test_accuracy for r in self.records]
        )

    def population_biases(self) -> np.ndarray:
        """``||p_o − p_u||₁`` per round."""
        return np.array([r.population_bias for r in self.records])

    def population_distributions(self) -> np.ndarray:
        """Stacked per-round population distributions, shape ``(rounds, C)``."""
        if not self.records:
            return np.empty((0, 0))
        return np.vstack([r.population_distribution for r in self.records])

    def participation_counts(self, n_clients: int) -> np.ndarray:
        """How many times each client was selected over the run."""
        counts = np.zeros(n_clients, dtype=int)
        for r in self.records:
            for k in r.selected_clients:
                counts[k] += 1
        return counts

    # -- reductions ----------------------------------------------------------------

    def final_accuracy(self) -> float:
        """Accuracy of the last evaluated round."""
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        if valid.size == 0:
            raise ValueError("no evaluated rounds in history")
        return float(valid[-1])

    def tail_average_accuracy(self, window: int = 50) -> float:
        """Average accuracy over the last *window* evaluated rounds (Figure 7)."""
        if window < 1:
            raise ValueError("window must be positive")
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        if valid.size == 0:
            raise ValueError("no evaluated rounds in history")
        return float(valid[-window:].mean())

    def mean_population_bias(self) -> float:
        """Average ``||p_o − p_u||₁`` over all rounds."""
        if not self.records:
            raise ValueError("empty history")
        return float(self.population_biases().mean())

    def average_population_distribution(self) -> np.ndarray:
        """Expectation of the participated class proportion over rounds (Fig. 2/8/10)."""
        dists = self.population_distributions()
        if dists.size == 0:
            raise ValueError("empty history")
        return dists.mean(axis=0)

    def summary(self) -> dict:
        """A compact dictionary used by benchmarks and examples."""
        return {
            "rounds": len(self.records),
            "final_accuracy": self.final_accuracy(),
            "tail_accuracy": self.tail_average_accuracy(min(50, len(self.records))),
            "mean_population_bias": self.mean_population_bias(),
        }
