"""Unit tests of the shared capped, jittered backoff policy.

The regression at the heart of this file: the transport client's original
reconnect loop slept ``backoff * 2**attempt`` with no cap, so a fleet that
outlived a long outage would back off for hours.  :class:`RetryPolicy`
bounds every delay by ``max_backoff`` and jitters it *downward* (subtractive
jitter keeps the cap a true upper bound), deterministically per
``(seed, attempt)``.
"""

import numpy as np
import pytest

from repro.core.retry import RetryPolicy


class TestCap:
    def test_no_delay_ever_exceeds_max_backoff(self):
        policy = RetryPolicy(retries=40, backoff=0.05, max_backoff=2.0)
        delays = list(policy.delays())
        assert len(delays) == policy.retries
        assert all(d <= policy.max_backoff for d in delays)

    def test_uncapped_exponential_regression(self):
        # the old transport/client.py bug: attempt 30 at backoff=0.05 meant
        # a ~54e6-second sleep; the policy keeps the whole schedule bounded
        policy = RetryPolicy(retries=30, backoff=0.05, max_backoff=2.0)
        assert policy.delay(30) <= 2.0
        assert sum(policy.delays()) <= policy.retries * policy.max_backoff

    def test_exponential_growth_until_the_cap(self):
        policy = RetryPolicy(backoff=0.05, max_backoff=1.0, jitter=0.0)
        assert [policy.delay(a) for a in range(7)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0]


class TestJitter:
    def test_jitter_is_subtractive(self):
        policy = RetryPolicy(backoff=0.5, max_backoff=4.0, jitter=0.25, seed=3)
        for attempt in range(policy.attempts):
            base = min(policy.backoff * 2 ** attempt, policy.max_backoff)
            delay = policy.delay(attempt)
            assert base * (1 - policy.jitter) <= delay <= base

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(seed=9)
        b = RetryPolicy(seed=9)
        assert list(a.delays()) == list(b.delays())

    def test_different_seeds_desynchronise(self):
        a = list(RetryPolicy(seed=0, jitter=0.5).delays())
        b = list(RetryPolicy(seed=1, jitter=0.5).delays())
        assert a != b  # a fleet of clients must not retry in lockstep

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.0)
        assert policy.delay(1) == 0.2


class TestValidationAndWiring:
    @pytest.mark.parametrize("kwargs", [
        dict(retries=-1),
        dict(backoff=-0.1),
        dict(max_backoff=0.0),
        dict(jitter=-0.1),
        dict(jitter=1.5),
    ])
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempts_counts_the_first_try(self):
        assert RetryPolicy(retries=5).attempts == 6

    def test_transport_config_builds_the_policy(self):
        from repro.core.config import TransportConfig

        config = TransportConfig(retries=8, backoff=0.05, max_backoff=1.5,
                                 retry_jitter=0.2)
        policy = config.retry_policy(seed=4)
        assert (policy.retries, policy.max_backoff, policy.seed) == (8, 1.5, 4)
        assert all(d <= 1.5 for d in policy.delays())

    def test_transport_config_rejects_bad_retry_knobs(self):
        from repro.core.config import TransportConfig

        with pytest.raises(ValueError):
            TransportConfig(max_backoff=-1.0)
        with pytest.raises(ValueError):
            TransportConfig(retry_jitter=2.0)

    def test_transport_client_reconnects_under_the_policy(self):
        # the client seeds its policy with its own id so a fleet staggers
        from types import SimpleNamespace

        from repro.transport.client import TransportClient

        peers = [
            TransportClient(SimpleNamespace(client_id=cid, num_classes=10,
                                            num_samples=5),
                            lambda: None, "127.0.0.1", 9,
                            retries=20, backoff=0.05, max_backoff=2.0)
            for cid in (0, 1)
        ]
        for peer in peers:
            assert all(d <= 2.0 for d in peer.policy.delays())
        assert (list(peers[0].policy.delays())
                != list(peers[1].policy.delays()))
