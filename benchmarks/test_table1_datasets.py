"""Table 1 — the datasets used in the experiments.

Paper table:

    Dataset          ρ               EMD_avg              N
    MNIST/CIFAR10    10, 5, 2, 1     0.0, 0.5, 1.0, 1.5   1000
    FEMNIST          13.64           0.554                8962

This benchmark regenerates every federation of the table (at the paper's
client counts — building partitions involves no training, so full scale is
cheap) and reports the *achieved* ρ and EMD_avg next to the targets.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table
from repro.data import (
    EMDTargetPartitioner,
    FEMNIST_PAPER_CLIENTS,
    FEMNIST_PAPER_EMD,
    FEMNIST_PAPER_RHO,
    half_normal_class_proportions,
    make_femnist_federation,
)

GROUP1_CLIENTS = 1000
RHO_GRID = (10.0, 5.0, 2.0, 1.0)
EMD_GRID = (0.0, 0.5, 1.0, 1.5)


def paper_scale() -> dict:
    return {"group1": {"n_clients": 1000, "rho": RHO_GRID, "emd": EMD_GRID},
            "femnist": {"n_clients": FEMNIST_PAPER_CLIENTS, "rho": FEMNIST_PAPER_RHO,
                        "emd": FEMNIST_PAPER_EMD}}


@pytest.mark.benchmark(group="table1")
def test_table1_group1_grid(benchmark):
    """The MNIST/CIFAR10 synthetic grid: every (ρ, EMD_avg) combination."""

    def experiment():
        rows = []
        for rho in RHO_GRID:
            global_dist = half_normal_class_proportions(10, rho)
            for emd in EMD_GRID:
                partition = EMDTargetPartitioner(
                    GROUP1_CLIENTS, 128, emd, seed=9
                ).partition(global_dist)
                rows.append({
                    "dataset": f"MNIST/CIFAR10-{rho:g}/{emd:g}",
                    "target_rho": rho,
                    "achieved_rho": round(partition.achieved_rho(), 2),
                    "target_emd": emd,
                    "achieved_emd": round(partition.achieved_emd_avg(), 3),
                    "N": partition.n_clients,
                })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Table 1 (group 1): achieved dataset statistics", rows)

    for row in rows:
        assert row["N"] == GROUP1_CLIENTS
        # achieved global skew tracks the target (ρ = 1 must stay balanced)
        if row["target_rho"] == 1.0:
            assert row["achieved_rho"] < 1.5
        else:
            assert row["achieved_rho"] == pytest.approx(row["target_rho"], rel=0.5)
        # achieved EMD tracks the target above the sampling-noise floor
        assert row["achieved_emd"] >= row["target_emd"] - 0.15
        if row["target_emd"] >= 1.0:
            assert row["achieved_emd"] == pytest.approx(row["target_emd"], abs=0.25)

    # EMD is monotone in the target at fixed rho
    by_rho = {}
    for row in rows:
        by_rho.setdefault(row["target_rho"], []).append(row["achieved_emd"])
    for achieved in by_rho.values():
        assert all(a <= b + 0.05 for a, b in zip(achieved, achieved[1:]))


@pytest.mark.benchmark(group="table1")
def test_table1_femnist(benchmark):
    """The FEMNIST federation at the paper's full client count."""

    def experiment():
        federation = make_femnist_federation(
            n_clients=FEMNIST_PAPER_CLIENTS, samples_per_client=32, seed=9
        )
        return federation.summary()

    summary = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Table 1 (FEMNIST): achieved statistics", [{
        "dataset": "FEMNIST",
        "target_rho": FEMNIST_PAPER_RHO,
        "achieved_rho": round(summary["rho"], 2),
        "target_emd": FEMNIST_PAPER_EMD,
        "achieved_emd": round(summary["emd_avg"], 3),
        "N": summary["n_clients"],
    }])

    assert summary["n_clients"] == FEMNIST_PAPER_CLIENTS
    assert summary["num_classes"] == 52
    # global skew close to the paper's 13.64
    assert summary["rho"] == pytest.approx(FEMNIST_PAPER_RHO, rel=0.5)
    # the empirical EMD sits above the paper's value because of the per-client
    # sampling floor and the writer-style concentration (see DESIGN.md)
    assert 0.3 <= summary["emd_avg"] <= 1.6
