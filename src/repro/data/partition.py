"""Client partitioning with controlled statistical heterogeneity.

The paper characterises a federated dataset by two knobs (§6.1.1, Table 1):

* the global imbalance ratio ``ρ`` (how skewed the union of all client data
  is), produced by :mod:`repro.data.skew`, and
* the average client discrepancy ``EMD_avg`` (how far each client's label
  distribution is from the population distribution), with
  ``EMD_avg ∈ {0, 0.5, 1.0, 1.5}`` in the experiments.

:class:`EMDTargetPartitioner` reproduces the construction: every client's
label distribution is a convex mixture

``p_l^k = (1 − α) · p_g + α · q_k``

of the global distribution ``p_g`` and a per-client concentrated distribution
``q_k`` (uniform over the client's 1–2 *dominating classes*).  The mixing
coefficient ``α`` is calibrated so that the *average* ``||p_l^k − p_g||₁``
matches the requested ``EMD_avg``: ``α = 0`` reproduces the IID extreme
(every client looks like the global data) and ``α = 1`` reproduces the
fully-concentrated extreme described in the paper.

Two classical partitioners (Dirichlet and shards) are included for
completeness; they are used by ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .distributions import (
    average_emd,
    emd,
    imbalance_ratio,
    normalize_counts,
    population_distribution,
)

__all__ = [
    "ClientPartition",
    "EMDTargetPartitioner",
    "DirichletPartitioner",
    "ShardPartitioner",
]


@dataclass
class ClientPartition:
    """The result of partitioning a dataset across federated clients.

    Attributes
    ----------
    client_class_counts:
        Integer array of shape ``(n_clients, n_classes)``; entry ``(k, c)``
        is the number of class-``c`` samples held by client ``k``.
    num_classes:
        Size of the label space ``C``.
    """

    client_class_counts: np.ndarray
    num_classes: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.client_class_counts = np.asarray(self.client_class_counts, dtype=int)
        if self.client_class_counts.ndim != 2:
            raise ValueError("client_class_counts must be 2-D (clients x classes)")
        if self.client_class_counts.shape[1] != self.num_classes:
            raise ValueError("class dimension does not match num_classes")
        if np.any(self.client_class_counts < 0):
            raise ValueError("negative sample counts")

    # -- basic accessors ------------------------------------------------------

    @property
    def n_clients(self) -> int:
        return self.client_class_counts.shape[0]

    def client_sizes(self) -> np.ndarray:
        """Number of samples on each client."""
        return self.client_class_counts.sum(axis=1)

    def client_distribution(self, k: int) -> np.ndarray:
        """Label distribution ``p_l^k`` of client *k*."""
        return normalize_counts(self.client_class_counts[k])

    def client_distributions(self) -> np.ndarray:
        """All client label distributions stacked into ``(n_clients, C)``."""
        return np.vstack([self.client_distribution(k) for k in range(self.n_clients)])

    def global_counts(self) -> np.ndarray:
        """Per-class counts of the union of all client data."""
        return self.client_class_counts.sum(axis=0).astype(float)

    def global_distribution(self) -> np.ndarray:
        """Global label distribution ``p_g``."""
        return normalize_counts(self.global_counts())

    # -- heterogeneity statistics ---------------------------------------------

    def achieved_rho(self) -> float:
        """Measured global imbalance ratio of this partition."""
        return imbalance_ratio(self.global_counts())

    def achieved_emd_avg(self) -> float:
        """Measured average client EMD against the global distribution."""
        return average_emd(list(self.client_distributions()), self.global_distribution())

    def selection_population(self, selected: Sequence[int]) -> np.ndarray:
        """Population distribution ``p_o`` of a selected subset of clients."""
        return population_distribution([self.client_distribution(k) for k in selected])

    def selection_bias(self, selected: Sequence[int]) -> float:
        """``||p_o − p_u||₁`` of a selection — the quantity Dubhe minimises."""
        p_u = np.full(self.num_classes, 1.0 / self.num_classes)
        return emd(self.selection_population(selected), p_u)

    # -- materialisation -------------------------------------------------------

    def assign_sample_indices(self, labels: np.ndarray,
                              rng: Optional[np.random.Generator] = None) -> list[np.ndarray]:
        """Map the count matrix onto concrete sample indices of a dataset.

        Samples of each class are drawn from the pool of that class in
        *labels*; when a client needs more samples of a class than remain in
        the pool, samples are reused (drawn with replacement), mirroring the
        FedVC duplication rule the paper adopts for small clients.
        """
        rng = rng if rng is not None else np.random.default_rng()
        labels = np.asarray(labels)
        pools = [rng.permutation(np.flatnonzero(labels == c)) for c in range(self.num_classes)]
        cursors = [0] * self.num_classes
        assignments: list[np.ndarray] = []
        for k in range(self.n_clients):
            chosen: list[np.ndarray] = []
            for c in range(self.num_classes):
                need = int(self.client_class_counts[k, c])
                if need == 0:
                    continue
                pool = pools[c]
                if pool.size == 0:
                    raise ValueError(f"dataset has no samples of class {c}")
                start = cursors[c]
                end = start + need
                if end <= pool.size:
                    chosen.append(pool[start:end])
                    cursors[c] = end
                else:
                    # exhaust the pool, then duplicate (FedVC-style)
                    remaining = pool[start:]
                    extra = rng.choice(pool, size=end - pool.size, replace=True)
                    chosen.append(np.concatenate([remaining, extra]))
                    cursors[c] = pool.size
                    pools[c] = rng.permutation(pool)
                    cursors[c] = 0
            idx = np.concatenate(chosen) if chosen else np.empty(0, dtype=int)
            rng.shuffle(idx)
            assignments.append(idx)
        return assignments


class EMDTargetPartitioner:
    """Partition clients so that the average client EMD hits a target value.

    Parameters
    ----------
    n_clients:
        Number of (virtual) clients ``N``.
    samples_per_client:
        Samples held by each client (``N_VC`` in the paper; every virtual
        client has the same size).
    emd_target:
        Desired ``EMD_avg`` between client distributions and the global
        distribution (paper values: 0, 0.5, 1.0, 1.5).
    dominating_classes:
        Candidate numbers of dominating classes per client; each client draws
        one of these uniformly.  The default ``(1, 2)`` matches the reference
        set ``G = {1, 2, 10}`` used for MNIST/CIFAR10.
    """

    def __init__(self, n_clients: int, samples_per_client: int, emd_target: float,
                 dominating_classes: Sequence[int] = (1, 2),
                 min_alpha: float = 0.0,
                 seed: Optional[int] = None):
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        if samples_per_client < 1:
            raise ValueError("samples_per_client must be positive")
        if emd_target < 0 or emd_target > 2:
            raise ValueError("EMD target must lie in [0, 2]")
        if not dominating_classes or any(d < 1 for d in dominating_classes):
            raise ValueError("dominating_classes must contain positive integers")
        if not 0 <= min_alpha <= 1:
            raise ValueError("min_alpha must lie in [0, 1]")
        self.n_clients = n_clients
        self.samples_per_client = samples_per_client
        self.emd_target = emd_target
        self.dominating_classes = tuple(dominating_classes)
        #: lower bound on the concentration mixing weight; used when a
        #: federation must have genuinely dominating classes per client (e.g.
        #: writer-style FEMNIST) even if the EMD target alone would not
        #: require it (the empirical-EMD sampling floor can exceed the target).
        self.min_alpha = min_alpha
        self.rng = np.random.default_rng(seed)

    # -- internals ------------------------------------------------------------

    def _concentrated_distributions(self, global_dist: np.ndarray) -> np.ndarray:
        """Per-client concentrated component ``q_k`` (uniform over dominating classes).

        Dominating classes are handed out from a stratified quota pool whose
        per-class counts are proportional to the global distribution (largest-
        remainder rounding).  Compared with i.i.d. draws this keeps the
        aggregate of all clients very close to ``p_g``, so the measured global
        imbalance ratio of the partition tracks the requested one even for a
        52-class, heavily skewed federation.
        """
        num_classes = global_dist.size
        dominating = np.minimum(
            self.rng.choice(self.dominating_classes, size=self.n_clients), num_classes
        ).astype(int)
        total_draws = int(dominating.sum())
        raw = global_dist * total_draws
        quota = np.floor(raw).astype(int)
        deficit = total_draws - int(quota.sum())
        if deficit > 0:
            order = np.argsort(-(raw - np.floor(raw)))
            quota[order[:deficit]] += 1
        pool = np.repeat(np.arange(num_classes), quota)
        self.rng.shuffle(pool)
        q = np.zeros((self.n_clients, num_classes))
        pos = 0
        for k, d in enumerate(dominating):
            take = list(pool[pos : pos + d])
            pos += d
            chosen: list[int] = []
            for c in take:
                if c in chosen:  # avoid duplicate dominating classes per client
                    candidates = [x for x in range(num_classes) if x not in chosen]
                    c = int(self.rng.choice(candidates))
                chosen.append(int(c))
            while len(chosen) < d:  # pool exhausted near the end
                candidates = [x for x in range(num_classes) if x not in chosen]
                chosen.append(int(self.rng.choice(candidates)))
            q[k, chosen] = 1.0 / d
        return q

    def _calibrate_alpha(self, q: np.ndarray, global_dist: np.ndarray) -> float:
        """Solve for the mixing coefficient that hits the EMD target on average.

        The measured ``EMD_avg`` of a finite partition has a *sampling-noise
        floor*: even perfectly IID clients (α = 0) show a positive empirical
        EMD because each client only holds ``samples_per_client`` samples.
        We therefore calibrate against the measured EMD of quickly simulated
        partitions at α = 0 and α = 1 and interpolate linearly; a target
        below the noise floor maps to α = 0 (as IID as achievable).
        """
        if self.emd_target == 0:
            return 0.0
        probe_rng = np.random.default_rng(self.rng.integers(2**32))
        n_probe = min(self.n_clients, 200)

        def _measured_emd(alpha: float) -> float:
            mixtures = (1 - alpha) * global_dist[None, :] + alpha * q[:n_probe]
            emds = []
            for k in range(n_probe):
                counts = probe_rng.multinomial(self.samples_per_client, mixtures[k])
                p_k = counts / counts.sum()
                emds.append(np.abs(p_k - global_dist).sum())
            return float(np.mean(emds))

        e0 = _measured_emd(0.0)
        e1 = _measured_emd(1.0)
        if self.emd_target <= e0 or e1 <= e0:
            return self.min_alpha
        return float(max(self.min_alpha,
                         min(1.0, (self.emd_target - e0) / (e1 - e0))))

    # -- public API -----------------------------------------------------------

    def partition(self, global_distribution: np.ndarray) -> ClientPartition:
        """Create a partition whose global skew follows *global_distribution*."""
        global_dist = np.asarray(global_distribution, dtype=float)
        global_dist = global_dist / global_dist.sum()
        num_classes = global_dist.size
        q = self._concentrated_distributions(global_dist)
        alpha = self._calibrate_alpha(q, global_dist)
        mixtures = (1 - alpha) * global_dist[None, :] + alpha * q
        counts = np.zeros((self.n_clients, num_classes), dtype=int)
        for k in range(self.n_clients):
            counts[k] = self.rng.multinomial(self.samples_per_client, mixtures[k])
        return ClientPartition(
            counts,
            num_classes,
            metadata={
                "partitioner": "emd_target",
                "alpha": alpha,
                "emd_target": self.emd_target,
                "dominating_classes": self.dominating_classes,
            },
        )


class DirichletPartitioner:
    """Classical Dirichlet(α) label-skew partitioner (ablation baseline).

    Smaller concentration values produce more heterogeneous clients; this is
    the partition scheme used by many FL papers and serves as a sanity
    baseline for the EMD-targeted partitioner above.
    """

    def __init__(self, n_clients: int, samples_per_client: int, concentration: float,
                 seed: Optional[int] = None):
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        if n_clients < 1 or samples_per_client < 1:
            raise ValueError("n_clients and samples_per_client must be positive")
        self.n_clients = n_clients
        self.samples_per_client = samples_per_client
        self.concentration = concentration
        self.rng = np.random.default_rng(seed)

    def partition(self, global_distribution: np.ndarray) -> ClientPartition:
        global_dist = np.asarray(global_distribution, dtype=float)
        global_dist = global_dist / global_dist.sum()
        num_classes = global_dist.size
        counts = np.zeros((self.n_clients, num_classes), dtype=int)
        for k in range(self.n_clients):
            p = self.rng.dirichlet(self.concentration * num_classes * global_dist + 1e-9)
            counts[k] = self.rng.multinomial(self.samples_per_client, p)
        return ClientPartition(
            counts,
            num_classes,
            metadata={"partitioner": "dirichlet", "concentration": self.concentration},
        )


class ShardPartitioner:
    """McMahan-style shard partitioner: each client holds a few label shards.

    Every client receives ``shards_per_client`` contiguous label shards, so a
    client sees at most that many distinct classes — the classic pathological
    non-IID setting of the original FedAvg paper.
    """

    def __init__(self, n_clients: int, samples_per_client: int, shards_per_client: int = 2,
                 seed: Optional[int] = None):
        if shards_per_client < 1:
            raise ValueError("shards_per_client must be positive")
        if n_clients < 1 or samples_per_client < 1:
            raise ValueError("n_clients and samples_per_client must be positive")
        self.n_clients = n_clients
        self.samples_per_client = samples_per_client
        self.shards_per_client = shards_per_client
        self.rng = np.random.default_rng(seed)

    def partition(self, global_distribution: np.ndarray) -> ClientPartition:
        global_dist = np.asarray(global_distribution, dtype=float)
        global_dist = global_dist / global_dist.sum()
        num_classes = global_dist.size
        counts = np.zeros((self.n_clients, num_classes), dtype=int)
        per_shard = self.samples_per_client // self.shards_per_client
        remainder = self.samples_per_client - per_shard * self.shards_per_client
        for k in range(self.n_clients):
            classes = self.rng.choice(
                num_classes,
                size=min(self.shards_per_client, num_classes),
                replace=False,
                p=global_dist,
            )
            for i, c in enumerate(classes):
                counts[k, c] += per_shard + (remainder if i == 0 else 0)
        return ClientPartition(
            counts,
            num_classes,
            metadata={"partitioner": "shards", "shards_per_client": self.shards_per_client},
        )
