"""Figure 6 — test-accuracy curves for random vs Dubhe vs greedy selection.

Paper setup: MNIST with ρ = 2 and CIFAR10 with ρ = 10, EMD_avg ∈
{0.5, 1.0, 1.5}, N = 1000, K = 20, CNN/ResNet18, 200/1000 rounds.  Dubhe
tracks the greedy curve and both clearly beat random selection, with the gap
widening as the data gets more heterogeneous.

Reduced scale: synthetic MNIST-like (ρ = 2) and CIFAR-like (ρ = 10)
federations at EMD_avg = 1.5 (the setting where the paper's gap is widest),
N = 80, K = 10, an MLP and a 60-round horizon.  The reproduced claims:
Dubhe and greedy achieve a lower population bias than random every round, and
their final/tail accuracy is at least as good as random's (typically better),
with greedy ≈ Dubhe.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import build_federation, make_selector, print_table, run_training

N_CLIENTS = 80
K = 10
ROUNDS = 60
TAIL = 10
SELECTORS = ("random", "dubhe", "greedy")


def paper_scale() -> dict:
    return {"datasets": ("MNIST-2/*", "CIFAR10-10/*"), "emd_sweep": (0.5, 1.0, 1.5),
            "n_clients": 1000, "k": 20, "rounds": (200, 1000),
            "models": ("CNN (Reddi et al.)", "ResNet18")}


def _curves_for(dataset: str, rho: float, emd: float, seed: int):
    fed = build_federation(dataset, rho=rho, emd_avg=emd, n_clients=N_CLIENTS, seed=seed)
    histories = {}
    for name in SELECTORS:
        selector = make_selector(name, fed, K, h=1, seed=seed)
        histories[name] = run_training(fed, selector, rounds=ROUNDS, k=K, model="mlp",
                                       eval_every=3, learning_rate=3e-3, seed=seed)
    return fed, histories


@pytest.mark.benchmark(group="fig6")
def test_fig6_mnist_curves(benchmark):
    """MNIST-2/1.5: Dubhe ≈ greedy ≥ random in accuracy; both less biased."""
    fed, histories = benchmark.pedantic(
        lambda: _curves_for("mnist", rho=2.0, emd=1.5, seed=3), rounds=1, iterations=1
    )
    _report(fed, histories)
    _assert_ordering(histories)


@pytest.mark.benchmark(group="fig6")
def test_fig6_cifar_curves(benchmark):
    """CIFAR-10/1.5: the harder task with heavy global skew."""
    fed, histories = benchmark.pedantic(
        lambda: _curves_for("cifar", rho=10.0, emd=1.5, seed=4), rounds=1, iterations=1
    )
    _report(fed, histories)
    _assert_ordering(histories)


def _report(fed, histories):
    rows = []
    for name, history in histories.items():
        accs = history.accuracies()
        valid = accs[~np.isnan(accs)]
        curve = " ".join(f"{a:.2f}" for a in valid[:: max(1, len(valid) // 8)])
        rows.append({
            "selector": name,
            "final_acc": round(history.final_accuracy(), 3),
            "tail_acc": round(history.tail_average_accuracy(TAIL), 3),
            "mean_bias": round(history.mean_population_bias(), 3),
            "accuracy_curve": curve,
        })
    print_table(f"Figure 6: {fed.name} accuracy curves (rounds={ROUNDS}, K={K})", rows)


def _assert_ordering(histories):
    bias = {n: h.mean_population_bias() for n, h in histories.items()}
    acc = {n: h.tail_average_accuracy(TAIL) for n, h in histories.items()}
    # data unbiasedness: dubhe and greedy beat random every time
    assert bias["dubhe"] < bias["random"]
    assert bias["greedy"] < bias["random"]
    # accuracy: the balanced selections must not lose to random by more than
    # noise, and greedy/dubhe stay close to each other (paper: "comparable")
    assert acc["dubhe"] >= acc["random"] - 0.08
    assert acc["greedy"] >= acc["random"] - 0.08
    assert abs(acc["greedy"] - acc["dubhe"]) < 0.2
