"""Tests for the loss, optimisers, model architectures and metrics."""

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.nn.loss import CrossEntropyLoss, log_softmax, softmax
from repro.nn.metrics import accuracy, confusion_matrix, evaluate_model, per_class_accuracy
from repro.nn.models import MLP, CifarCNN, MnistCNN, build_model
from repro.nn.optim import SGD, Adam
from repro.nn.module import Module, Parameter


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(p.sum(axis=1), [1.0, 1.0])

    def test_stability_with_large_logits(self):
        p = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(p))
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_log_softmax_consistent(self):
        logits = np.array([[0.3, -1.2, 2.0]])
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestCrossEntropyLoss:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_loss_is_log_c(self):
        logits = np.zeros((3, 4))
        loss, _ = CrossEntropyLoss()(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_shape_and_mean(self):
        logits = np.random.default_rng(0).normal(size=(6, 5))
        _, grad = CrossEntropyLoss()(logits, np.arange(6) % 5)
        assert grad.shape == logits.shape
        # gradient rows sum to zero (softmax minus one-hot)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_invalid_inputs(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.array([0, 7]))
        with pytest.raises(ValueError):
            CrossEntropyLoss(class_weights=np.ones(2))(np.zeros((2, 3)), np.array([0, 1]))


class _Quadratic(Module):
    """Minimal model with loss (p - target)^2 for optimiser convergence tests."""

    def __init__(self, start: float):
        self.p = Parameter(np.array([start]))

    def forward(self, x):  # pragma: no cover - unused
        return self.p.value

    def backward(self, grad_output):  # pragma: no cover - unused
        return grad_output


class TestOptimizers:
    def _train(self, optimizer_cls, steps, **kwargs):
        model = _Quadratic(5.0)
        opt = optimizer_cls(model, **kwargs)
        for _ in range(steps):
            opt.zero_grad()
            model.p.grad += 2 * (model.p.value - 1.0)  # d/dp (p-1)^2
            opt.step()
        return float(model.p.value[0])

    def test_sgd_converges(self):
        assert self._train(SGD, 200, lr=0.1) == pytest.approx(1.0, abs=1e-3)

    def test_sgd_momentum_converges(self):
        assert self._train(SGD, 200, lr=0.05, momentum=0.9) == pytest.approx(1.0, abs=1e-2)

    def test_adam_converges(self):
        assert self._train(Adam, 600, lr=0.05) == pytest.approx(1.0, abs=1e-2)

    def test_sgd_single_step_matches_hand_computation(self):
        model = _Quadratic(2.0)
        opt = SGD(model, lr=0.5)
        model.p.grad += np.array([3.0])
        opt.step()
        assert model.p.value[0] == pytest.approx(2.0 - 0.5 * 3.0)

    def test_weight_decay_shrinks_weights(self):
        model = _Quadratic(2.0)
        opt = SGD(model, lr=0.1, weight_decay=1.0)
        model.p.grad += np.array([0.0])
        opt.step()
        assert model.p.value[0] == pytest.approx(2.0 - 0.1 * 2.0)

    def test_invalid_hyperparameters(self):
        model = _Quadratic(1.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(model, lr=-1)
        with pytest.raises(ValueError):
            Adam(model, betas=(1.5, 0.9))

    def test_model_without_parameters_rejected(self):
        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            SGD(Empty(), lr=0.1)


class TestModels:
    @pytest.mark.parametrize("name,channels", [("mlp", 1), ("mnist_cnn", 1), ("cifar_cnn", 3)])
    def test_forward_shapes(self, name, channels):
        model = build_model(name, channels, 8, 10, seed=0)
        x = np.random.default_rng(0).normal(size=(4, channels, 8, 8))
        if name == "mlp":
            x = x.reshape(4, -1)
        assert model(x).shape == (4, 10)

    def test_backward_produces_gradients(self):
        model = MnistCNN(1, 8, 10, channels=(4, 8), hidden=16, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 1, 8, 8))
        logits = model(x)
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn(logits, np.array([1, 2]))
        model.zero_grad()
        model.backward(grad)
        assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())

    def test_cifar_cnn_backward(self):
        model = CifarCNN(3, 8, 10, channels=(4, 8, 8), hidden=16, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        logits = model(x)
        _, grad = CrossEntropyLoss()(logits, np.array([0, 5]))
        model.zero_grad()
        model.backward(grad)
        assert all(np.isfinite(p.grad).all() for p in model.parameters())

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("resnet152", 3, 8, 10)

    def test_training_reduces_loss_and_learns(self):
        # small end-to-end sanity check: an MLP learns the synthetic task
        gen = make_synthetic_mnist(seed=0)
        train = gen.generate([40] * 10, rng=np.random.default_rng(1))
        test = make_uniform_test_set(gen, samples_per_class=20, seed=2)
        model = MLP(gen.flat_feature_dim(), 10, hidden=(32,), seed=0)
        opt = Adam(model, lr=5e-3)
        loss_fn = CrossEntropyLoss()
        x = train.x.reshape(len(train), -1)
        y = train.y
        first_loss = None
        for epoch in range(30):
            logits = model(x)
            loss, grad = loss_fn(logits, y)
            if first_loss is None:
                first_loss = loss
            model.zero_grad()
            model.backward(grad)
            opt.step()
        assert loss < first_loss
        test_logits = model(test.x.reshape(len(test), -1))
        assert accuracy(test_logits, test.y) > 0.5


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0))

    def test_confusion_matrix(self):
        m = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        np.testing.assert_array_equal(m, [[1, 0, 0], [0, 1, 0], [0, 1, 1]])

    def test_confusion_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)

    def test_per_class_accuracy(self):
        acc = per_class_accuracy(np.array([0, 1, 0]), np.array([0, 1, 1]), 3)
        assert acc[0] == pytest.approx(1.0)
        assert acc[1] == pytest.approx(0.5)
        assert np.isnan(acc[2])

    def test_evaluate_model(self):
        gen = make_synthetic_mnist(seed=0)
        test = make_uniform_test_set(gen, samples_per_class=5, seed=0)
        model = MLP(gen.flat_feature_dim(), 10, hidden=(8,), seed=0)

        class FlattenWrapper(Module):
            def __init__(self, inner):
                self.inner = inner

            def forward(self, x):
                return self.inner(x.reshape(x.shape[0], -1))

            def backward(self, g):  # pragma: no cover - not used
                return g

        result = evaluate_model(FlattenWrapper(model), test, batch_size=16)
        assert 0.0 <= result["accuracy"] <= 1.0
        assert result["n_samples"] == 50
        assert result["confusion_matrix"].sum() == 50
