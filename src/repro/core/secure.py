"""The encrypted registration / selection protocol (the HE side of Dubhe).

Roles, matching Figure 3/4 of the paper:

* **clients** hold plaintext label distributions, fill registries locally,
  and encrypt everything they transmit with the round public key;
* the **server** only ever touches ciphertexts: it sums the encrypted
  registries (or encrypted distributions during multi-time selection) and
  forwards aggregates — it never holds the private key;
* the **agent** (a randomly chosen client) generates the round key-pair,
  dispatches it to clients, and performs decryption duties on aggregates.

The protocol classes below also meter every byte and message they move so
the §6.4 overhead study reads its numbers from the same code path the
selection uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from ..crypto.batch import AnyEncryptedVector, BatchCryptoExecutor, encrypt_one
from ..crypto.encoding import DEFAULT_BASE, DEFAULT_PRECISION
from ..crypto.keyagent import KeyAgent
from ..crypto.packing import DEFAULT_MAX_WEIGHT, PackingScheme
from ..crypto.paillier import NoisePool, PaillierPublicKey
from ..crypto.vector import plaintext_vector_bytes
from .config import DubheConfig
from .registry import RegistrationResult, RegistryCodebook

__all__ = [
    "ProtocolStats",
    "SecureAggregationServer",
    "SecureClient",
    "SecureRegistrationRound",
    "SecureDistributionAggregation",
]


@dataclass
class ProtocolStats:
    """Bytes, messages and wall-time spent by one protocol execution."""

    messages: int = 0
    plaintext_bytes: int = 0
    ciphertext_bytes: int = 0
    encrypt_seconds: float = 0.0
    decrypt_seconds: float = 0.0
    #: Offline cost of pre-generating ``r^n mod n²`` noise; kept separate
    #: from ``encrypt_seconds`` because it can run ahead of the round.
    noise_precompute_seconds: float = 0.0

    def merged_with(self, other: "ProtocolStats") -> "ProtocolStats":
        return ProtocolStats(
            messages=self.messages + other.messages,
            plaintext_bytes=self.plaintext_bytes + other.plaintext_bytes,
            ciphertext_bytes=self.ciphertext_bytes + other.ciphertext_bytes,
            encrypt_seconds=self.encrypt_seconds + other.encrypt_seconds,
            decrypt_seconds=self.decrypt_seconds + other.decrypt_seconds,
            noise_precompute_seconds=(self.noise_precompute_seconds
                                      + other.noise_precompute_seconds),
        )

    @property
    def expansion_factor(self) -> float:
        """Ciphertext size relative to plaintext size."""
        if self.plaintext_bytes == 0:
            return 0.0
        return self.ciphertext_bytes / self.plaintext_bytes


class SecureAggregationServer:
    """The honest-but-curious server: aggregates ciphertexts, nothing else.

    The class deliberately has no attribute that could hold a private key and
    no decryption method — tests assert this structural property.

    Aggregation is *streaming*: each received vector is folded into a single
    running homomorphic sum, so server memory is O(1) in the number of
    clients (one ciphertext vector) rather than O(N).
    """

    def __init__(self, public_key: PaillierPublicKey):
        self.public_key = public_key
        self._aggregate: Optional[AnyEncryptedVector] = None
        self._count = 0
        self.stats = ProtocolStats()

    def receive(self, ciphertext: AnyEncryptedVector) -> None:
        """Accept one client's encrypted vector and fold it into the sum."""
        if ciphertext.public_key != self.public_key:
            raise ValueError("ciphertext was produced under a different round key")
        if self._aggregate is None:
            # copy so in-place accumulation never mutates the sender's object
            self._aggregate = ciphertext.copy()
        else:
            self._aggregate.add_(ciphertext)
        self._count += 1
        self.stats.messages += 1
        self.stats.ciphertext_bytes += ciphertext.nbytes()

    def aggregate(self) -> AnyEncryptedVector:
        """The homomorphic sum of every received vector (still encrypted).

        Returns a copy, so callers can keep (or mutate) the result while the
        server continues to fold in late arrivals.
        """
        if self._aggregate is None:
            raise ValueError("no ciphertexts received")
        return self._aggregate.copy()

    @property
    def received_count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._aggregate = None
        self._count = 0


class SecureClient:
    """A client's view of the secure protocol: encrypt before transmitting.

    Parameters
    ----------
    packed:
        When ``True`` the client transmits BatchCrypt-style packed
        ciphertexts (``⌈l/slots⌉`` ciphertexts per vector) instead of one
        ciphertext per component.
    max_weight:
        Packing headroom: how many clients' vectors the server may sum into
        the packed ciphertext.  Required when *packed*.
    noise:
        Optional :class:`NoisePool` of precomputed ``r^n mod n²`` terms.
    """

    def __init__(self, client_id: int, distribution: np.ndarray,
                 packed: bool = False, max_weight: Optional[int] = None,
                 noise: Optional[NoisePool] = None):
        self.client_id = client_id
        self.distribution = np.asarray(distribution, dtype=float)
        self.registration: Optional[RegistrationResult] = None
        self.packed = packed
        self.max_weight = max_weight
        self.noise = noise
        self.stats = ProtocolStats()

    def register(self, codebook: RegistryCodebook) -> RegistrationResult:
        """Run Algorithm 1 locally (plaintext never leaves the client)."""
        self.registration = codebook.register(self.distribution)
        return self.registration

    def record_transmission(self, values: np.ndarray,
                            ciphertext: AnyEncryptedVector,
                            encrypt_seconds: float) -> None:
        """Account for one transmitted vector (used by batched encryption)."""
        self.stats.encrypt_seconds += encrypt_seconds
        self.stats.messages += 1
        self.stats.plaintext_bytes += plaintext_vector_bytes(values)
        self.stats.ciphertext_bytes += ciphertext.nbytes()

    def _encrypt(self, values: np.ndarray,
                 public_key: PaillierPublicKey) -> AnyEncryptedVector:
        if self.packed and self.max_weight is None:
            raise ValueError("packed clients need max_weight (the n_clients headroom)")
        start = perf_counter()
        # the same worker body the batch executor runs, so the client-side
        # and round-level encryption paths cannot drift apart
        ciphertext = encrypt_one(
            public_key, values, packed=self.packed,
            max_weight=(self.max_weight if self.max_weight is not None
                        else DEFAULT_MAX_WEIGHT),
            base=DEFAULT_BASE, precision=DEFAULT_PRECISION, max_abs_value=1.0,
            noise=self.noise, rng=None)
        self.record_transmission(values, ciphertext, perf_counter() - start)
        return ciphertext

    def encrypted_registry(self, public_key: PaillierPublicKey) -> AnyEncryptedVector:
        """The encrypted registry this client sends to the server."""
        if self.registration is None:
            raise RuntimeError("client has not registered yet")
        return self._encrypt(self.registration.registry, public_key)

    def encrypted_distribution(self, public_key: PaillierPublicKey) -> AnyEncryptedVector:
        """The encrypted label distribution sent during multi-time selection."""
        return self._encrypt(self.distribution, public_key)


def _noise_terms_needed(public_key: PaillierPublicKey, vector_length: int,
                        n_clients: int, packed: bool, max_weight: int) -> int:
    """How many ``r^n`` terms a round of *n_clients* encryptions consumes."""
    if not packed:
        return vector_length * n_clients
    scheme = PackingScheme(public_key, vector_length, max_weight=max_weight)
    return scheme.num_ciphertexts * n_clients


def _encrypt_and_deliver(public_key: PaillierPublicKey,
                         clients: Sequence[SecureClient],
                         vectors: Sequence[np.ndarray],
                         server: "SecureAggregationServer",
                         executor: BatchCryptoExecutor, packed: bool,
                         max_weight: int,
                         noise: Optional[NoisePool]) -> None:
    """Encrypt every client's vector in one batch and stream it to the server.

    Shared by registration and distribution aggregation so the stats
    attribution (wall time split evenly across clients) and delivery order
    cannot drift between the two protocols.
    """
    start = perf_counter()
    encrypted = executor.encrypt_many(public_key, vectors, packed=packed,
                                      max_weight=max_weight, noise=noise)
    encrypt_seconds = perf_counter() - start
    for client, values, ciphertext in zip(clients, vectors, encrypted):
        client.record_transmission(values, ciphertext,
                                   encrypt_seconds / len(clients))
        server.receive(ciphertext)


@dataclass
class SecureRegistrationRound:
    """One full registration round: keygen → encrypt → aggregate → decrypt.

    Returns the overall registry exactly as each client would decrypt it,
    plus the overhead statistics of every role.

    Parameters
    ----------
    packed:
        Transmit packed ciphertexts (``⌈l/slots⌉`` per registry, headroom for
        all N clients' additions).  Packed and per-component rounds decrypt
        to bit-identical overall registries.
    executor_mode, max_workers:
        Back-end for encrypting all N clients' registries
        (``"sequential"`` / ``"thread"`` / ``"process"``, mirroring
        :class:`~repro.federated.executor.LocalUpdateExecutor`).  Only
        ``"process"`` parallelises the modular exponentiations in CPython
        (big-int ``pow`` holds the GIL); see :mod:`repro.crypto.batch`.
    precompute_noise:
        Pre-generate every ``r^n mod n²`` term in a :class:`NoisePool`
        before the timed encryption phase (amortised/offline noise).
    """

    config: DubheConfig
    agent: Optional[KeyAgent] = None
    packed: bool = False
    executor_mode: str = "sequential"
    max_workers: Optional[int] = None
    precompute_noise: bool = False
    _stats: ProtocolStats = field(default_factory=ProtocolStats)

    def run(self, client_distributions: Sequence[np.ndarray] | np.ndarray,
            ) -> tuple[np.ndarray, list[RegistrationResult], ProtocolStats]:
        """Execute the protocol for every client distribution given."""
        distributions = np.asarray(client_distributions, dtype=float)
        if distributions.ndim != 2:
            raise ValueError("client_distributions must be 2-D")
        if distributions.shape[0] == 0:
            raise ValueError("client_distributions is empty")
        codebook = RegistryCodebook(self.config)
        agent = self.agent or KeyAgent(key_size=self.config.key_size)
        keypair = agent.new_round()
        n_clients = distributions.shape[0]
        agent.dispatch_public_key(n_clients)
        agent.dispatch_private_key(n_clients)

        clients = [SecureClient(k, distributions[k]) for k in range(n_clients)]
        server = SecureAggregationServer(keypair.public_key)
        registrations = [client.register(codebook) for client in clients]
        registries = [registration.registry for registration in registrations]

        noise: Optional[NoisePool] = None
        noise_seconds = 0.0
        if self.precompute_noise:
            start = perf_counter()
            noise = NoisePool(keypair.public_key)
            noise.refill(_noise_terms_needed(
                keypair.public_key, len(registries[0]), n_clients,
                self.packed, max_weight=n_clients))
            noise_seconds = perf_counter() - start

        executor = BatchCryptoExecutor(self.executor_mode, self.max_workers)
        _encrypt_and_deliver(keypair.public_key, clients, registries, server,
                             executor, self.packed, max_weight=n_clients,
                             noise=noise)
        encrypted_total = server.aggregate()

        # every client can decrypt the synchronized aggregate with sk_t; we
        # decrypt once (the result is identical for every client)
        start = perf_counter()
        overall = encrypted_total.decrypt(keypair.private_key)
        decrypt_seconds = perf_counter() - start

        stats = ProtocolStats()
        for client in clients:
            stats = stats.merged_with(client.stats)
        stats = stats.merged_with(server.stats)
        stats.decrypt_seconds += decrypt_seconds
        stats.noise_precompute_seconds += noise_seconds
        # synchronising the aggregate back to N clients is N more messages
        stats.messages += n_clients
        stats.ciphertext_bytes += encrypted_total.nbytes() * n_clients
        self._stats = stats
        return overall, registrations, stats


class SecureDistributionAggregation:
    """The multi-time-selection data path: encrypted ``p_l`` aggregation.

    The selected clients of a tentative try encrypt their label
    distributions; the server sums the ciphertexts; the agent decrypts the
    aggregate and scores ``||p_o − p_u||₁``.  Population distributions of
    individual clients are never visible to the server.
    """

    def __init__(self, config: DubheConfig, agent: Optional[KeyAgent] = None,
                 packed: bool = False, executor_mode: str = "sequential",
                 max_workers: Optional[int] = None,
                 precompute_noise: bool = False):
        self.config = config
        self.agent = agent or KeyAgent(key_size=config.key_size)
        self.keypair = self.agent.new_round()
        self.packed = packed
        self.executor = BatchCryptoExecutor(executor_mode, max_workers)
        self.precompute_noise = precompute_noise
        self.noise: Optional[NoisePool] = (
            NoisePool(self.keypair.public_key) if precompute_noise else None
        )
        self.stats = ProtocolStats()

    def score_selection(self, client_distributions: np.ndarray,
                        selected: Sequence[int]) -> float:
        """Return ``||p_o − p_u||₁`` for *selected*, computed under encryption."""
        distributions = np.asarray(client_distributions, dtype=float)
        selected = list(selected)
        if not selected:
            raise ValueError("cannot score an empty selection")
        server = SecureAggregationServer(self.keypair.public_key)
        clients = [SecureClient(k, distributions[k]) for k in selected]

        noise_seconds = 0.0
        if self.noise is not None:
            start = perf_counter()
            self.noise.refill(_noise_terms_needed(
                self.keypair.public_key, distributions.shape[1], len(selected),
                self.packed, max_weight=len(selected)))
            noise_seconds = perf_counter() - start

        vectors = [distributions[k] for k in selected]
        _encrypt_and_deliver(self.keypair.public_key, clients, vectors, server,
                             self.executor, self.packed,
                             max_weight=len(selected), noise=self.noise)
        aggregate = server.aggregate()
        uniform = np.full(self.config.num_classes, 1.0 / self.config.num_classes)
        score = self.agent.score_population(aggregate, uniform)
        round_stats = ProtocolStats()
        for client in clients:
            round_stats = round_stats.merged_with(client.stats)
        round_stats = round_stats.merged_with(server.stats)
        round_stats.noise_precompute_seconds += noise_seconds
        self.stats = self.stats.merged_with(round_stats)
        return score
