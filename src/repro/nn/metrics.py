"""Evaluation metrics for classification models.

The paper reports top-1 test accuracy on a class-balanced test set; the
per-class breakdown and confusion matrix feed the analysis of which classes
suffer under biased client participation (Figure 10 discussion).

Two evaluation drivers produce the same report from the same model:

* :func:`evaluate_model` — the sequential reference, a Python loop over
  64-sample batches;
* :class:`BatchedEvaluator` — forward-only inference through the cohort
  kernels (:class:`repro.nn.batched.BatchedModel` with a single client
  slice), which rides the whole test set down the batch axis in a few large
  chunks.  Predictions — and therefore every derived metric — are identical
  to the sequential loop; only the Python-loop overhead disappears.
"""

from __future__ import annotations

import numpy as np

from ..data.dataloader import DataLoader
from ..data.dataset import ArrayDataset
from .batched import BatchedModel
from .module import Module

__all__ = [
    "BatchedEvaluator",
    "accuracy",
    "confusion_matrix",
    "evaluate_model",
    "per_class_accuracy",
]


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a batch of logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if len(logits) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((logits.argmax(axis=1) == targets).mean())


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class *i* predicted as *j*."""
    predictions = np.asarray(predictions, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    for name, values in (("predictions", predictions), ("targets", targets)):
        if values.size and (values.min() < 0 or values.max() >= num_classes):
            raise ValueError(f"{name} contain labels outside [0, {num_classes})")
    # bincount over flattened (target, prediction) pairs: same integer counts
    # as np.add.at, an order of magnitude faster on the per-round eval path
    pairs = targets.ravel() * num_classes + predictions.ravel()
    return np.bincount(pairs, minlength=num_classes * num_classes).reshape(
        num_classes, num_classes)


def per_class_accuracy(predictions: np.ndarray, targets: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Recall of each class; classes with no test samples report NaN."""
    matrix = confusion_matrix(predictions, targets, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def _classification_report(pred: np.ndarray, target: np.ndarray,
                           num_classes: int) -> dict:
    """The standard evaluation dict from a full set of predictions."""
    if len(pred) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return {
        "accuracy": float((pred == target).mean()),
        "per_class_accuracy": per_class_accuracy(pred, target, num_classes),
        "confusion_matrix": confusion_matrix(pred, target, num_classes),
        "n_samples": int(len(pred)),
    }


def evaluate_model(model: Module, dataset: ArrayDataset, batch_size: int = 64) -> dict:
    """Evaluate *model* on *dataset*; returns accuracy and per-class stats."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    predictions: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for xb, yb in loader:
        logits = model(xb)
        predictions.append(logits.argmax(axis=1))
        targets.append(yb)
    model.train()
    pred = np.concatenate(predictions) if predictions else np.empty(0, dtype=int)
    target = np.concatenate(targets) if targets else np.empty(0, dtype=int)
    return _classification_report(pred, target, dataset.num_classes)


class BatchedEvaluator:
    """Forward-only batched inference for the server's test pass.

    Wraps a model template as a one-client :class:`BatchedModel` — the single
    model broadcast to the eval-batch axis — and pushes the test set through
    in ``chunk_size``-sample slabs: ``⌈N / chunk_size⌉`` batched forwards
    instead of ``N / 64`` Python-loop iterations.  Each chunk computes the
    very same per-row logits the sequential loop would, so predictions and
    every derived metric match :func:`evaluate_model` exactly.

    The evaluator is round-persistent: construct once (this is where
    :class:`~repro.nn.batched.UnvectorizableModelError` may rule the model
    out, e.g. a custom architecture with no registered cohort chain), then
    per evaluation call :meth:`load_state` with the current global weights
    and :meth:`evaluate`.

    ``chunk_size`` is an upper bound; the effective chunk also respects a
    fixed per-chunk element budget, so wide samples (conv image stacks,
    whose im2col intermediates multiply the footprint) automatically run in
    smaller slabs instead of ballooning memory.
    """

    #: feature elements per chunk the evaluator aims for (~4 MB of float64);
    #: chunks shrink below ``chunk_size`` when samples are wider than this
    CHUNK_ELEMENT_BUDGET = 1 << 19

    def __init__(self, template: Module, chunk_size: int = 2048):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._model = BatchedModel(template, 1)
        self._model.eval()
        self._cast_cache: "tuple[np.ndarray, np.ndarray] | None" = None

    def _effective_chunk(self, sample_elements: int) -> int:
        """Samples per forward chunk for a given per-sample element count."""
        budget = max(1, self.CHUNK_ELEMENT_BUDGET // max(1, sample_elements))
        return min(self.chunk_size, budget)

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Load the weights to evaluate (read-only views are fine)."""
        self._model.load_state_dict_broadcast(state)

    def _features(self, dataset: ArrayDataset) -> np.ndarray:
        """The dataset's features in the model dtype, cached per dataset.

        The cast is exact (float32 features widen losslessly) and
        round-persistent: the server evaluates the same test set every round,
        so the float64 copy is made once for its lifetime (the source array
        is pinned, making identity a sound cache key).  The sequential loop
        instead promotes every mini-batch inside its matmuls — same values,
        recomputed every round.
        """
        x = np.asarray(dataset.x)
        if x.dtype == self._model.dtype:
            return x
        if self._cast_cache is None or self._cast_cache[0] is not x:
            self._cast_cache = (x, x.astype(self._model.dtype))
        return self._cast_cache[1]

    def predictions(self, dataset: ArrayDataset) -> np.ndarray:
        """Top-1 predictions for every sample, in dataset order."""
        x = self._features(dataset)
        n = len(dataset)
        pred = np.empty(n, dtype=int)
        step = self._effective_chunk(int(np.prod(x.shape[1:], dtype=int)))
        for start in range(0, n, step):
            chunk = x[start : start + step]
            logits = self._model.forward(chunk[None])
            pred[start : start + chunk.shape[0]] = logits[0].argmax(axis=1)
        return pred

    def evaluate(self, dataset: ArrayDataset) -> dict:
        """The same report as :func:`evaluate_model`, from batched forwards."""
        pred = self.predictions(dataset)
        target = np.asarray(dataset.y, dtype=int)
        return _classification_report(pred, target, dataset.num_classes)
