"""Tests for SecureDubheSelector: the fully encrypted selection path."""

import random

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.secure_selector import SecureDubheSelector
from repro.core.selectors import DubheSelector, RandomSelector
from repro.crypto.keyagent import KeyAgent
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions


@pytest.fixture(scope="module")
def small_federation():
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(30, 64, 1.5, seed=0).partition(global_dist)
    return partition.client_distributions()


def settled_config(k=6, h=2):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                       participants_per_round=k, tentative_selections=h, key_size=128)


@pytest.fixture(scope="module")
def secure_selector(small_federation):
    agent = KeyAgent(key_size=128, rng=random.Random(0))
    return SecureDubheSelector(small_federation, settled_config(), seed=0, agent=agent)


class TestSecureDubheSelector:
    def test_requires_settled_config(self, small_federation):
        with pytest.raises(ValueError):
            SecureDubheSelector(small_federation,
                                DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                                            participants_per_round=5, key_size=128))

    def test_class_mismatch_rejected(self, small_federation):
        config = DubheConfig(num_classes=5, reference_set=(1, 5),
                             thresholds={1: 0.5, 5: 0.0}, participants_per_round=5,
                             key_size=128)
        with pytest.raises(ValueError):
            SecureDubheSelector(small_federation, config)

    def test_registration_matches_plaintext_selector(self, small_federation, secure_selector):
        plaintext = DubheSelector(small_federation, settled_config(), seed=0)
        np.testing.assert_allclose(secure_selector.overall_registry,
                                   plaintext.overall_registry, atol=1e-9)
        np.testing.assert_allclose(secure_selector.probabilities,
                                   plaintext.probabilities, atol=1e-9)

    def test_selects_exactly_k_distinct(self, secure_selector):
        selected = secure_selector.select(0)
        assert len(selected) == 6
        assert len(set(selected)) == 6
        assert secure_selector.last_bias >= 0

    def test_same_seed_matches_plaintext_selections(self, small_federation):
        agent = KeyAgent(key_size=128, rng=random.Random(1))
        secure = SecureDubheSelector(small_federation, settled_config(h=3), seed=7, agent=agent)
        plaintext = DubheSelector(small_federation, settled_config(h=3), seed=7)
        for r in range(3):
            assert secure.select(r) == plaintext.select(r)

    def test_protocol_stats_accumulate(self, small_federation):
        agent = KeyAgent(key_size=128, rng=random.Random(2))
        secure = SecureDubheSelector(small_federation, settled_config(), seed=0, agent=agent)
        after_registration = secure.stats.messages
        assert after_registration >= len(small_federation)
        assert secure.stats.ciphertext_bytes > secure.stats.plaintext_bytes
        secure.select(0)
        assert secure.stats.messages > after_registration

    def test_beats_random_on_skewed_federation(self, small_federation, secure_selector):
        rand = RandomSelector(small_federation, 6, seed=0)
        secure_bias = np.mean([secure_selector.bias_of(secure_selector.select(r))
                               for r in range(8)])
        random_bias = np.mean([rand.bias_of(rand.select(r)) for r in range(8)])
        assert secure_bias < random_bias + 0.05

    def test_last_bias_before_selection_raises(self, small_federation):
        agent = KeyAgent(key_size=128, rng=random.Random(3))
        fresh = SecureDubheSelector(small_federation, settled_config(), seed=0, agent=agent)
        with pytest.raises(RuntimeError):
            _ = fresh.last_bias

    def test_plaintext_scoring_mode(self, small_federation):
        agent = KeyAgent(key_size=128, rng=random.Random(4))
        selector = SecureDubheSelector(small_federation, settled_config(), seed=0,
                                       agent=agent, score_securely=False)
        selected = selector.select(0)
        assert len(selected) == 6
