"""Participation-probability calculation (eq. (6)–(8) of the paper).

After the overall registry ``R_A`` is decrypted by the clients, each client
``k`` in category ``u`` computes its own participation probability

``P^(t,k) = min(1, K / (R_A(u) · ||R_A||₀))``

where ``R_A(u)`` is the number of clients registered in the same category and
``||R_A||₀`` the number of non-empty categories.  Two identities follow and
are verified by the tests and the property-based suite:

* the expected number of participants is exactly ``K`` (eq. (7)), provided
  ``K < ||R_A||₀ · min_u R_A(u)`` so no probability saturates at 1;
* the expected number of participants *per category* is ``K / ||R_A||₀``
  (eq. (8)), which is what equalises the frequency of each class appearing as
  a dominating class and thereby flattens the population distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .registry import RegistrationResult, RegistryCodebook

__all__ = [
    "participation_probability",
    "participation_probabilities",
    "expected_participants",
    "expected_category_count",
    "bernoulli_participation",
]


def participation_probability(overall_registry: np.ndarray, category_index: int,
                              participants_per_round: int) -> float:
    """Eq. (6) for a single client given its category's flat registry index."""
    overall = np.asarray(overall_registry, dtype=float)
    if participants_per_round < 1:
        raise ValueError("participants_per_round must be positive")
    if not 0 <= category_index < overall.size:
        raise IndexError("category index out of range")
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    count_in_category = overall[category_index]
    if count_in_category <= 0:
        # the client's own registration guarantees R_A(u) >= 1 in a consistent
        # protocol; a zero here means the caller passed mismatched inputs
        raise ValueError("category has no registered clients in the overall registry")
    return float(min(1.0, participants_per_round / (count_in_category * support)))


def participation_probabilities(codebook: RegistryCodebook,
                                registrations: Sequence[RegistrationResult],
                                overall_registry: np.ndarray,
                                participants_per_round: int) -> np.ndarray:
    """Eq. (6) evaluated for every registered client."""
    return np.array([
        participation_probability(overall_registry, reg.index, participants_per_round)
        for reg in registrations
    ])


def expected_participants(overall_registry: np.ndarray, participants_per_round: int) -> float:
    """Eq. (7): the expected size of the selection pool ``E|S_t|``.

    Equals ``K`` exactly when no category's probability saturates at 1;
    saturated categories contribute their full client count instead.
    """
    overall = np.asarray(overall_registry, dtype=float)
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    total = 0.0
    for count in overall[overall > 0]:
        p = min(1.0, participants_per_round / (count * support))
        total += count * p
    return float(total)


def expected_category_count(overall_registry: np.ndarray, category_index: int,
                            participants_per_round: int) -> float:
    """Eq. (8): the expected number of participants from one category."""
    overall = np.asarray(overall_registry, dtype=float)
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    count = overall[category_index]
    if count <= 0:
        return 0.0
    p = min(1.0, participants_per_round / (count * support))
    return float(count * p)


def bernoulli_participation(probabilities: np.ndarray,
                            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Each client independently decides to participate (client autonomy).

    Returns the indices of clients whose Bernoulli draw succeeded.  This is
    the step where Dubhe's "clients proactively participate" property lives:
    the server never picks specific clients, it only learns who volunteered.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if np.any(probabilities < 0) or np.any(probabilities > 1):
        raise ValueError("probabilities must lie in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    draws = rng.random(probabilities.shape)
    return np.flatnonzero(draws < probabilities)
