#!/usr/bin/env python
"""Federated-round throughput benchmark: executor back-ends head-to-head.

Measures the hot loop of the simulation — one full round of local updates
for the K selected clients (ship global weights, train locally, return
states) plus server aggregation — under each execution back-end of
:class:`repro.federated.LocalUpdateExecutor`:

* ``sequential`` — one client after another (the reference);
* ``thread`` / ``process`` — pool-based parallelism over clients;
* ``vectorized`` — the cohort back-end: all K clients stacked into one
  batched tensor program (:mod:`repro.nn.batched`);
* ``parallel`` — the multi-cohort back-end: the cohort sharded across
  persistent worker processes, each running its shard as an independent
  vectorized block (:mod:`repro.federated.scheduler`).

The workload is the paper's group-1 client configuration (B = 8, E = 1,
Adam 1e-4) over equal-size virtual clients (``N_VC`` samples each, the
FedVC convention) with the benchmark MLP.  Before timing, the harness
asserts that every back-end reproduces the sequential per-client states to
≤ 1e-10 from the same starting weights.

Two further sections exercise the round-persistent runtime:

* **multi_round** — one persistent vectorized executor over several rounds
  with lazy, cache-backed clients: round 1 pays dataset materialisation and
  workspace construction (flat pools, optimiser state, cohort buffers),
  rounds 2+ reuse everything.  The section records the cold/warm split and
  asserts round-2+ equals the sequential multi-round result to ≤ 1e-10.
* **evaluation** — the server's test pass: sequential 64-sample Python loop
  vs the forward-only batched evaluator, same predictions asserted.
* **parallel** — warm multi-cohort rounds (process-sharded vectorized
  blocks, ``--parallel-workers`` workers) against warm single-process
  vectorized rounds at ``--parallel-k``, per-client states first asserted
  ≤ 1e-10 against the sequential reference.  The ``--min-parallel-speedup`` gate only applies on
  boxes with >= 2 cores — the ratio measures multi-core scaling, so on a
  single-core runner the section records the (necessarily <= 1x) number and
  the gate is skipped with a warning.  For the same reason the ratio is
  *not* part of the ``compare_bench.py`` baseline gate (like the
  thread/process modes, it tracks the host's core count, not the code).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim.py

which writes ``BENCH_sim.json`` next to this repository's ROADMAP.  Use
``--ks 32 --modes sequential,vectorized --min-speedup 1`` as a CI smoke
check (exits non-zero when the vectorized back-end fails to beat
sequential by the given factor in client-updates/sec at the gate K);
``--min-warm-speedup`` / ``--min-eval-speedup`` gate the round-persistence
and batched-evaluation sections the same way.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")) and \
        os.path.join(_REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.data.cohort import DatasetCache  # noqa: E402
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set  # noqa: E402
from repro.federated.client import FederatedClient, LocalTrainingConfig  # noqa: E402
from repro.federated.executor import LocalUpdateExecutor  # noqa: E402
from repro.federated.server import FederatedServer  # noqa: E402
from repro.nn.metrics import BatchedEvaluator, evaluate_model  # noqa: E402
from repro.nn.models import MLP  # noqa: E402

#: samples per virtual client (N_VC); a multiple of B = 8 so every
#: optimisation step runs a full batch
SAMPLES_PER_CLIENT = 64

#: hidden width of the benchmark MLP (64-dim synthetic MNIST features -> 10)
HIDDEN = (32,)

EQUIVALENCE_TOL = 1e-10


def model_factory():
    return MLP(64, 10, hidden=HIDDEN, seed=7)


def _client_counts(generator) -> list[int]:
    """Per-class sample counts of one N_VC-sample virtual client (FedVC split)."""
    per_class = SAMPLES_PER_CLIENT // generator.num_classes
    remainder = SAMPLES_PER_CLIENT - per_class * generator.num_classes
    return [per_class + (1 if c < remainder else 0)
            for c in range(generator.num_classes)]


def make_cohort(n_clients: int) -> list[FederatedClient]:
    """K equal-size virtual clients with pre-materialised synthetic data."""
    generator = make_synthetic_mnist(seed=0)
    counts = _client_counts(generator)
    clients = []
    for k in range(n_clients):
        dataset = generator.generate(counts, rng=np.random.default_rng(10_000 + k))
        clients.append(FederatedClient(k, generator.num_classes, dataset=dataset,
                                       seed=20_000 + k))
    return clients


def check_equivalence(mode: str, clients, config, num_workers=None) -> float:
    """Max |Δ| between this mode's per-client states and sequential ones."""
    server = FederatedServer(model_factory)
    global_state = server.global_state()
    reference = LocalUpdateExecutor("sequential").run_round(
        clients, model_factory, global_state, config, round_index=0)
    executor = LocalUpdateExecutor(mode, num_workers=num_workers)
    try:
        states = executor.run_round(
            clients, model_factory, global_state, config, round_index=0)
        if mode == "parallel":
            assert executor.last_fallback_reason is None, \
                executor.last_fallback_reason
    finally:
        executor.close()
    worst = 0.0
    for a, b in zip(reference, states):
        for key in a:
            worst = max(worst, float(np.max(np.abs(a[key] - b[key]))))
    if worst > EQUIVALENCE_TOL:
        raise AssertionError(
            f"{mode} diverges from sequential by {worst:.3e} (> {EQUIVALENCE_TOL})"
        )
    return worst


def bench_mode(mode: str, n_clients: int, rounds: int, config) -> dict:
    """Time *rounds* full rounds (local updates + aggregation) under *mode*."""
    clients = make_cohort(n_clients)
    worst = check_equivalence(mode, clients, config)
    server = FederatedServer(model_factory)
    executor = LocalUpdateExecutor(mode)
    steps_per_client = (SAMPLES_PER_CLIENT + config.batch_size - 1) // config.batch_size
    # warm-up round (pools, caches, BLAS threads)
    states = executor.run_round(clients, model_factory, server.global_state(),
                                config, round_index=0)
    server.aggregate(states)
    start = perf_counter()
    for r in range(1, rounds + 1):
        states = executor.run_round(clients, model_factory,
                                    server.global_state(copy=False), config,
                                    round_index=r)
        server.aggregate(states)
    elapsed = perf_counter() - start
    return {
        "mode": mode,
        "rounds_per_s": round(rounds / elapsed, 3),
        "client_updates_per_s": round(rounds * n_clients / elapsed, 1),
        "local_steps_per_s": round(rounds * n_clients * steps_per_client
                                   * config.local_epochs / elapsed, 1),
        "round_ms": round(elapsed / rounds * 1e3, 3),
        "max_abs_diff_vs_sequential": worst,
    }


def make_lazy_cohort(n_clients: int, cache: DatasetCache) -> list[FederatedClient]:
    """K lazy virtual clients whose data materialises through the shared cache."""
    generator = make_synthetic_mnist(seed=0)
    counts = _client_counts(generator)
    clients = []
    for k in range(n_clients):
        def factory(k=k):
            return generator.generate(counts, rng=np.random.default_rng(10_000 + k))

        clients.append(FederatedClient(k, generator.num_classes,
                                       dataset_factory=factory,
                                       seed=20_000 + k, cache=cache))
    return clients


def bench_multi_round(n_clients: int, rounds: int, config) -> dict:
    """Cold-vs-warm round split of the round-persistent vectorized runtime.

    Round 1 (cold) materialises every client's data, builds the workspace
    (flat pools + optimiser state + cohort buffers) and stacks the cohort;
    rounds 2+ (warm) rebind into the same allocations and skip restacking —
    the amortisation multi-round experiments actually see.
    """
    clients = make_lazy_cohort(n_clients, DatasetCache(n_clients))
    server = FederatedServer(model_factory)
    executor = LocalUpdateExecutor("vectorized")
    times = []
    for r in range(rounds):
        start = perf_counter()
        states = executor.run_round(clients, model_factory,
                                    server.global_state(copy=False), config,
                                    round_index=r)
        server.aggregate(states)
        times.append(perf_counter() - start)
    assert executor.workspace_builds == 1, "workspace was rebuilt mid-run"
    assert executor.workspace.buffer.allocations == 1

    # warm rounds must still match the sequential multi-round reference
    seq_clients = make_lazy_cohort(n_clients, DatasetCache(n_clients))
    seq_server = FederatedServer(model_factory)
    seq_executor = LocalUpdateExecutor("sequential")
    for r in range(rounds):
        seq_server.aggregate(seq_executor.run_round(
            seq_clients, model_factory, seq_server.global_state(copy=False),
            config, round_index=r))
    worst = 0.0
    vec_state = server.global_state()
    for key, value in seq_server.global_state().items():
        worst = max(worst, float(np.max(np.abs(value - vec_state[key]))))
    if worst > EQUIVALENCE_TOL:
        raise AssertionError(
            f"multi-round vectorized diverges from sequential by {worst:.3e}"
        )

    cold = times[0]
    warm = sum(times[1:]) / len(times[1:])
    return {
        "k": n_clients,
        "rounds": rounds,
        "cold_round_ms": round(cold * 1e3, 3),
        "warm_round_ms": round(warm * 1e3, 3),
        "warm_vs_cold_speedup": round(cold / warm, 2),
        "warm_client_updates_per_s": round(n_clients / warm, 1),
        "workspace_builds": executor.workspace_builds,
        "buffer_allocations": executor.workspace.buffer.allocations,
        "slots_restacked": executor.workspace.buffer.restacked,
        "slots_reused": executor.workspace.buffer.reused,
        "max_abs_diff_vs_sequential": worst,
    }


def bench_parallel(n_clients: int, rounds: int, config, num_workers: int) -> dict:
    """Warm multi-cohort (process-sharded) rounds vs warm vectorized rounds.

    Both executors get one untimed warm-up round (workspace build, fleet
    fork, data stacking) so the comparison is steady-state round throughput —
    the regime a multi-round experiment actually runs in.  Before timing,
    one parallel round is asserted ≤ 1e-10 against the *sequential*
    reference (the strongest one: vectorized is itself asserted against it
    by every ``bench_mode`` run).
    """
    clients = make_cohort(n_clients)
    worst = check_equivalence("parallel", clients, config,
                              num_workers=num_workers)

    def timed_rounds(executor) -> float:
        server = FederatedServer(model_factory)
        states = executor.run_round(clients, model_factory, server.global_state(),
                                    config, round_index=0)
        server.aggregate(states)
        start = perf_counter()
        for r in range(1, rounds + 1):
            states = executor.run_round(clients, model_factory,
                                        server.global_state(copy=False), config,
                                        round_index=r)
            server.aggregate(states)
        return (perf_counter() - start) / rounds

    vec_round_s = timed_rounds(LocalUpdateExecutor("vectorized"))
    par_exec = LocalUpdateExecutor("parallel", num_workers=num_workers)
    try:
        par_round_s = timed_rounds(par_exec)
        assert par_exec.last_fallback_reason is None, par_exec.last_fallback_reason
        scheduler_builds = par_exec.scheduler.builds
        assert scheduler_builds == 1, "fleet was rebuilt mid-run"
    finally:
        par_exec.close()
    return {
        "k": n_clients,
        "samples_per_client": SAMPLES_PER_CLIENT,
        "rounds": rounds,
        "num_workers": num_workers,
        "cpus": os.cpu_count(),
        "vectorized_round_ms": round(vec_round_s * 1e3, 3),
        "parallel_round_ms": round(par_round_s * 1e3, 3),
        "vectorized_client_updates_per_s": round(n_clients / vec_round_s, 1),
        "parallel_client_updates_per_s": round(n_clients / par_round_s, 1),
        "parallel_vs_vectorized_speedup": round(vec_round_s / par_round_s, 2),
        "scheduler_builds": scheduler_builds,
        "max_abs_diff_vs_sequential": worst,
    }


def bench_evaluation(samples_per_class: int, repeats: int) -> dict:
    """Sequential 64-batch eval loop vs the forward-only batched evaluator."""
    generator = make_synthetic_mnist(seed=0)
    test_set = make_uniform_test_set(generator,
                                     samples_per_class=samples_per_class, seed=1)
    server = FederatedServer(model_factory, eval_backend="sequential")
    evaluator = BatchedEvaluator(model_factory())
    evaluator.load_state(server.global_state(copy=False))

    sequential_report = evaluate_model(server.global_model, test_set, batch_size=64)
    batched_report = evaluator.evaluate(test_set)
    if batched_report["accuracy"] != sequential_report["accuracy"]:
        raise AssertionError("batched evaluation changed the metrics")

    # warm-up: prime the evaluator's cast cache, allocator pools and CPU
    for _ in range(3):
        evaluate_model(server.global_model, test_set, batch_size=64)
        evaluator.evaluate(test_set)

    def best_of(fn, batches: int = 5) -> float:
        # timeit-style minimum over several timing batches: scheduler noise
        # only ever adds time, so the minimum is the honest per-call cost
        best = float("inf")
        for _ in range(batches):
            start = perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, (perf_counter() - start) / repeats)
        return best

    sequential_s = best_of(
        lambda: evaluate_model(server.global_model, test_set, batch_size=64))
    batched_s = best_of(lambda: evaluator.evaluate(test_set))
    return {
        "n_test": len(test_set),
        "sequential_batch_size": 64,
        "repeats": repeats,
        "sequential_eval_ms": round(sequential_s * 1e3, 3),
        "batched_eval_ms": round(batched_s * 1e3, 3),
        "batched_vs_sequential_speedup": round(sequential_s / batched_s, 2),
        "accuracy_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ks", default="8,32,128",
                        help="comma-separated cohort sizes K to benchmark")
    parser.add_argument("--modes", default="sequential,thread,process,vectorized",
                        help="comma-separated executor modes")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per (mode, K) point")
    parser.add_argument("--out", default=os.path.join(_REPO_ROOT, "BENCH_sim.json"),
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when vectorized client-updates/sec "
                             "at --gate-k falls below this multiple of sequential")
    parser.add_argument("--gate-k", type=int, default=32,
                        help="cohort size checked by --min-speedup")
    parser.add_argument("--multiround-rounds", type=int, default=5,
                        help="rounds in the round-persistence (cold/warm) "
                             "scenario at --gate-k (needs >= 2 for a warm "
                             "measurement; 0 disables the section)")
    parser.add_argument("--eval-samples-per-class", type=int, default=200,
                        help="test-set size per class for the evaluation "
                             "section; 0 disables the section")
    parser.add_argument("--eval-repeats", type=int, default=25,
                        help="timed repetitions of each evaluation driver")
    parser.add_argument("--min-warm-speedup", type=float, default=None,
                        help="fail (exit 1) when warm rounds are not this many "
                             "times faster than the cold round")
    parser.add_argument("--min-eval-speedup", type=float, default=None,
                        help="fail (exit 1) when batched evaluation is not this "
                             "many times faster than the sequential loop")
    parser.add_argument("--parallel-k", type=int, default=128,
                        help="cohort size of the multi-cohort (parallel) "
                             "section")
    parser.add_argument("--parallel-workers", type=int, default=2,
                        help="worker processes in the parallel section "
                             "(0 disables the section)")
    parser.add_argument("--parallel-rounds", type=int, default=5,
                        help="timed warm rounds per executor in the parallel "
                             "section")
    parser.add_argument("--min-parallel-speedup", type=float, default=None,
                        help="fail (exit 1) when parallel rounds are not this "
                             "many times faster than vectorized rounds; "
                             "skipped (with a warning) on boxes with < 2 "
                             "cores, where multi-process scaling is "
                             "impossible by construction")
    args = parser.parse_args(argv)
    if args.multiround_rounds == 1:
        parser.error("--multiround-rounds needs >= 2 rounds to split cold "
                     "from warm (or 0 to disable the section)")

    ks = [int(k) for k in args.ks.split(",")]
    modes = [m.strip() for m in args.modes.split(",")]
    config = LocalTrainingConfig()  # paper group 1: B=8, E=1, Adam 1e-4
    results = []
    for n_clients in ks:
        row = {"k": n_clients, "samples_per_client": SAMPLES_PER_CLIENT,
               "modes": {}}
        for mode in modes:
            print(f"benchmarking K={n_clients} mode={mode} ...", flush=True)
            measurement = bench_mode(mode, n_clients, args.rounds, config)
            row["modes"][mode] = measurement
            print(f"  {measurement['round_ms']:.1f} ms/round, "
                  f"{measurement['client_updates_per_s']:.0f} client-updates/s")
        if "sequential" in row["modes"]:
            base = row["modes"]["sequential"]["client_updates_per_s"]
            row["speedup_vs_sequential"] = {
                mode: round(m["client_updates_per_s"] / base, 2)
                for mode, m in row["modes"].items() if mode != "sequential"
            }
        results.append(row)

    multi_round = None
    if args.multiround_rounds > 1:
        print(f"benchmarking multi-round persistence K={args.gate_k} "
              f"({args.multiround_rounds} rounds) ...", flush=True)
        multi_round = bench_multi_round(args.gate_k, args.multiround_rounds, config)
        print(f"  cold {multi_round['cold_round_ms']:.1f} ms, warm "
              f"{multi_round['warm_round_ms']:.1f} ms "
              f"({multi_round['warm_vs_cold_speedup']}x)")

    parallel = None
    if args.parallel_workers > 0:
        print(f"benchmarking multi-cohort parallel K={args.parallel_k} "
              f"({args.parallel_workers} workers, {args.parallel_rounds} "
              "rounds) ...", flush=True)
        parallel = bench_parallel(args.parallel_k, args.parallel_rounds,
                                  config, args.parallel_workers)
        print(f"  vectorized {parallel['vectorized_round_ms']:.1f} ms, "
              f"parallel {parallel['parallel_round_ms']:.1f} ms "
              f"({parallel['parallel_vs_vectorized_speedup']}x on "
              f"{parallel['cpus']} core(s))")

    evaluation = None
    if args.eval_samples_per_class > 0:
        print("benchmarking evaluation throughput ...", flush=True)
        evaluation = bench_evaluation(args.eval_samples_per_class,
                                      args.eval_repeats)
        print(f"  sequential {evaluation['sequential_eval_ms']:.1f} ms, batched "
              f"{evaluation['batched_eval_ms']:.1f} ms "
              f"({evaluation['batched_vs_sequential_speedup']}x)")

    payload = {
        "benchmark": "simulation_throughput",
        "generated_by": "benchmarks/bench_sim.py",
        "machine": {"python": platform.python_version(),
                    "platform": platform.platform(),
                    "cpus": os.cpu_count()},
        "workload": {
            "model": f"MLP(64, 10, hidden={list(HIDDEN)})",
            "local": {"batch_size": config.batch_size,
                      "local_epochs": config.local_epochs,
                      "optimizer": config.optimizer,
                      "learning_rate": config.learning_rate},
            "samples_per_client": SAMPLES_PER_CLIENT,
            "equivalence_tol": EQUIVALENCE_TOL,
        },
        "results": results,
        "multi_round": multi_round,
        "parallel": parallel,
        "evaluation": evaluation,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        gate = next((r for r in results if r["k"] == args.gate_k), None)
        if gate is None or "vectorized" not in gate["modes"] \
                or "sequential" not in gate["modes"]:
            print(f"FAIL: gate needs sequential+vectorized at K={args.gate_k}",
                  file=sys.stderr)
            return 1
        achieved = gate["speedup_vs_sequential"]["vectorized"]
        if achieved < args.min_speedup:
            print(f"FAIL: vectorized speedup {achieved}x < required "
                  f"{args.min_speedup}x at K={args.gate_k}", file=sys.stderr)
            return 1
        print(f"OK: vectorized speedup {achieved}x >= {args.min_speedup}x "
              f"at K={args.gate_k}")

    if args.min_warm_speedup is not None:
        if multi_round is None:
            print("FAIL: --min-warm-speedup needs the multi-round section",
                  file=sys.stderr)
            return 1
        achieved = multi_round["warm_vs_cold_speedup"]
        if achieved < args.min_warm_speedup:
            print(f"FAIL: warm-round speedup {achieved}x < required "
                  f"{args.min_warm_speedup}x", file=sys.stderr)
            return 1
        print(f"OK: warm-round speedup {achieved}x >= {args.min_warm_speedup}x")

    if args.min_parallel_speedup is not None:
        if parallel is None:
            print("FAIL: --min-parallel-speedup needs the parallel section",
                  file=sys.stderr)
            return 1
        if (parallel["cpus"] or 1) < 2:
            print("WARNING: --min-parallel-speedup skipped — the parallel "
                  f"gate needs >= 2 cores, this box has {parallel['cpus']}; "
                  f"recorded {parallel['parallel_vs_vectorized_speedup']}x "
                  "without gating")
        else:
            achieved = parallel["parallel_vs_vectorized_speedup"]
            if achieved < args.min_parallel_speedup:
                print(f"FAIL: parallel speedup {achieved}x < required "
                      f"{args.min_parallel_speedup}x at K={parallel['k']} "
                      f"with {parallel['num_workers']} workers",
                      file=sys.stderr)
                return 1
            print(f"OK: parallel speedup {achieved}x >= "
                  f"{args.min_parallel_speedup}x at K={parallel['k']}")

    if args.min_eval_speedup is not None:
        if evaluation is None:
            print("FAIL: --min-eval-speedup needs the evaluation section",
                  file=sys.stderr)
            return 1
        achieved = evaluation["batched_vs_sequential_speedup"]
        if achieved < args.min_eval_speedup:
            print(f"FAIL: batched-eval speedup {achieved}x < required "
                  f"{args.min_eval_speedup}x", file=sys.stderr)
            return 1
        print(f"OK: batched-eval speedup {achieved}x >= {args.min_eval_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
