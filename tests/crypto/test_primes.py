"""Unit tests for prime generation (Miller-Rabin and friends)."""

import random

import pytest

from repro.crypto.primes import (
    SMALL_PRIMES,
    generate_distinct_primes,
    generate_prime,
    is_probable_prime,
)


class TestSmallPrimeTable:
    def test_table_starts_correctly(self):
        assert SMALL_PRIMES[:10] == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)

    def test_table_contains_only_primes(self):
        for p in SMALL_PRIMES[:200]:
            assert is_probable_prime(p)

    def test_table_is_sorted_and_unique(self):
        assert list(SMALL_PRIMES) == sorted(set(SMALL_PRIMES))


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1])
    def test_known_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 9, 15, 21, 100, 7917, 2**61 - 3])
    def test_known_composites_and_trivia(self, n):
        assert not is_probable_prime(n)

    def test_negative_numbers_are_not_prime(self):
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_probable_prime(n)

    def test_large_semiprime_rejected(self):
        p = generate_prime(64, rng=random.Random(0))
        q = generate_prime(64, rng=random.Random(1))
        assert not is_probable_prime(p * q)

    def test_deterministic_with_seeded_rng(self):
        rng1 = random.Random(42)
        rng2 = random.Random(42)
        n = 2**89 - 1  # Mersenne prime
        assert is_probable_prime(n, rng=rng1) == is_probable_prime(n, rng=rng2)


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [16, 32, 64, 128])
    def test_bit_length_exact(self, bits):
        p = generate_prime(bits, rng=random.Random(bits))
        assert p.bit_length() == bits
        assert is_probable_prime(p)

    def test_generated_prime_is_odd(self):
        p = generate_prime(32, rng=random.Random(7))
        assert p % 2 == 1

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_seeded_generation_is_reproducible(self):
        a = generate_prime(48, rng=random.Random(123))
        b = generate_prime(48, rng=random.Random(123))
        assert a == b

    def test_distinct_primes_are_distinct(self):
        p, q = generate_distinct_primes(32, rng=random.Random(5))
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)
