"""Dataset and partitioning substrate for the Dubhe reproduction.

Public API
----------
* distribution utilities — :func:`emd`, :func:`kl_divergence`,
  :func:`imbalance_ratio`, :func:`average_emd`, :func:`uniform_distribution`.
* global skew — :func:`half_normal_class_proportions`,
  :func:`skewed_class_counts`.
* client partitioning — :class:`EMDTargetPartitioner`,
  :class:`DirichletPartitioner`, :class:`ShardPartitioner`,
  :class:`ClientPartition`.
* datasets — :class:`ArrayDataset`, :class:`DataLoader`,
  :class:`SyntheticImageGenerator`, :func:`make_synthetic_mnist`,
  :func:`make_synthetic_cifar`, :func:`make_femnist_federation`.
* FedVC virtual clients — :func:`make_virtual_clients`.
* cohort execution — :class:`DatasetCache` (bounded LRU pool of client
  datasets), :func:`stack_cohort` / :class:`Cohort` (dense ``(K, N_vc, …)``
  stacking for the vectorized back-end), :class:`CohortBuffer`
  (round-persistent stacking buffers with per-slot reuse).
"""

from .cohort import Cohort, CohortBuffer, CohortShapeError, DatasetCache, stack_cohort
from .dataloader import DataLoader
from .dataset import ArrayDataset, Subset, train_test_split
from .distributions import (
    average_emd,
    emd,
    imbalance_ratio,
    kl_divergence,
    label_counts,
    label_distribution,
    normalize_counts,
    population_distribution,
    uniform_distribution,
    validate_distribution,
)
from .femnist import (
    FEMNIST_NUM_CLASSES,
    FEMNIST_PAPER_CLIENTS,
    FEMNIST_PAPER_EMD,
    FEMNIST_PAPER_RHO,
    LEAF_FEMNIST_URL,
    FemnistFederation,
    download_femnist,
    make_femnist_federation,
)
from .partition import (
    ClientPartition,
    DirichletPartitioner,
    EMDTargetPartitioner,
    ShardPartitioner,
)
from .skew import apply_global_skew, half_normal_class_proportions, skewed_class_counts
from .synthetic import (
    SyntheticImageGenerator,
    make_synthetic_cifar,
    make_synthetic_mnist,
    make_uniform_test_set,
)
from .virtual_clients import VirtualClientMapping, make_virtual_clients

__all__ = [
    "ArrayDataset",
    "ClientPartition",
    "Cohort",
    "CohortBuffer",
    "CohortShapeError",
    "DataLoader",
    "DatasetCache",
    "DirichletPartitioner",
    "EMDTargetPartitioner",
    "FEMNIST_NUM_CLASSES",
    "FEMNIST_PAPER_CLIENTS",
    "FEMNIST_PAPER_EMD",
    "FEMNIST_PAPER_RHO",
    "FemnistFederation",
    "LEAF_FEMNIST_URL",
    "ShardPartitioner",
    "Subset",
    "SyntheticImageGenerator",
    "VirtualClientMapping",
    "apply_global_skew",
    "average_emd",
    "download_femnist",
    "emd",
    "half_normal_class_proportions",
    "imbalance_ratio",
    "kl_divergence",
    "label_counts",
    "label_distribution",
    "make_femnist_federation",
    "make_synthetic_cifar",
    "make_synthetic_mnist",
    "make_uniform_test_set",
    "make_virtual_clients",
    "normalize_counts",
    "population_distribution",
    "skewed_class_counts",
    "stack_cohort",
    "train_test_split",
    "uniform_distribution",
    "validate_distribution",
]
