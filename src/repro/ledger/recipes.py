"""Built-in run recipes: importable factories for ledger-replayable runs.

A ledger row can store everything about a run *except* the live Python
objects a :class:`~repro.federated.FederatedSimulation` is built from — the
partition, data generator, model factory, selector and test set.  A
:class:`~repro.ledger.codec.RunRecipe` bridges that gap by naming a factory
function (``"package.module:function"``) plus its keyword arguments; this
module provides the stock factories used by the examples, the CI
ledger-smoke gate and the CLI's cold-process ``verify``/``resume``.

A recipe factory must be **deterministic given its kwargs**: the same
arguments must rebuild a federation whose selections and training match the
recorded run bit-for-bit, which every factory here guarantees by seeding
all randomness from its ``seed`` argument.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["quick_mlp"]


def quick_mlp(n_clients: int = 32, participants: int = 4,
              samples_per_client: int = 16, num_classes: int = 10,
              hidden: int = 16, selector: str = "random",
              seed: Optional[int] = 0) -> dict:
    """A small seeded MLP federation — the stock replayable recipe.

    Returns the five simulation components keyed exactly as
    :class:`~repro.federated.FederatedSimulation` expects them.  The
    ``selector`` argument picks the strategy (``"random"``, ``"greedy"`` or
    ``"dubhe"``); everything — partition, prototypes, selector RNG, model
    init — derives from *seed*, so two processes building this recipe with
    the same kwargs run identically.

    Example
    -------
    >>> components = quick_mlp(n_clients=16, participants=4, seed=0)
    >>> components["partition"].n_clients
    16
    """
    from .. import quick_federation, make_uniform_test_set
    from ..core import DubheConfig, DubheSelector, GreedySelector, RandomSelector
    from ..nn.models import MLP

    partition, generator = quick_federation(
        n_clients=n_clients, samples_per_client=samples_per_client,
        num_classes=num_classes, seed=seed,
    )
    distributions = partition.client_distributions()
    if selector == "random":
        chosen = RandomSelector(distributions, participants, seed=seed)
    elif selector == "greedy":
        chosen = GreedySelector(distributions, participants, seed=seed)
    elif selector == "dubhe":
        config = DubheConfig(
            num_classes=num_classes, participants_per_round=participants,
            reference_set=(1, 2, num_classes),
            thresholds={1: 0.7, 2: 0.1, num_classes: 0.0}, seed=seed,
        )
        chosen = DubheSelector(distributions, config, seed=seed)
    else:
        raise ValueError(
            "selector must be 'random', 'greedy' or 'dubhe', got "
            f"{selector!r}"
        )
    image_size = int(np_prod(generator.image_shape))
    return {
        "partition": partition,
        "generator": generator,
        "model_factory": lambda: MLP(image_size, num_classes,
                                     hidden=(hidden,), seed=seed or 0),
        "selector": chosen,
        "test_set": make_uniform_test_set(generator, samples_per_class=4,
                                          seed=(seed or 0) + 1),
    }


def np_prod(shape) -> int:
    """Product of a shape tuple as a plain int.

    Example
    -------
    >>> np_prod((1, 8, 8))
    64
    """
    out = 1
    for dim in shape:
        out *= int(dim)
    return out
