"""Execution back-ends for per-round local client training.

The paper implements "the training process of participated clients as
parallel processes" on a GPU box.  In this reproduction local updates are
plain NumPy, so four execution modes are offered:

* ``"sequential"`` (default) — deterministic and simplest; NumPy already uses
  multi-threaded BLAS for the matrix multiplies;
* ``"thread"`` — a thread pool; useful when local updates release the GIL in
  BLAS-heavy layers;
* ``"process"`` — a process pool for genuinely CPU-bound local updates with
  larger models; model states are pickled across the process boundary;
* ``"vectorized"`` — the cohort back-end: the K selected clients' datasets
  are stacked into one ``(K, N_vc, …)`` tensor, the model's parameters are
  broadcast to a leading client axis, and every local optimisation step for
  all K clients runs as a handful of batched matmuls
  (:mod:`repro.nn.batched`).  This is the fastest mode for many small
  clients, where the sequential Python loop — not BLAS — is the bottleneck.

All modes produce matching results for the same inputs: the work items are
pure functions of (client dataset, incoming weights, config), and the
batched kernels mirror the sequential arithmetic slice-for-slice.  When a
cohort cannot be vectorized (unregistered model type, ragged client dataset
sizes) the vectorized mode transparently falls back to the sequential loop
and records the reason in :attr:`LocalUpdateExecutor.last_fallback_reason`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from ..data.cohort import CohortShapeError, stack_cohort
from ..nn.batched import (
    BatchedAdam,
    BatchedModel,
    BatchedSGD,
    UnvectorizableModelError,
    batched_cross_entropy,
)
from ..nn.module import Module
from .aggregation import StackedClientStates
from .client import FederatedClient, LocalTrainingConfig

__all__ = ["LocalUpdateExecutor"]

StateDict = dict[str, np.ndarray]

EXECUTOR_MODES = ("sequential", "thread", "process", "vectorized")


def _run_local_update(client: FederatedClient, model: Module, global_state: StateDict,
                      config: LocalTrainingConfig, round_index: int) -> StateDict:
    """Worker body: load global weights into the clone and train locally."""
    model.load_state_dict(global_state)
    return client.local_train(model, config, round_index=round_index)


class LocalUpdateExecutor:
    """Run the selected clients' local updates with the chosen back-end."""

    def __init__(self, mode: str = "sequential", max_workers: Optional[int] = None):
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"mode must be one of {EXECUTOR_MODES}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.mode = mode
        self.max_workers = max_workers
        #: why the most recent vectorized round fell back to sequential (or None)
        self.last_fallback_reason: Optional[str] = None

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0) -> list[StateDict]:
        """Train every client in *clients* from *global_state*; return their states."""
        if not clients:
            return []
        if self.mode == "vectorized":
            self.last_fallback_reason = None
            try:
                return self._run_vectorized(clients, model_factory, global_state,
                                            config, round_index)
            except (UnvectorizableModelError, CohortShapeError) as exc:
                self.last_fallback_reason = str(exc)
                return self._run_sequential(clients, model_factory, global_state,
                                            config, round_index)
        if self.mode == "sequential":
            return self._run_sequential(clients, model_factory, global_state,
                                        config, round_index)
        pool_cls = ThreadPoolExecutor if self.mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(_run_local_update, client, model_factory(), global_state,
                            config, round_index)
                for client in clients
            ]
            return [f.result() for f in futures]

    # -- back-ends -------------------------------------------------------------

    def _run_sequential(self, clients: Sequence[FederatedClient],
                        model_factory: Callable[[], Module],
                        global_state: StateDict, config: LocalTrainingConfig,
                        round_index: int) -> list[StateDict]:
        return [
            _run_local_update(client, model_factory(), global_state, config, round_index)
            for client in clients
        ]

    def _run_vectorized(self, clients: Sequence[FederatedClient],
                        model_factory: Callable[[], Module],
                        global_state: StateDict, config: LocalTrainingConfig,
                        round_index: int) -> StackedClientStates:
        """Train the whole cohort as one batched tensor program.

        Replays the exact sequential schedule — per-client epoch permutations
        from the same seeded RNG stream as :class:`repro.data.DataLoader`,
        same batch boundaries, same optimiser arithmetic — with the client
        loop folded into a leading tensor axis.
        """
        batched = BatchedModel(model_factory(), len(clients))
        cohort = stack_cohort([client.dataset for client in clients])
        n = cohort.samples_per_client
        batched.load_state_dict_broadcast(global_state)
        if config.optimizer == "adam":
            optimizer = BatchedAdam(batched, lr=config.learning_rate)
        else:
            optimizer = BatchedSGD(batched, lr=config.learning_rate)
        # one RNG per client, seeded exactly like the sequential DataLoader
        rngs = [
            np.random.default_rng(
                None if client.seed is None else client.seed + 7919 * round_index
            )
            for client in clients
        ]
        rows = np.arange(len(clients))[:, None]
        batched.train()
        for _ in range(config.local_epochs):
            orders = np.stack([rng.permutation(n) for rng in rngs]) if n else None
            for batch_index, start in enumerate(range(0, n, config.batch_size)):
                if (config.max_batches_per_epoch is not None
                        and batch_index >= config.max_batches_per_epoch):
                    break
                idx = orders[:, start : start + config.batch_size]
                xb = cohort.x[rows, idx]
                yb = cohort.y[rows, idx]
                logits = batched.forward(xb)
                _, grad = batched_cross_entropy(logits, yb)
                # no zero_grad: batched layer backwards assign (not accumulate)
                batched.backward(grad)
                optimizer.step()
        for client in clients:
            client.rounds_participated += 1
        return StackedClientStates(batched.state_dicts(), batched.stacked_state())
