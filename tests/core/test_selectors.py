"""Tests for the three client-selection strategies."""

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.selectors import DubheSelector, GreedySelector, RandomSelector
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions


@pytest.fixture(scope="module")
def skewed_federation():
    """A 200-client federation with heavy global skew and client discrepancy."""
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(200, 64, 1.5, seed=0).partition(global_dist)
    return partition.client_distributions()


def group1_config(k=20, h=1, seed=None):
    return DubheConfig(
        num_classes=10,
        reference_set=(1, 2, 10),
        thresholds={1: 0.7, 2: 0.1, 10: 0.0},
        participants_per_round=k,
        tentative_selections=h,
        seed=seed,
    )


class TestSelectorValidation:
    def test_base_validation(self, skewed_federation):
        with pytest.raises(ValueError):
            RandomSelector(skewed_federation[0], 5)  # 1-D
        with pytest.raises(ValueError):
            RandomSelector(skewed_federation, 0)
        with pytest.raises(ValueError):
            RandomSelector(skewed_federation, 10_000)

    def test_dubhe_requires_thresholds(self, skewed_federation):
        config = DubheConfig(num_classes=10, reference_set=(1, 2, 10), participants_per_round=20)
        with pytest.raises(ValueError):
            DubheSelector(skewed_federation, config)

    def test_dubhe_class_mismatch(self, skewed_federation):
        config = DubheConfig(num_classes=5, reference_set=(1, 5),
                             thresholds={1: 0.5, 5: 0.0}, participants_per_round=20)
        with pytest.raises(ValueError):
            DubheSelector(skewed_federation, config)


class TestRandomSelector:
    def test_selects_exactly_k_distinct(self, skewed_federation):
        selector = RandomSelector(skewed_federation, 20, seed=0)
        selected = selector.select(0)
        assert len(selected) == 20
        assert len(set(selected)) == 20

    def test_different_rounds_differ(self, skewed_federation):
        selector = RandomSelector(skewed_federation, 20, seed=0)
        assert selector.select(0) != selector.select(1)

    def test_bias_tracks_global_distribution(self, skewed_federation):
        # with skewed global data, random selection stays biased
        selector = RandomSelector(skewed_federation, 20, seed=1)
        biases = [selector.bias_of(selector.select(r)) for r in range(20)]
        assert np.mean(biases) > 0.3


class TestGreedySelector:
    def test_selects_exactly_k_distinct(self, skewed_federation):
        selector = GreedySelector(skewed_federation, 20, seed=0)
        selected = selector.select(0)
        assert len(selected) == 20
        assert len(set(selected)) == 20

    def test_greedy_beats_random(self, skewed_federation):
        greedy = GreedySelector(skewed_federation, 20, seed=0)
        random_sel = RandomSelector(skewed_federation, 20, seed=0)
        greedy_bias = np.mean([greedy.bias_of(greedy.select(r)) for r in range(10)])
        random_bias = np.mean([random_sel.bias_of(random_sel.select(r)) for r in range(10)])
        assert greedy_bias < random_bias

    def test_greedy_on_perfectly_balanced_pairs(self):
        # clients come in complementary pairs; greedy should recover ~uniform
        dists = np.array([[0.9, 0.1], [0.1, 0.9], [0.8, 0.2], [0.2, 0.8]])
        selector = GreedySelector(dists, 2, seed=0)
        assert selector.bias_of(selector.select(0)) < 0.25


def reference_greedy_select(selector, round_index):
    """The pre-optimisation greedy implementation (shrinking candidate set).

    Kept verbatim as the regression reference: the rewritten
    ``GreedySelector.select`` (running population sum + full-width masked
    argmin) must reproduce its picks exactly.
    """
    first = int(selector.rng.integers(selector.n_clients))
    selected = [first]
    aggregate = selector.client_distributions[first].copy()
    available = np.ones(selector.n_clients, dtype=bool)
    available[first] = False
    while len(selected) < selector.participants_per_round:
        candidate_idx = np.flatnonzero(available)
        candidate_pop = (aggregate[None, :] + selector.client_distributions[candidate_idx])
        candidate_pop = candidate_pop / candidate_pop.sum(axis=1, keepdims=True)
        safe = np.clip(candidate_pop, 1e-12, None)
        kl = np.sum(safe * (np.log(safe) - np.log(selector.uniform[None, :])), axis=1)
        best = candidate_idx[int(np.argmin(kl))]
        selected.append(int(best))
        aggregate += selector.client_distributions[best]
        available[best] = False
    return selected


class TestGreedyRegression:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_identical_picks_to_reference_implementation(self, skewed_federation, seed):
        new = GreedySelector(skewed_federation, 20, seed=seed)
        old = GreedySelector(skewed_federation, 20, seed=seed)
        for round_index in range(5):
            assert new.select(round_index) == reference_greedy_select(old, round_index)

    def test_identical_picks_when_selecting_every_client(self):
        dists = np.random.default_rng(3).dirichlet(np.ones(6), size=12)
        new = GreedySelector(dists, 12, seed=4)
        old = GreedySelector(dists, 12, seed=4)
        assert new.select(0) == reference_greedy_select(old, 0)


class TestPopulationsOf:
    def test_equal_sized_candidates_match_population_of(self, skewed_federation):
        selector = RandomSelector(skewed_federation, 20, seed=0)
        candidates = [selector.select(r) for r in range(5)]
        batch = selector.populations_of(candidates)
        assert batch.shape == (5, 10)
        for row, candidate in zip(batch, candidates):
            np.testing.assert_array_equal(row, selector.population_of(candidate))

    def test_ragged_candidates_fall_back(self, skewed_federation):
        selector = RandomSelector(skewed_federation, 20, seed=0)
        candidates = [[0, 1, 2], [3, 4], [5, 6, 7]]
        batch = selector.populations_of(candidates)
        for row, candidate in zip(batch, candidates):
            np.testing.assert_allclose(row, selector.population_of(candidate))


class TestDubheSelector:
    def test_selects_exactly_k_distinct(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(k=20), seed=0)
        selected = selector.select(0)
        assert len(selected) == 20
        assert len(set(selected)) == 20

    def test_dubhe_beats_random_on_skewed_data(self, skewed_federation):
        dubhe = DubheSelector(skewed_federation, group1_config(k=20), seed=0)
        random_sel = RandomSelector(skewed_federation, 20, seed=0)
        dubhe_bias = np.mean([dubhe.bias_of(dubhe.select(r)) for r in range(20)])
        random_bias = np.mean([random_sel.bias_of(random_sel.select(r)) for r in range(20)])
        assert dubhe_bias < random_bias

    def test_registration_counts_match_client_count(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(), seed=0)
        assert selector.overall_registry.sum() == len(skewed_federation)
        assert len(selector.registrations) == len(skewed_federation)

    def test_probabilities_lie_in_unit_interval(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(), seed=0)
        assert np.all(selector.probabilities >= 0)
        assert np.all(selector.probabilities <= 1)

    def test_expected_pool_size_close_to_k(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(k=20), seed=0,
                                 rebalance_to_k=False)
        sizes = [len(selector._tentative_draw(0)) for _ in range(100)]
        assert np.mean(sizes) == pytest.approx(20, rel=0.3)

    def test_multi_time_selection_improves_bias(self, skewed_federation):
        one_shot = DubheSelector(skewed_federation, group1_config(k=20, h=1), seed=0)
        multi = DubheSelector(skewed_federation, group1_config(k=20, h=10), seed=0)
        bias_one = np.mean([one_shot.bias_of(one_shot.select(r)) for r in range(15)])
        bias_multi = np.mean([multi.bias_of(multi.select(r)) for r in range(15)])
        assert bias_multi <= bias_one + 0.02

    def test_last_bias_property(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(), seed=0)
        with pytest.raises(RuntimeError):
            _ = selector.last_bias
        selected = selector.select(0)
        assert selector.last_bias == pytest.approx(selector.bias_of(selected))

    def test_refresh_registrations(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(), seed=0)
        before = selector.overall_registry.copy()
        # clients' data drifts to balanced → everyone lands in the C block
        balanced = np.tile(np.full(10, 0.1), (len(skewed_federation), 1))
        selector.refresh_registrations(balanced)
        after = selector.overall_registry
        assert not np.allclose(before, after)
        # identical (balanced) clients all land in the same category
        assert after.max() == len(skewed_federation)
        with pytest.raises(ValueError):
            selector.refresh_registrations(balanced[:5])

    def test_population_and_bias_helpers(self, skewed_federation):
        selector = DubheSelector(skewed_federation, group1_config(), seed=0)
        selected = selector.select(0)
        pop = selector.population_of(selected)
        assert pop.shape == (10,)
        assert pop.sum() == pytest.approx(1.0)
        assert 0 <= selector.bias_of(selected) <= 2
