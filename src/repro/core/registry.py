"""The Dubhe registry: codebook construction and Algorithm 1 registration.

The registry (§5.1) is the one-hot encrypted vector through which a client
reveals — only in aggregate, never individually — which classes dominate its
local data.  Its codebook is the concatenation of one block per element
``i ∈ G``: block ``i`` has one slot per *combination* of ``i`` classes
(``C(C, i)`` slots), and a client whose ``i`` dominating classes are
``u = (c_1 < … < c_i)`` flips exactly the slot of that combination.

Algorithm 1 decides which block a client falls into: starting from the
smallest ``i ∈ G``, check whether the client's ``i``-th largest class
proportion reaches the threshold ``σ_i``; the first block that matches wins,
and the final block ``i = C`` (``σ_C = 0``) always matches, meaning "no
dominating classes / locally balanced".

Scale notes (million-client registries)
---------------------------------------
The codebook is **lazy** by default: a category's flat slot index is computed
by combinatorial (lexicographic) ranking — :func:`combination_rank` /
:func:`combination_from_rank` — instead of materialising all ``C(C, i)``
combinations in lookup tables, so a wide-``C`` block (say ``C(52, 26)``
slots) costs nothing to address.  ``materialize=True`` restores the eager
tables; the two construction modes are asserted index-identical by the
property suite.  :meth:`RegistryCodebook.register_batch` runs Algorithm 1
for N clients as a handful of array operations (no per-client Python work)
and returns a compact :class:`BatchRegistration` — two int64 arrays — rather
than N one-hot vectors, which is what lets registration stream to
N = 1,000,000 with O(batch) peak memory (see ``docs/scaling.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Iterator, Sequence

import numpy as np

from .config import DubheConfig

__all__ = [
    "BatchRegistration",
    "ClientCategory",
    "RegistryCodebook",
    "RegistrationResult",
    "combination_rank",
    "combination_from_rank",
]

#: Codebooks whose length fits comfortably in int64 rank with vectorised
#: Pascal-table lookups; anything larger falls back to exact Python ints.
_INT64_SAFE_LENGTH = 1 << 62


def combination_rank(classes: Sequence[int], num_classes: int) -> int:
    """Lexicographic rank of a sorted combination among ``C(C, k)`` peers.

    The rank is computed arithmetically (no table of combinations), which is
    what makes wide blocks addressable: ranking ``k`` classes costs ``O(k)``
    binomial evaluations regardless of how many ``C(C, k)`` combinations the
    block holds.

    Example
    -------
    >>> combination_rank((1, 2), 4)  # combos of 4 choose 2: (0,1) (0,2) (0,3) (1,2) ...
    3
    >>> [combination_rank(c, 4) for c in [(0, 1), (0, 2), (0, 3), (1, 2)]]
    [0, 1, 2, 3]
    """
    k = len(classes)
    rank = comb(num_classes, k) - 1
    for j, c in enumerate(classes):
        rank -= comb(num_classes - 1 - int(c), k - j)
    return rank


def combination_from_rank(rank: int, num_classes: int, size: int) -> tuple[int, ...]:
    """Inverse of :func:`combination_rank`: the combination at a given rank.

    Example
    -------
    >>> combination_from_rank(3, 4, 2)
    (1, 2)
    >>> combination_from_rank(combination_rank((2, 5, 7), 9), 9, 3)
    (2, 5, 7)
    """
    total = comb(num_classes, size)
    if not 0 <= rank < total:
        raise IndexError(f"rank {rank} outside [0, {total}) for C({num_classes}, {size})")
    classes = []
    remaining = total - 1 - rank  # combinations strictly after the target
    c = 0
    for j in range(size):
        # advance c until the suffix count drops to the remaining budget
        while comb(num_classes - 1 - c, size - j) > remaining:
            c += 1
        remaining -= comb(num_classes - 1 - c, size - j)
        classes.append(c)
        c += 1
    return tuple(classes)


@dataclass(frozen=True)
class ClientCategory:
    """A client's category ``u``: its dominating classes (sorted ascending).

    Example
    -------
    >>> ClientCategory((0, 3)).size
    2
    """

    classes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a category must contain at least one class")
        if list(self.classes) != sorted(set(self.classes)):
            raise ValueError("category classes must be sorted and unique")

    @property
    def size(self) -> int:
        """Number of dominating classes (the block ``i`` the category lives in)."""
        return len(self.classes)

    def __iter__(self):
        return iter(self.classes)


@dataclass(frozen=True)
class RegistrationResult:
    """Output of Algorithm 1 for one client.

    Example
    -------
    >>> import numpy as np
    >>> RegistrationResult(np.array([0.0, 1.0]), ClientCategory((1,)), 1, 1).index
    1
    """

    registry: np.ndarray          # the one-hot registry vector R^(t,k)
    category: ClientCategory      # the client category u^(t,k)
    block: int                    # which i ∈ G the client fell into
    index: int                    # flat index of the flipped slot


@dataclass(frozen=True)
class BatchRegistration:
    """Algorithm 1 output for N clients as two compact int64 arrays.

    The scaled counterpart of a ``list[RegistrationResult]``: 16 bytes per
    client instead of a one-hot float vector per client, so a million-client
    registration fits in ~16 MB.  Row ``k`` of the batch registered block
    ``blocks[k]`` at flat slot ``indices[k]``.

    Example
    -------
    >>> import numpy as np
    >>> batch = BatchRegistration(np.array([1, 10]), np.array([3, 55]), 56)
    >>> len(batch), int(batch.overall_registry().sum())
    (2, 2)
    """

    blocks: np.ndarray    # (N,) int64 — the i ∈ G each client fell into
    indices: np.ndarray   # (N,) int64 — flat slot index per client
    length: int           # codebook length the indices address

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def overall_registry(self) -> np.ndarray:
        """The dense overall registry ``R_A = Σ_k R^(t,k)`` via one bincount.

        Materialises a length-``length`` float vector — suitable for the
        paper's reference sets (tens of slots); for astronomically wide lazy
        codebooks use :meth:`slot_counts` instead.
        """
        return np.bincount(self.indices, minlength=self.length).astype(float)

    def slot_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Sparse aggregate: ``(occupied slot indices, client counts)``.

        Never allocates the dense registry, so it stays O(distinct
        categories) even when the codebook length does not fit in memory.
        """
        unique, counts = np.unique(self.indices, return_counts=True)
        return unique, counts.astype(float)


class RegistryCodebook:
    """Maps between client categories and registry vector positions.

    Lazy by default: slot indices come from combinatorial ranking and no
    per-combination table is built.  ``materialize=True`` builds the eager
    combination tables of the original implementation — kept as the
    reference the property suite checks the lazy arithmetic against (and as
    a micro-optimisation for tiny codebooks that are addressed millions of
    times).

    Example
    -------
    >>> config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
    ...                      thresholds={1: 0.7, 2: 0.1, 10: 0.0})
    >>> RegistryCodebook(config).length
    56
    """

    def __init__(self, config: DubheConfig, materialize: bool = False):
        if not config.has_all_thresholds():
            raise ValueError("all thresholds must be set before building the codebook")
        self.config = config
        self.num_classes = config.num_classes
        self.reference_set = config.reference_set
        # per-block offsets (Python ints: exact for arbitrarily wide blocks)
        self._block_offset: dict[int, int] = {}
        self._block_sizes: dict[int, int] = {}
        offset = 0
        for i in self.reference_set:
            self._block_offset[i] = offset
            self._block_sizes[i] = comb(self.num_classes, i)
            offset += self._block_sizes[i]
        self.length = offset
        # sorted (start, i) pairs for category_of's block search
        self._offset_order = sorted(
            (start, i) for i, start in self._block_offset.items()
        )
        self._combo_to_index: dict[tuple[int, ...], int] | None = None
        if materialize:
            self._combo_to_index = {}
            for i in self.reference_set:
                start = self._block_offset[i]
                for j, combo in enumerate(combinations(range(self.num_classes), i)):
                    self._combo_to_index[combo] = start + j

    @property
    def materialized(self) -> bool:
        """Whether the eager per-combination tables were built."""
        return self._combo_to_index is not None

    # -- codebook geometry -------------------------------------------------------

    def block_length(self, i: int) -> int:
        """Number of slots in block ``i`` (the combination count ``C(C, i)``)."""
        if i not in self._block_sizes:
            raise KeyError(f"{i} is not in the reference set")
        return self._block_sizes[i]

    def block_slice(self, i: int) -> slice:
        """The slice of the flat registry covered by block ``i``."""
        if i not in self._block_offset:
            raise KeyError(f"{i} is not in the reference set")
        start = self._block_offset[i]
        return slice(start, start + self.block_length(i))

    def block_categories(self, i: int) -> Iterator[tuple[int, ...]]:
        """Iterate block ``i``'s categories in slot order without materialising.

        Slot ``block_slice(i).start + j`` belongs to the ``j``-th tuple
        yielded (lexicographic order — the order combinatorial ranking
        addresses).
        """
        if i not in self._block_offset:
            raise KeyError(f"{i} is not in the reference set")
        return combinations(range(self.num_classes), i)

    def index_of(self, category: ClientCategory | Sequence[int]) -> int:
        """Flat registry index of a category."""
        classes = tuple(category.classes if isinstance(category, ClientCategory) else
                        sorted(category))
        if self._combo_to_index is not None:
            if classes not in self._combo_to_index:
                raise KeyError(f"category {classes} is not representable by this codebook")
            return self._combo_to_index[classes]
        size = len(classes)
        if (size not in self._block_offset
                or len(set(classes)) != size
                or any(not 0 <= int(c) < self.num_classes for c in classes)):
            raise KeyError(f"category {classes} is not representable by this codebook")
        return self._block_offset[size] + combination_rank(classes, self.num_classes)

    def category_of(self, index: int) -> ClientCategory:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.length:
            raise IndexError("registry index out of range")
        starts = [start for start, _ in self._offset_order]
        position = bisect_right(starts, int(index)) - 1
        start, i = self._offset_order[position]
        return ClientCategory(combination_from_rank(int(index) - start,
                                                    self.num_classes, i))

    def empty_registry(self) -> np.ndarray:
        """An all-zero registry vector of the right length."""
        return np.zeros(self.length)

    # -- Algorithm 1 ----------------------------------------------------------------

    def register(self, distribution: np.ndarray) -> RegistrationResult:
        """Run Algorithm 1 on a client's label distribution.

        Walks the reference set in ascending order; for each candidate number
        of dominating classes ``i``, takes the top-``i`` classes of the
        distribution and checks whether the ``i``-th largest proportion
        reaches ``σ_i``.  The ``i = C`` bucket (``σ_C = 0``) always matches,
        so every client registers exactly once.
        """
        p = np.asarray(distribution, dtype=float)
        if p.shape != (self.num_classes,):
            raise ValueError(
                f"distribution must have shape ({self.num_classes},), got {p.shape}"
            )
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-6):
            raise ValueError("distribution must be a probability vector")
        # classes ordered by decreasing proportion (ties broken by class id,
        # matching the argmax scan in Algorithm 1)
        order = np.lexsort((np.arange(self.num_classes), -p))
        for i in self.reference_set:
            sigma = self.config.threshold_for(i)
            if i > self.num_classes:
                continue
            top = order[:i]
            m_i = p[top[-1]] if i <= len(order) else 0.0
            if i == self.num_classes or m_i >= sigma:
                category = ClientCategory(tuple(sorted(int(c) for c in top)))
                index = self.index_of(category)
                registry = self.empty_registry()
                registry[index] = 1.0
                return RegistrationResult(registry, category, block=i, index=index)
        raise RuntimeError("Algorithm 1 failed to register the client")  # pragma: no cover

    def register_batch(self, distributions: np.ndarray) -> BatchRegistration:
        """Run Algorithm 1 for every row of ``distributions`` vectorised.

        One stable argsort plus a handful of gathers replace the per-client
        Python loop; ties are broken by ascending class id exactly as
        :meth:`register` does, and the property suite asserts per-row
        equality between the two paths.  Returns a :class:`BatchRegistration`
        (flat indices, no one-hot vectors), so peak memory is O(N) int64
        rather than O(N·L) float.
        """
        p = np.ascontiguousarray(distributions, dtype=np.float64)
        if p.ndim != 2 or p.shape[1] != self.num_classes:
            raise ValueError(
                f"distributions must have shape (N, {self.num_classes}), got {p.shape}"
            )
        if p.shape[0] == 0:
            raise ValueError("distributions is empty")
        if np.any(p < 0) or not np.allclose(p.sum(axis=1), 1.0, atol=1e-6):
            raise ValueError("every row must be a probability vector")
        n = p.shape[0]
        # stable argsort of -p == lexsort((arange, -p)): ties keep class order
        order = np.argsort(-p, axis=1, kind="stable")
        rows = np.arange(n)
        blocks = np.full(n, self.num_classes, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for i in self.reference_set:
            if i == self.num_classes:
                break  # σ_C = 0: whoever is left lands in the C block
            sigma = self.config.threshold_for(i)
            m_i = p[rows, order[:, i - 1]]
            matched = undecided & (m_i >= sigma)
            blocks[matched] = i
            undecided &= ~matched
        indices = np.empty(n, dtype=np.int64)
        for i in self.reference_set:
            members = np.flatnonzero(blocks == i)
            if members.size == 0:
                continue
            start = self._block_offset[i]
            if i == self.num_classes:
                indices[members] = start  # the single "no dominating class" slot
                continue
            top = np.sort(order[members, :i], axis=1)
            indices[members] = start + self._rank_rows(top, i)
        return BatchRegistration(blocks=blocks, indices=indices, length=self.length)

    def _rank_rows(self, top: np.ndarray, size: int) -> np.ndarray:
        """Vectorised :func:`combination_rank` over the rows of ``top``."""
        if self.length < _INT64_SAFE_LENGTH:
            table = self._comb_table()
            j = np.arange(size)
            suffix = table[self.num_classes - 1 - top, size - j]
            return table[self.num_classes, size] - 1 - suffix.sum(axis=1)
        # exact-integer fallback for codebooks wider than int64 ranks
        return np.array([combination_rank(row, self.num_classes) for row in top],
                        dtype=object)

    def _comb_table(self) -> np.ndarray:
        """Cached Pascal triangle ``table[n, k] = C(n, k)`` as int64."""
        table = getattr(self, "_comb_table_cache", None)
        if table is None:
            c = self.num_classes
            k_max = max(self.reference_set)
            table = np.zeros((c + 1, k_max + 1), dtype=np.int64)
            for n in range(c + 1):
                for k in range(min(n, k_max) + 1):
                    table[n, k] = comb(n, k)
            self._comb_table_cache = table
        return table

    def materialize_results(self, batch: BatchRegistration) -> list[RegistrationResult]:
        """Expand a :class:`BatchRegistration` into per-client results.

        The compatibility bridge for code that wants the original
        ``list[RegistrationResult]`` (one-hot vectors included); costs
        O(N·L) memory, so call it only at paper scale.
        """
        results = []
        for block, index in zip(batch.blocks, batch.indices):
            registry = self.empty_registry()
            registry[index] = 1.0
            results.append(RegistrationResult(
                registry, self.category_of(int(index)), block=int(block),
                index=int(index)))
        return results

    def register_many(self, distributions: Sequence[np.ndarray] | np.ndarray,
                      ) -> list[RegistrationResult]:
        """Register every client of a federation (row per client)."""
        return [self.register(np.asarray(p)) for p in distributions]

    def aggregate(self, registrations: Sequence[RegistrationResult]) -> np.ndarray:
        """The overall registry ``R_A = Σ_k R^(t,k)`` (plaintext path)."""
        if not registrations:
            raise ValueError("cannot aggregate zero registrations")
        total = self.empty_registry()
        for reg in registrations:
            total += reg.registry
        return total

    def describe(self, overall_registry: np.ndarray, max_entries: int | None = None) -> list[dict]:
        """Human-readable view of an overall registry (Figure 10 style).

        Returns one record per non-zero slot: the category, its block and the
        client count, sorted by decreasing count.
        """
        overall = np.asarray(overall_registry)
        if overall.shape != (self.length,):
            raise ValueError("overall registry has the wrong length")
        entries = []
        for index in np.flatnonzero(overall):
            category = self.category_of(int(index))
            entries.append({
                "category": tuple(category.classes),
                "block": category.size,
                "count": float(overall[index]),
            })
        entries.sort(key=lambda e: -e["count"])
        if max_entries is not None:
            entries = entries[:max_entries]
        return entries
