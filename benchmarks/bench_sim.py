#!/usr/bin/env python
"""Federated-round throughput benchmark: executor back-ends head-to-head.

Measures the hot loop of the simulation — one full round of local updates
for the K selected clients (ship global weights, train locally, return
states) plus server aggregation — under each execution back-end of
:class:`repro.federated.LocalUpdateExecutor`:

* ``sequential`` — one client after another (the reference);
* ``thread`` / ``process`` — pool-based parallelism over clients;
* ``vectorized`` — the cohort back-end: all K clients stacked into one
  batched tensor program (:mod:`repro.nn.batched`).

The workload is the paper's group-1 client configuration (B = 8, E = 1,
Adam 1e-4) over equal-size virtual clients (``N_VC`` samples each, the
FedVC convention) with the benchmark MLP.  Before timing, the harness
asserts that every back-end reproduces the sequential per-client states to
≤ 1e-10 from the same starting weights.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim.py

which writes ``BENCH_sim.json`` next to this repository's ROADMAP.  Use
``--ks 32 --modes sequential,vectorized --min-speedup 1`` as a CI smoke
check (exits non-zero when the vectorized back-end fails to beat
sequential by the given factor in client-updates/sec at the gate K).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")) and \
        os.path.join(_REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.data.synthetic import make_synthetic_mnist  # noqa: E402
from repro.federated.client import FederatedClient, LocalTrainingConfig  # noqa: E402
from repro.federated.executor import LocalUpdateExecutor  # noqa: E402
from repro.federated.server import FederatedServer  # noqa: E402
from repro.nn.models import MLP  # noqa: E402

#: samples per virtual client (N_VC); a multiple of B = 8 so every
#: optimisation step runs a full batch
SAMPLES_PER_CLIENT = 64

#: hidden width of the benchmark MLP (64-dim synthetic MNIST features -> 10)
HIDDEN = (32,)

EQUIVALENCE_TOL = 1e-10


def model_factory():
    return MLP(64, 10, hidden=HIDDEN, seed=7)


def make_cohort(n_clients: int) -> list[FederatedClient]:
    """K equal-size virtual clients with pre-materialised synthetic data."""
    generator = make_synthetic_mnist(seed=0)
    per_class = SAMPLES_PER_CLIENT // generator.num_classes
    remainder = SAMPLES_PER_CLIENT - per_class * generator.num_classes
    counts = [per_class + (1 if c < remainder else 0)
              for c in range(generator.num_classes)]
    clients = []
    for k in range(n_clients):
        dataset = generator.generate(counts, rng=np.random.default_rng(10_000 + k))
        clients.append(FederatedClient(k, generator.num_classes, dataset=dataset,
                                       seed=20_000 + k))
    return clients


def check_equivalence(mode: str, clients, config) -> float:
    """Max |Δ| between this mode's per-client states and sequential ones."""
    server = FederatedServer(model_factory)
    global_state = server.global_state()
    reference = LocalUpdateExecutor("sequential").run_round(
        clients, model_factory, global_state, config, round_index=0)
    states = LocalUpdateExecutor(mode).run_round(
        clients, model_factory, global_state, config, round_index=0)
    worst = 0.0
    for a, b in zip(reference, states):
        for key in a:
            worst = max(worst, float(np.max(np.abs(a[key] - b[key]))))
    if worst > EQUIVALENCE_TOL:
        raise AssertionError(
            f"{mode} diverges from sequential by {worst:.3e} (> {EQUIVALENCE_TOL})"
        )
    return worst


def bench_mode(mode: str, n_clients: int, rounds: int, config) -> dict:
    """Time *rounds* full rounds (local updates + aggregation) under *mode*."""
    clients = make_cohort(n_clients)
    worst = check_equivalence(mode, clients, config)
    server = FederatedServer(model_factory)
    executor = LocalUpdateExecutor(mode)
    steps_per_client = (SAMPLES_PER_CLIENT + config.batch_size - 1) // config.batch_size
    # warm-up round (pools, caches, BLAS threads)
    states = executor.run_round(clients, model_factory, server.global_state(),
                                config, round_index=0)
    server.aggregate(states)
    start = perf_counter()
    for r in range(1, rounds + 1):
        states = executor.run_round(clients, model_factory,
                                    server.global_state(copy=False), config,
                                    round_index=r)
        server.aggregate(states)
    elapsed = perf_counter() - start
    return {
        "mode": mode,
        "rounds_per_s": round(rounds / elapsed, 3),
        "client_updates_per_s": round(rounds * n_clients / elapsed, 1),
        "local_steps_per_s": round(rounds * n_clients * steps_per_client
                                   * config.local_epochs / elapsed, 1),
        "round_ms": round(elapsed / rounds * 1e3, 3),
        "max_abs_diff_vs_sequential": worst,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ks", default="8,32,128",
                        help="comma-separated cohort sizes K to benchmark")
    parser.add_argument("--modes", default="sequential,thread,process,vectorized",
                        help="comma-separated executor modes")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per (mode, K) point")
    parser.add_argument("--out", default=os.path.join(_REPO_ROOT, "BENCH_sim.json"),
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when vectorized client-updates/sec "
                             "at --gate-k falls below this multiple of sequential")
    parser.add_argument("--gate-k", type=int, default=32,
                        help="cohort size checked by --min-speedup")
    args = parser.parse_args(argv)

    ks = [int(k) for k in args.ks.split(",")]
    modes = [m.strip() for m in args.modes.split(",")]
    config = LocalTrainingConfig()  # paper group 1: B=8, E=1, Adam 1e-4
    results = []
    for n_clients in ks:
        row = {"k": n_clients, "samples_per_client": SAMPLES_PER_CLIENT,
               "modes": {}}
        for mode in modes:
            print(f"benchmarking K={n_clients} mode={mode} ...", flush=True)
            measurement = bench_mode(mode, n_clients, args.rounds, config)
            row["modes"][mode] = measurement
            print(f"  {measurement['round_ms']:.1f} ms/round, "
                  f"{measurement['client_updates_per_s']:.0f} client-updates/s")
        if "sequential" in row["modes"]:
            base = row["modes"]["sequential"]["client_updates_per_s"]
            row["speedup_vs_sequential"] = {
                mode: round(m["client_updates_per_s"] / base, 2)
                for mode, m in row["modes"].items() if mode != "sequential"
            }
        results.append(row)

    payload = {
        "benchmark": "simulation_throughput",
        "generated_by": "benchmarks/bench_sim.py",
        "machine": {"python": platform.python_version(),
                    "platform": platform.platform(),
                    "cpus": os.cpu_count()},
        "workload": {
            "model": f"MLP(64, 10, hidden={list(HIDDEN)})",
            "local": {"batch_size": config.batch_size,
                      "local_epochs": config.local_epochs,
                      "optimizer": config.optimizer,
                      "learning_rate": config.learning_rate},
            "samples_per_client": SAMPLES_PER_CLIENT,
            "equivalence_tol": EQUIVALENCE_TOL,
        },
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        gate = next((r for r in results if r["k"] == args.gate_k), None)
        if gate is None or "vectorized" not in gate["modes"] \
                or "sequential" not in gate["modes"]:
            print(f"FAIL: gate needs sequential+vectorized at K={args.gate_k}",
                  file=sys.stderr)
            return 1
        achieved = gate["speedup_vs_sequential"]["vectorized"]
        if achieved < args.min_speedup:
            print(f"FAIL: vectorized speedup {achieved}x < required "
                  f"{args.min_speedup}x at K={args.gate_k}", file=sys.stderr)
            return 1
        print(f"OK: vectorized speedup {achieved}x >= {args.min_speedup}x "
              f"at K={args.gate_k}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
