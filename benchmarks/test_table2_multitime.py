"""Table 2 — the multi-time selection study.

Paper setup: the group-1 federation (ρ = 10, EMD_avg = 1.5, N = 1000,
K = 20); for H ∈ {1, 2, 5, 10, 20} run Dubhe with an H-time tentative
selection and report:

* ``EMD* = ||p_o,h* − p_u||₁`` — the bias of the chosen try (decreases with H:
  paper values 0.2946 → 0.1750 from H = 1 to H = 20, greedy "opt" 0.0144);
* the resulting model accuracy on MNIST and CIFAR10 and the improvement
  fraction β relative to the single-time selection (greedy = 100 %).

Reproduced here: the full EMD* column at the paper's federation size (cheap,
selection only), plus a reduced-scale training comparison for H ∈ {1, 10} on
the MNIST-like task to show the accuracy moving toward the greedy bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import build_federation, make_selector, print_table, run_training
from repro.core import DubheConfig, DubheSelector, GreedySelector
from repro.data import EMDTargetPartitioner, half_normal_class_proportions

H_VALUES = (1, 2, 5, 10, 20)
N_CLIENTS = 1000
K = 20
RHO = 10.0
EMD_AVG = 1.5
SELECTION_ROUNDS = 40
PAPER_THRESHOLDS = {1: 0.7, 2: 0.1, 10: 0.0}

# training comparison (reduced scale)
TRAIN_CLIENTS = 80
TRAIN_K = 10
TRAIN_ROUNDS = 40
TAIL = 8


def paper_scale() -> dict:
    return {"H": H_VALUES, "n_clients": 1000, "k": 20,
            "paper_emd_star": {1: 0.2946, 2: 0.2588, 5: 0.2176, 10: 0.1971, 20: 0.1750,
                               "opt": 0.0144},
            "paper_beta_mnist": {2: 0.176, 5: 0.105, 10: 0.695, 20: 0.515},
            "paper_beta_cifar": {2: 0.148, 5: 0.126, 10: 0.095, 20: 0.188}}


@pytest.mark.benchmark(group="table2")
def test_table2_emd_star_vs_h(benchmark):
    """EMD* decreases as the number of tentative selections H grows."""
    global_dist = half_normal_class_proportions(10, RHO)
    partition = EMDTargetPartitioner(N_CLIENTS, 128, EMD_AVG, seed=10).partition(global_dist)
    distributions = partition.client_distributions()

    def experiment():
        emd_star = {}
        for h in H_VALUES:
            config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                                 thresholds=PAPER_THRESHOLDS, participants_per_round=K,
                                 tentative_selections=h, seed=10)
            selector = DubheSelector(distributions, config, seed=10)
            biases = []
            for r in range(SELECTION_ROUNDS):
                selector.select(r)
                biases.append(selector.last_bias)
            emd_star[h] = float(np.mean(biases))
        greedy = GreedySelector(distributions, K, seed=10)
        emd_star["opt"] = float(np.mean(
            [greedy.bias_of(greedy.select(r)) for r in range(10)]
        ))
        return emd_star

    emd_star = benchmark.pedantic(experiment, rounds=1, iterations=1)

    paper = paper_scale()["paper_emd_star"]
    rows = [{"H": h, "emd_star": round(emd_star[h], 4), "paper": paper[h]}
            for h in list(H_VALUES) + ["opt"]]
    print_table("Table 2: EMD* versus the number of tentative selections H", rows)

    # EMD* decreases (weakly) with H and the greedy bound is far tighter
    assert emd_star[20] < emd_star[1]
    assert emd_star[10] < emd_star[1]
    series = [emd_star[h] for h in H_VALUES]
    assert all(b <= a + 0.03 for a, b in zip(series, series[1:]))
    assert emd_star["opt"] < emd_star[20]


@pytest.mark.benchmark(group="table2")
def test_table2_accuracy_improvement(benchmark):
    """Accuracy with H = 10 moves from the H = 1 result toward the greedy bound."""
    fed = build_federation("mnist", rho=RHO, emd_avg=EMD_AVG, n_clients=TRAIN_CLIENTS, seed=11)

    def experiment():
        results = {}
        for name, h in (("dubhe_h1", 1), ("dubhe_h10", 10)):
            selector = make_selector("dubhe", fed, TRAIN_K, h=h, seed=11)
            results[name] = run_training(fed, selector, rounds=TRAIN_ROUNDS, k=TRAIN_K,
                                         model="mlp", eval_every=2, seed=11)
        greedy = make_selector("greedy", fed, TRAIN_K, seed=11)
        results["greedy"] = run_training(fed, greedy, rounds=TRAIN_ROUNDS, k=TRAIN_K,
                                         model="mlp", eval_every=2, seed=11)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    acc = {name: h.tail_average_accuracy(TAIL) for name, h in results.items()}
    bias = {name: h.mean_population_bias() for name, h in results.items()}
    denom = acc["greedy"] - acc["dubhe_h1"]
    beta = (acc["dubhe_h10"] - acc["dubhe_h1"]) / denom if abs(denom) > 1e-6 else float("nan")
    rows = [
        {"setting": name, "tail_acc": round(acc[name], 3), "mean_bias": round(bias[name], 3)}
        for name in ("dubhe_h1", "dubhe_h10", "greedy")
    ]
    print_table("Table 2 (reduced scale): accuracy with multi-time selection", rows)
    print(f"\nimprovement fraction β (H=10 vs greedy gap): {beta:.2f} "
          f"(paper MNIST: 0.695 at H=10)")

    # the H = 10 selection is less biased than the one-off selection
    assert bias["dubhe_h10"] <= bias["dubhe_h1"] + 0.02
    # and its accuracy does not regress relative to the one-off selection
    assert acc["dubhe_h10"] >= acc["dubhe_h1"] - 0.05
