#!/usr/bin/env python
"""Fault-injection scenario: churn + dropouts + stragglers under Dubhe selection.

Runs the same seeded scenario on every requested executor back-end and
verifies the engine's reproducibility contract: each back-end sees identical
planned/actual participation (faults are a pure function of the scenario
seed, the round and the client), and each completes the run.  Per round it
prints the paper's metrics — population EMD ``||p_o − p_u||₁`` for the
planned and the actually-aggregated cohort — next to the failure census.

Run it with::

    python examples/scenario_run.py
    python examples/scenario_run.py --backends sequential,vectorized --rounds 8

Used as the CI scenario-smoke gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DubheConfig,
    DubheSelector,
    FederatedConfig,
    LocalTrainingConfig,
    ScenarioSpec,
    Session,
    make_uniform_test_set,
    quick_federation,
)
from repro.nn.models import MLP
from repro.scenarios import AvailabilitySpec, ChurnSpec, DropoutSpec, StragglerSpec


def build_scenario(n_clients: int) -> ScenarioSpec:
    """Churn + availability + stragglers + dropouts with a 40 % round floor."""
    late_joiners = {n_clients - 1 - i: 2 + i for i in range(3)}
    leavers = {i: 4 + i for i in range(2)}
    return ScenarioSpec(
        churn=ChurnSpec(joins=late_joiners, leaves=leavers),
        availability=AvailabilitySpec(offline_probability=0.1),
        stragglers=StragglerSpec(probability=0.25, mean_delay=4.0, deadline=6.0),
        dropouts=DropoutSpec(probability=0.1),
        min_participation=0.4,
        seed=7,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backends", default="sequential,vectorized,parallel",
                        help="comma-separated executor modes to run and compare")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--clients", type=int, default=24)
    parser.add_argument("--participants", type=int, default=8)
    args = parser.parse_args()
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]

    partition, generator = quick_federation(
        n_clients=args.clients, samples_per_client=24, rho=5.0, emd_avg=1.0,
        seed=0)
    test_set = make_uniform_test_set(generator, samples_per_class=5, seed=1)
    distributions = partition.client_distributions()
    dubhe = DubheConfig(num_classes=10, participants_per_round=args.participants,
                        thresholds={1: 0.7, 2: 0.1, 10: 0.0})
    scenario = build_scenario(args.clients)
    print(f"Scenario: churn({len(scenario.churn.joins)} joins, "
          f"{len(scenario.churn.leaves)} leaves), 10% offline, "
          f"25% stragglers (deadline 6s), 10% dropouts, "
          f"participation floor {scenario.min_participation:.0%}, "
          f"seed {scenario.seed}\n")

    logs: dict[str, list] = {}
    for mode in backends:
        session = Session(
            FederatedConfig(
                rounds=args.rounds,
                executor_mode=mode,
                num_workers=2 if mode == "parallel" else None,
                local=LocalTrainingConfig(batch_size=8, local_epochs=1,
                                          learning_rate=1e-3),
                seed=0,
            ),
        ).with_federation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(32,), seed=3),
            selector=DubheSelector(distributions, dubhe, seed=0),
            test_set=test_set,
        ).with_scenario(scenario, name=mode)
        with session:
            report = session.run().report
            history = session.simulation.history
        assert len(history) == args.rounds, f"{mode} did not complete"
        logs[mode] = [(r.selected_clients, r.participants, dict(r.failures))
                      for r in history.records]

        print(f"=== {mode} ===")
        print(f"{'round':>5}  {'EMD planned':>11}  {'EMD actual':>10}  "
              f"{'accuracy':>8}  {'delay':>6}  failures")
        for r in history.records:
            actual = (r.population_bias if r.actual_population_bias is None
                      else r.actual_population_bias)
            failures = (", ".join(f"{k}:{c}" for k, c in sorted(r.failures.items()))
                        or "-")
            skipped = "  [skipped]" if r.aggregation_skipped else ""
            print(f"{r.round_index:>5}  {r.population_bias:>11.4f}  "
                  f"{actual:>10.4f}  {r.test_accuracy:>8.3f}  "
                  f"{r.round_delay:>5.1f}s  {failures}{skipped}")
        summary = report.summary()
        print(f"  failures by cause  : {summary['failures']}")
        print(f"  skipped rounds     : {summary['skipped_rounds']}")
        print(f"  baseline bias      : {summary['baseline_bias']:.4f}")
        print(f"  final accuracy     : {summary['final_accuracy']:.3f}\n")

    reference = backends[0]
    for mode in backends[1:]:
        assert logs[mode] == logs[reference], (
            f"participation logs diverged between {reference} and {mode}")
    if len(backends) > 1:
        print(f"OK: identical planned/actual participation across "
              f"{', '.join(backends)}")


if __name__ == "__main__":
    main()
