"""The in-process transport must be a zero-cost wrapper over the executors.

``InProcessTransport`` is the seam the simulation speaks through when no
socket layer is configured; these tests pin that it forwards ``run_round``
verbatim (bit-identical states, mirrored telemetry), that ``build_transport``
maps configs to the right implementation, and that a simulation built
through the default config behaves exactly as the pre-transport executor
path did.
"""

import numpy as np
import pytest

from repro.core.config import ExecutorConfig, TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.transport import InProcessTransport, Transport, build_transport


def make_cohort(n_clients=3, seed=0):
    from repro import quick_federation
    from repro.federated.client import FederatedClient

    partition, generator = quick_federation(n_clients=n_clients,
                                            samples_per_client=12, seed=seed)
    clients = []
    for index in range(n_clients):
        counts = partition.client_class_counts[index]
        data_seed = seed + 100_003 * index

        def factory(counts=counts, data_seed=data_seed):
            return generator.generate(counts,
                                      rng=np.random.default_rng(data_seed))

        clients.append(FederatedClient(client_id=index,
                                       num_classes=partition.num_classes,
                                       dataset_factory=factory,
                                       seed=data_seed))
    return clients


def make_model_factory(seed=7):
    from repro.nn.models import MLP

    return lambda: MLP(64, 10, hidden=(8,), seed=seed)


class TestBuildTransport:
    def test_default_is_inprocess(self):
        transport = build_transport()
        assert isinstance(transport, InProcessTransport)
        assert transport.executor.mode == "sequential"
        transport.close()

    def test_executor_group_configures_the_backend(self):
        transport = build_transport(TransportConfig(),
                                    ExecutorConfig(mode="vectorized",
                                                   dtype="float32"))
        assert transport.executor.mode == "vectorized"
        transport.close()

    def test_socket_kind_builds_a_socket_transport(self):
        from repro.transport import SocketTransport

        transport = build_transport(TransportConfig(kind="socket"))
        assert isinstance(transport, SocketTransport)
        transport.close()


class TestInProcessForwarding:
    def test_states_match_the_bare_executor_bit_for_bit(self):
        clients = make_cohort()
        model_factory = make_model_factory()
        global_state = model_factory().state_dict()
        config = LocalTrainingConfig(batch_size=4, local_epochs=1)

        bare = LocalUpdateExecutor("sequential")
        expected = bare.run_round(clients, model_factory, global_state,
                                  config, round_index=0)
        bare.close()

        transport = InProcessTransport(LocalUpdateExecutor("sequential"))
        actual = transport.run_round(make_cohort(), model_factory,
                                     global_state, config, round_index=0)
        transport.close()

        assert len(actual) == len(expected)
        for state_a, state_b in zip(actual, expected):
            for name in state_b:
                assert np.array_equal(state_a[name], state_b[name])

    def test_telemetry_is_mirrored(self):
        transport = InProcessTransport(LocalUpdateExecutor("sequential"))
        transport.run_round([], make_model_factory(), {},
                            LocalTrainingConfig())
        assert transport.last_round_failures == {}
        assert transport.last_round_delay == 0.0
        assert transport.last_fallback_reason is None
        transport.close()

    def test_interface_hooks_are_noops_in_process(self):
        transport = build_transport()
        transport.broadcast_probabilities(0, [0.5, 0.5])
        transport.on_round_complete(record=None)
        transport.close()

    def test_close_is_idempotent_and_context_managed(self):
        with build_transport() as transport:
            pass
        transport.close()  # second close must not raise

    def test_transport_is_abstract(self):
        with pytest.raises(TypeError):
            Transport()


class TestSimulationSeam:
    def test_simulation_exposes_both_transport_and_executor(self):
        from repro import FederatedConfig, Session

        session = Session(FederatedConfig(rounds=1, seed=0)).with_recipe(
            "repro.ledger.recipes:quick_mlp", n_clients=6, participants=2,
            seed=0)
        simulation = session.build()
        try:
            assert isinstance(simulation.transport, InProcessTransport)
            assert simulation.executor is simulation.transport.executor
        finally:
            session.close()
