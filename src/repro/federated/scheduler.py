"""Multi-cohort parallel scheduling: shard K across process-parallel blocks.

The vectorized back-end (:mod:`repro.nn.batched`) folds the cohort's client
loop into batched tensor ops, but one batched program still runs on one
core.  The paper trains "the participated clients as parallel processes" on
a multi-GPU box; this module is the CPU analogue: a :class:`CohortScheduler`
partitions the K selected clients into ``num_workers`` shards
(:func:`repro.core.config.partition_cohort`) and runs each shard as an
independent vectorized block inside a **persistent worker process**.

Design
------
* **Workers are warm.**  Each worker owns its own round-persistent
  :class:`~repro.federated.workspace.CohortWorkspace` (flat parameter pools,
  fused optimiser state) that survives across rounds exactly like the
  single-process vectorized runtime — the first round builds, later rounds
  rebind.
* **No per-round pickling.**  All bulk state crosses the process boundary
  through shared-memory pools (:func:`repro.federated.workspace.shared_pool`)
  allocated before the workers fork: the round's flattened global parameters
  (parent writes, workers read), each shard's stacked ``(K_s, N_vc, …)``
  cohort data (parent restacks only changed slots via an externally-backed
  :class:`~repro.data.cohort.CohortBuffer`), and each shard's flat result
  pool (worker writes its trained parameter stack, parent merges).  The
  per-round pipe message is just ``(round_index, config, client seeds)``.
* **Deterministic merge.**  Per-shard results scatter back into one
  ``(K, *shape)`` stack per parameter in the original selection order, so
  the mean-over-client-axis aggregation sees exactly the array the
  single-process vectorized mode would have produced.  Every batched kernel
  treats clients as independent slices, so with float64 pools the parallel
  results are **bit-identical** to ``executor_mode="vectorized"`` (the suite
  asserts ≤ 1e-10 over multi-round runs with changing selections).
* **Fail towards correctness.**  A dead or wedged worker marks the scheduler
  broken and raises :class:`SchedulerError`;
  :class:`~repro.federated.LocalUpdateExecutor` catches it and transparently
  falls back to the in-process vectorized round (and from there, if needed,
  to the sequential reference).  Geometry changes (different K, data shape
  or model architecture) rebuild the worker fleet rather than guessing.
"""

from __future__ import annotations

import multiprocessing
import weakref
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.config import (
    partition_cohort,
    resolve_num_workers,
    resolve_runtime_dtype,
    resolve_shard_policy,
)
from ..data.cohort import CohortBuffer, CohortShapeError
from ..nn.batched import BatchedModel
from ..nn.module import Module
from .aggregation import StackedClientStates
from .client import FederatedClient, LocalTrainingConfig
from .workspace import CohortWorkspace, shared_pool, train_cohort

__all__ = ["CohortScheduler", "SchedulerError"]

StateDict = dict[str, np.ndarray]


class SchedulerError(RuntimeError):
    """The parallel scheduler cannot serve this round (callers fall back).

    Raised for worker crashes/timeouts, platforms without the ``fork`` start
    method, and worker-reported round failures.  The executor treats it like
    an unvectorizable cohort: the round transparently re-runs on the
    in-process vectorized (then sequential) back-end and the reason is
    recorded in ``LocalUpdateExecutor.last_fallback_reason``.

    Example
    -------
    >>> try:
    ...     raise SchedulerError("worker 0 died")
    ... except SchedulerError as exc:
    ...     reason = str(exc)
    >>> reason
    'worker 0 died'
    """


def _template_fingerprint(module: Module) -> tuple:
    """A structural fingerprint of a template model beyond parameter shapes.

    Two factories can produce models with identical parameter layouts but
    different arithmetic (another dropout rate, another pooling stride, a
    different RNG seed); the worker fleet bakes its factory in at fork time,
    so such a change must rebuild the fleet rather than silently train the
    stale program.  The fingerprint walks the module tree collecting layer
    types and their scalar configuration attributes — everything
    :meth:`BatchedLayer.rebind` would inspect — while skipping parameters,
    arrays and RNG state (which legitimately differ between fresh templates).
    """
    entries: list = [type(module).__name__]
    for attr, value in sorted(module.__dict__.items()):
        if attr.startswith("_"):
            continue
        if isinstance(value, Module):
            entries.append((attr, _template_fingerprint(value)))
        elif isinstance(value, (list, tuple)):
            children = tuple(_template_fingerprint(item) for item in value
                             if isinstance(item, Module))
            if children:
                entries.append((attr, children))
            elif all(isinstance(item, (int, float, bool, str, type(None)))
                     for item in value):
                entries.append((attr, tuple(value)))
        elif isinstance(value, (int, float, bool, str, type(None))):
            entries.append((attr, value))
    return tuple(entries)


def _flat_layout(template: Module) -> "tuple[list[tuple[str, int, tuple[int, ...]]], int]":
    """Replicate ``BatchedModel._repack_flat``'s param-major pool layout.

    Returns ``([(name, offset, shape), ...], total)`` where *offset*/*total*
    count per-client scalars: a K-client pool stores parameter ``p`` at
    ``[K * offset_p, K * (offset_p + size_p))`` reshaped to ``(K, *shape)``.
    Parameters shared under two names occupy one segment (both names map to
    the same offset), matching the dedup in ``_repack_flat`` — whose flat
    pool packs the deduped segments first, so *total* here is the length of
    the pool's **used prefix** (the pool itself is over-allocated for tied
    parameters).
    """
    layout: list[tuple[str, int, tuple[int, ...]]] = []
    offsets: dict[int, int] = {}
    total = 0
    for name, param in template.named_parameters():
        if id(param) not in offsets:
            offsets[id(param)] = total
            total += param.value.size
        layout.append((name, offsets[id(param)], param.value.shape))
    return layout, total


def _worker_main(conn, model_factory: Callable[[], Module], shard_size: int,
                 dtype: np.dtype, global_pool: np.ndarray,
                 x: np.ndarray, y: np.ndarray, result: np.ndarray) -> None:
    """Worker body: serve vectorized shard rounds until told to stop.

    Runs in a forked child.  All arrays are views onto parent-allocated
    shared pools; the only pipe traffic is the per-round
    ``("round", round_index, config, seeds)`` request and a
    ``("done",)``/``("error", message)`` reply.
    """
    workspace: Optional[CohortWorkspace] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away: nothing left to serve
            return
        if message[0] == "stop":
            conn.close()
            return
        _, round_index, config, seeds = message
        try:
            template = model_factory()
            if workspace is None or not workspace.adopt(template, shard_size):
                workspace = CohortWorkspace(template, shard_size, dtype=dtype)
            batched = workspace.model
            layout, _ = _flat_layout(template)
            batched.load_state_dict_broadcast({
                name: global_pool[offset : offset + int(np.prod(shape))
                                  ].reshape(shape)
                for name, offset, shape in layout
            })
            optimizer = workspace.optimizer_for(config)
            rngs = [
                np.random.default_rng(
                    None if seed is None else seed + 7919 * round_index
                )
                for seed in seeds
            ]
            train_cohort(batched, optimizer, x, y, rngs, config,
                         rows=workspace.client_rows)
            # copy the used prefix only: for parameters shared under two
            # names the model's pool is over-allocated past the result pool
            result[:] = batched.flat_values[: result.size]
            conn.send(("done",))
        except Exception as exc:  # noqa: BLE001 - relayed to the parent verbatim
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


def _terminate_workers(workers, conns) -> None:
    """Best-effort fleet teardown (also registered as a GC finalizer)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for worker in workers:
        worker.join(timeout=2.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass


class CohortScheduler:
    """Run each round's cohort as ``num_workers`` process-parallel shards.

    The scheduler is round-persistent: the first round forks the worker
    fleet and allocates every shared pool; later rounds with the same
    *geometry* (cohort size, data shape, model architecture, dtype) reuse
    both, restacking only the data slots whose selected client changed.  A
    geometry change tears the fleet down and rebuilds it
    (:attr:`builds` counts fleet builds); a worker crash or timeout marks
    the scheduler :attr:`broken` so the executor permanently falls back.

    Used through ``executor_mode="parallel"`` rather than directly:

    Example
    -------
    >>> from repro.federated import LocalUpdateExecutor
    >>> executor = LocalUpdateExecutor("parallel", num_workers=2)
    >>> executor.scheduler is None  # built lazily on the first round
    True
    >>> executor.close()
    """

    def __init__(self, num_workers: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 dtype: "str | np.dtype" = "float64",
                 timeout: Optional[float] = 120.0):
        self.num_workers = resolve_num_workers(num_workers)
        self.shard_policy = resolve_shard_policy(shard_policy)
        self.dtype = resolve_runtime_dtype(dtype)
        #: seconds to wait for a worker's round reply before declaring it
        #: wedged (None waits forever — only sensible in debuggers)
        self.timeout = timeout
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SchedulerError(
                "the parallel scheduler needs the 'fork' start method (its "
                "shared pools and model factories are fork-inherited); "
                "unavailable on this platform"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list = []
        self._conns: list = []
        self._shards: list[np.ndarray] = []
        self._buffers: list[CohortBuffer] = []
        self._results: list[np.ndarray] = []
        self._global: Optional[np.ndarray] = None
        self._layout: list[tuple[str, int, tuple[int, ...]]] = []
        self._stacked: StateDict = {}
        self._per_client: list[StateDict] = []
        self._geometry: Optional[tuple] = None
        self._finalizer: Optional[weakref.finalize] = None
        #: how many times the worker fleet was (re)built
        self.builds = 0
        #: rounds successfully served by this scheduler
        self.rounds_dispatched = 0
        #: why the scheduler is permanently out of service (or None)
        self.broken: Optional[str] = None

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker and release the fleet (pools stay GC-managed).

        Idempotent; the scheduler can build a fresh fleet afterwards unless
        it is :attr:`broken`.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _terminate_workers(self._workers, self._conns)
        self._workers = []
        self._conns = []
        self._shards = []
        self._buffers = []
        self._results = []
        self._global = None
        self._stacked = {}
        self._per_client = []
        self._geometry = None

    def _mark_broken(self, reason: str) -> "SchedulerError":
        self.broken = reason
        self.shutdown()
        return SchedulerError(reason)

    def _check_rectangular(self, datasets) -> tuple:
        reference = np.asarray(datasets[0].x).shape
        for k, ds in enumerate(datasets[1:], start=1):
            if np.asarray(ds.x).shape != reference:
                raise CohortShapeError(
                    f"client {k} has data shape {np.asarray(ds.x).shape}, "
                    f"expected {reference}; ragged cohorts cannot be sharded"
                )
        return reference

    def _build(self, template: Module, num_clients: int, sample_shape: tuple,
               y_dtype: np.dtype, model_factory: Callable[[], Module]) -> None:
        """Fork a fresh worker fleet over freshly allocated shared pools."""
        self.shutdown()
        # cheap parent-side vectorization pre-check: refuse unregistered
        # models/layers here, before any process is forked
        BatchedModel(template, 1, dtype=self.dtype)
        self._layout, per_client = _flat_layout(template)
        try:
            self._shards = partition_cohort(num_clients, self.num_workers,
                                            self.shard_policy)
            self._global = shared_pool((per_client,), np.float64, self._ctx)
            for indices in self._shards:
                shard_size = len(indices)
                x = shared_pool((shard_size,) + sample_shape, self.dtype,
                                self._ctx)
                y = shared_pool((shard_size,) + sample_shape[:1], y_dtype,
                                self._ctx)
                result = shared_pool((shard_size * per_client,), self.dtype,
                                     self._ctx)
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                worker = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, model_factory, shard_size, self.dtype,
                          self._global, x, y, result),
                    daemon=True,
                    name=f"cohort-shard-{len(self._conns)}",
                )
                worker.start()
                child_conn.close()
                self._workers.append(worker)
                self._conns.append(parent_conn)
                self._buffers.append(
                    CohortBuffer(shard_size, dtype=self.dtype, arrays=(x, y)))
                self._results.append(result)
        except OSError as exc:
            # fork limits, /dev/shm exhaustion, pipe limits: stop whatever
            # part of the fleet already started and let the executor fall
            # back instead of crashing the round
            self.shutdown()
            raise SchedulerError(f"worker fleet build failed: {exc}") from exc
        # persistent merge stacks: geometry-stable, so allocated once here
        # and only copied into per round (their views are what run_round
        # returns — valid until the next round, like the vectorized pools)
        self._stacked = {
            name: np.empty((num_clients,) + shape, dtype=self.dtype)
            for name, _, shape in self._layout
        }
        self._per_client = [
            {name: self._stacked[name][k] for name, _, _ in self._layout}
            for k in range(num_clients)
        ]
        # GC safety net: a dropped scheduler (test teardown, interpreter
        # exit) still stops its fleet even when close() was never called
        self._finalizer = weakref.finalize(self, _terminate_workers,
                                           self._workers, self._conns)
        self.builds += 1

    # -- the round -------------------------------------------------------------

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict, config: LocalTrainingConfig,
                  round_index: int = 0) -> StackedClientStates:
        """Train *clients* from *global_state* across the worker shards.

        Returns the same :class:`StackedClientStates` the vectorized
        back-end produces (per-client dicts as views into one ``(K, *shape)``
        stack per parameter, clients in selection order).  Raises
        :class:`SchedulerError` / :class:`~repro.data.cohort.CohortShapeError`
        / :class:`~repro.nn.batched.UnvectorizableModelError` when the round
        cannot be served; callers fall back to the in-process back-ends.

        Example
        -------
        >>> # via the executor, which owns fallback handling:
        >>> from repro.federated import LocalUpdateExecutor
        >>> executor = LocalUpdateExecutor("parallel", num_workers=2)
        >>> # states = executor.run_round(clients, factory, state, config)
        >>> executor.close()
        """
        if self.broken:
            raise SchedulerError(self.broken)
        slots = [client.cohort_slot() for client in clients]
        datasets = [ds for _, ds in slots]
        sample_shape = self._check_rectangular(datasets)
        y_dtype = np.asarray(datasets[0].y).dtype
        template = model_factory()
        geometry = (
            len(clients), sample_shape, y_dtype.str, self.dtype.name,
            tuple((name, offset, shape) for name, offset, shape
                  in _flat_layout(template)[0]),
            # layer types + scalar config (dropout rate, strides, seeds, …):
            # a factory change the parameter layout cannot see must still
            # re-fork the fleet, whose workers captured the old factory
            _template_fingerprint(template),
        )
        if geometry != self._geometry:
            self._build(template, len(clients), sample_shape, y_dtype,
                        model_factory)
            self._geometry = geometry

        # 1. bring the shared pools up to date: only changed data slots copy,
        #    and the global parameters flatten straight into the shared block
        for indices, buffer in zip(self._shards, self._buffers):
            buffer.stack([slots[j] for j in indices])
        for name, offset, shape in self._layout:
            size = int(np.prod(shape))
            np.copyto(
                self._global[offset : offset + size].reshape(shape),
                np.asarray(global_state[name], dtype=np.float64),
            )

        # 2. dispatch the round, then drain every reply (keeping the pipe
        #    protocol in lock-step even when one shard reports an error)
        for shard_index, (conn, indices) in enumerate(zip(self._conns,
                                                          self._shards)):
            try:
                conn.send(("round", round_index, config,
                           [clients[j].seed for j in indices]))
            except (OSError, ValueError):
                raise self._mark_broken(
                    f"worker {shard_index} is gone (send failed, exitcode="
                    f"{self._workers[shard_index].exitcode})"
                ) from None
        errors: list[str] = []
        for shard_index, (conn, worker) in enumerate(zip(self._conns,
                                                         self._workers)):
            try:
                if self.timeout is not None and not conn.poll(self.timeout):
                    raise self._mark_broken(
                        f"worker {shard_index} did not answer within "
                        f"{self.timeout:.0f}s"
                    )
                reply = conn.recv()
            except (EOFError, OSError):
                raise self._mark_broken(
                    f"worker {shard_index} died mid-round "
                    f"(exitcode={worker.exitcode})"
                ) from None
            if reply[0] == "error":
                errors.append(f"shard {shard_index}: {reply[1]}")
        if errors:
            raise SchedulerError("; ".join(errors))

        # 3. merge: scatter per-shard result pools back into the persistent
        #    (K, *shape) stack per parameter, in the original selection
        #    order — exactly the array the single-process vectorized round
        #    would have built (and, like its pools, overwritten next round)
        for name, offset, shape in self._layout:
            size = int(np.prod(shape))
            stack = self._stacked[name]
            for indices, result in zip(self._shards, self._results):
                shard_size = len(indices)
                stack[indices] = result[
                    shard_size * offset : shard_size * (offset + size)
                ].reshape((shard_size,) + shape)
        for client in clients:
            client.rounds_participated += 1
        self.rounds_dispatched += 1
        return StackedClientStates(self._per_client, self._stacked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.broken or (f"{len(self._workers)} workers"
                                if self._workers else "idle")
        return (f"CohortScheduler(num_workers={self.num_workers}, "
                f"policy={self.shard_policy!r}, dtype={self.dtype.name}, "
                f"builds={self.builds}, {state})")
