"""Docstring audit of the public API (a pydocstyle-style gate, stdlib-only).

The documentation site renders the audited modules' docstrings directly
(mkdocstrings), so gaps there become gaps in the published reference.  The
audited surface — everything the docs' runtime guides lean on — must
satisfy:

* every audited module has a module docstring;
* every public module-level class and function has a docstring **with an
  example** (a ``>>>`` doctest-style snippet), so the API reference always
  shows how to call it.  Exception classes and ``typing.Protocol``
  definitions only need a docstring (an "example" of raising an error or of
  an abstract protocol adds nothing);
* every public method of those classes has a docstring.

Extend ``AUDITED_MODULES`` when a new module joins the documented public
surface.
"""

import inspect
import typing

import pytest

import repro.api
import repro.api.session
import repro.core.multitime
import repro.core.probability
import repro.core.registry
import repro.core.retry
import repro.core.secure
import repro.core.selectors
import repro.crypto.packing
import repro.federated
import repro.federated.aggregation
import repro.federated.client
import repro.federated.executor
import repro.federated.history
import repro.federated.scheduler
import repro.federated.server
import repro.federated.simulation
import repro.federated.workspace
import repro.ledger
import repro.ledger.cli
import repro.ledger.codec
import repro.ledger.context
import repro.ledger.modes
import repro.ledger.recipes
import repro.ledger.store
import repro.nn.batched
import repro.scenarios.engine
import repro.scenarios.report
import repro.scenarios.spec
import repro.transport
import repro.transport.base
import repro.transport.chaos
import repro.transport.client
import repro.transport.messages
import repro.transport.server
import repro.transport.wire

AUDITED_MODULES = [
    repro.api,
    repro.api.session,
    repro.core.multitime,
    repro.core.probability,
    repro.core.registry,
    repro.core.retry,
    repro.core.secure,
    repro.core.selectors,
    repro.federated,
    repro.federated.aggregation,
    repro.federated.client,
    repro.federated.executor,
    repro.federated.history,
    repro.federated.scheduler,
    repro.federated.server,
    repro.federated.simulation,
    repro.federated.workspace,
    repro.ledger,
    repro.ledger.cli,
    repro.ledger.codec,
    repro.ledger.context,
    repro.ledger.modes,
    repro.ledger.recipes,
    repro.ledger.store,
    repro.nn.batched,
    repro.crypto.packing,
    repro.scenarios.engine,
    repro.scenarios.report,
    repro.scenarios.spec,
    repro.transport,
    repro.transport.base,
    repro.transport.chaos,
    repro.transport.client,
    repro.transport.messages,
    repro.transport.server,
    repro.transport.wire,
]

#: inherited members whose docstrings live on the base/stdlib class
_INHERITED_OK = frozenset(dir(list) + dir(Exception) + dir(dict))


def _public_objects(module):
    """(name, obj) pairs for the module's public classes and functions."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported: audited where it is defined
        yield name, obj


def _needs_example(obj) -> bool:
    if inspect.isclass(obj):
        if issubclass(obj, BaseException):
            return False
        if getattr(obj, "_is_protocol", False) or typing.get_origin(obj):
            return False
    return True


def _audit_cases():
    for module in AUDITED_MODULES:
        for name, obj in _public_objects(module):
            yield pytest.param(module, name, obj,
                               id=f"{module.__name__}.{name}")


class TestModuleDocstrings:
    @pytest.mark.parametrize("module", AUDITED_MODULES,
                             ids=lambda m: m.__name__)
    def test_module_has_docstring(self, module):
        assert (module.__doc__ or "").strip(), \
            f"{module.__name__} has no module docstring"


class TestPublicObjectDocstrings:
    @pytest.mark.parametrize("module,name,obj", _audit_cases())
    def test_docstring_present(self, module, name, obj):
        assert (inspect.getdoc(obj) or "").strip(), \
            f"{module.__name__}.{name} has no docstring"

    @pytest.mark.parametrize("module,name,obj", _audit_cases())
    def test_docstring_has_example(self, module, name, obj):
        if not _needs_example(obj):
            pytest.skip("exceptions/protocols only need a docstring")
        doc = inspect.getdoc(obj) or ""
        assert ">>>" in doc, (
            f"{module.__name__}.{name}'s docstring has no '>>>' example; "
            "the API reference should always show a usage snippet"
        )

    @pytest.mark.parametrize("module,name,obj", _audit_cases())
    def test_public_methods_have_docstrings(self, module, name, obj):
        if not inspect.isclass(obj):
            pytest.skip("functions have no methods")
        undocumented = []
        for attr, member in vars(obj).items():
            if attr.startswith("_"):
                continue
            if attr in _INHERITED_OK:
                continue
            if isinstance(member, property):
                func = member.fget
            elif inspect.isfunction(member):
                func = member
            else:
                continue
            if not (inspect.getdoc(func) or "").strip():
                undocumented.append(attr)
        assert not undocumented, (
            f"{module.__name__}.{name} has undocumented public members: "
            f"{undocumented}"
        )
