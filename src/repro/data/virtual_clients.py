"""FedVC-style virtual clients (§4.1 of the paper).

The paper borrows the *virtual client* idea from FedVC (Hsu et al.): clients
with large datasets are split into several virtual clients, and clients with
small datasets duplicate samples, so that **every virtual client holds
exactly ``N_VC`` samples**.  With equal-sized clients the FedAvg aggregation
reduces to the plain average of selected client models (eq. (1)), and every
client takes the same number of optimisation steps per round.

This module converts an arbitrary real-client partition (per-client class
counts) into a virtual-client partition satisfying that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .partition import ClientPartition

__all__ = ["VirtualClientMapping", "make_virtual_clients"]


@dataclass
class VirtualClientMapping:
    """Result of virtualisation: the new partition plus provenance."""

    partition: ClientPartition
    #: ``origin[v]`` is the index of the real client that virtual client ``v``
    #: was carved out of.
    origin: np.ndarray
    samples_per_client: int

    @property
    def n_virtual(self) -> int:
        return self.partition.n_clients

    def virtual_of(self, real_client: int) -> np.ndarray:
        """Indices of the virtual clients derived from *real_client*."""
        return np.flatnonzero(self.origin == real_client)


def _resample_counts(counts: np.ndarray, target: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Draw *target* samples (with replacement if needed) following *counts*.

    Keeps the class proportions of the real client while forcing the exact
    virtual-client size.  Sampling with replacement implements the FedVC
    duplication rule for small clients.
    """
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot virtualise a client with no samples")
    probs = counts / total
    return rng.multinomial(target, probs)


def make_virtual_clients(partition: ClientPartition, samples_per_client: int,
                         seed: Optional[int] = None) -> VirtualClientMapping:
    """Convert a real-client partition into equal-sized virtual clients.

    * A real client with ``n ≥ 2 · N_VC`` samples is split into
      ``floor(n / N_VC)`` virtual clients.
    * A real client with fewer samples produces one virtual client whose
      samples are drawn (with duplication when necessary) from its data.

    The class proportions of each real client are preserved in expectation.
    """
    if samples_per_client < 1:
        raise ValueError("samples_per_client must be positive")
    rng = np.random.default_rng(seed)
    new_counts: list[np.ndarray] = []
    origin: list[int] = []
    for k in range(partition.n_clients):
        counts = partition.client_class_counts[k].astype(int)
        total = int(counts.sum())
        if total == 0:
            continue
        n_virtual = max(1, total // samples_per_client)
        for _ in range(n_virtual):
            new_counts.append(_resample_counts(counts, samples_per_client, rng))
            origin.append(k)
    if not new_counts:
        raise ValueError("partition contains no samples to virtualise")
    new_partition = ClientPartition(
        np.vstack(new_counts),
        partition.num_classes,
        metadata={**partition.metadata, "virtualised": True,
                  "samples_per_client": samples_per_client},
    )
    return VirtualClientMapping(new_partition, np.asarray(origin, dtype=int), samples_per_client)
