"""Tests for the analysis utilities: bias statistics, sweeps, weight divergence."""

import numpy as np
import pytest

from repro.analysis.divergence import weight_divergence_experiment
from repro.analysis.emd import baseline_global_bias, measure_selection_bias
from repro.analysis.unbiasedness import bias_reduction, run_unbiasedness_sweep
from repro.core.config import DubheConfig
from repro.core.selectors import RandomSelector
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import make_synthetic_mnist
from repro.nn.models import MLP


@pytest.fixture(scope="module")
def federation():
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(120, 64, 1.5, seed=0).partition(global_dist)
    return partition.client_distributions()


class TestSelectionBiasStats:
    def test_measure_random_selector(self, federation):
        selector = RandomSelector(federation, 10, seed=0)
        stats = measure_selection_bias(selector, federation, repetitions=30)
        assert stats.selector_name == "random"
        assert stats.repetitions == 30
        assert 0 <= stats.mean_bias <= 2
        assert stats.std_bias >= 0
        assert len(stats.biases) == 30
        assert stats.as_row()["K"] == 10

    def test_invalid_repetitions(self, federation):
        with pytest.raises(ValueError):
            measure_selection_bias(RandomSelector(federation, 5, seed=0), federation, 0)

    def test_baseline_global_bias(self, federation):
        bias = baseline_global_bias(federation)
        assert 0 < bias < 2
        with pytest.raises(ValueError):
            baseline_global_bias(np.empty((0, 10)))

    def test_empty_selection_raises(self, federation):
        class BadSelector:
            def select(self, r):
                return []

        with pytest.raises(RuntimeError):
            measure_selection_bias(BadSelector(), federation, repetitions=2)


class TestUnbiasednessSweep:
    def test_sweep_shapes_and_ordering(self, federation):
        def config_factory(k):
            return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                               thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                               participants_per_round=k)

        sweep = run_unbiasedness_sweep(
            federation, participation_counts=(10, 40), config_factory=config_factory,
            repetitions=25, seed=0,
        )
        assert sweep.participation_counts == (10, 40)
        assert set(sweep.stats) == {"random", "greedy", "dubhe"}
        assert sweep.mean_series("dubhe").shape == (2,)
        assert len(sweep.as_rows()) == 6
        # Dubhe should beat random at the low participation rate on skewed data
        assert sweep.mean_series("dubhe")[0] < sweep.mean_series("random")[0]
        assert bias_reduction(sweep) > 0

    def test_sweep_without_greedy(self, federation):
        def config_factory(k):
            return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                               thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                               participants_per_round=k)

        sweep = run_unbiasedness_sweep(federation, (10,), config_factory,
                                       repetitions=5, seed=0, include_greedy=False)
        assert "greedy" not in sweep.stats

    def test_invalid_participation_counts(self, federation):
        def config_factory(k):
            return DubheConfig(num_classes=10, reference_set=(1, 10),
                               thresholds={1: 0.7, 10: 0.0}, participants_per_round=k)

        with pytest.raises(ValueError):
            run_unbiasedness_sweep(federation, (0,), config_factory, repetitions=2)
        with pytest.raises(ValueError):
            run_unbiasedness_sweep(federation, (10_000,), config_factory, repetitions=2)
        with pytest.raises(ValueError):
            run_unbiasedness_sweep(federation[0], (5,), config_factory, repetitions=2)


class TestWeightDivergence:
    def _client_datasets(self, emds, seed=0):
        gen = make_synthetic_mnist(seed=seed)
        datasets = []
        rng = np.random.default_rng(seed)
        for spec in emds:
            datasets.append(gen.generate(spec, rng=rng))
        return gen, datasets

    def test_report_fields(self):
        gen, datasets = self._client_datasets([[6] * 10, [6] * 10])
        report = weight_divergence_experiment(
            lambda: MLP(gen.flat_feature_dim(), 10, hidden=(16,), seed=0),
            datasets, num_classes=10, rounds=1, local_steps=3, seed=0,
        )
        assert report.weight_divergence >= 0
        assert report.emd_clients_to_population == pytest.approx(0.0, abs=1e-9)
        assert 0 <= report.emd_population_to_uniform <= 2
        assert report.rounds == 1

    def test_divergence_grows_with_client_discrepancy(self):
        gen = make_synthetic_mnist(seed=1)
        rng = np.random.default_rng(0)
        iid = [gen.generate([5] * 10, rng=rng) for _ in range(4)]
        non_iid_specs = [[20 if c < 3 else 0 for c in range(10)],
                         [20 if 3 <= c < 6 else 0 for c in range(10)],
                         [20 if 6 <= c < 8 else 0 for c in range(10)],
                         [20 if c >= 8 else 0 for c in range(10)]]
        non_iid = [gen.generate(spec, rng=rng) for spec in non_iid_specs]

        def factory():
            return MLP(gen.flat_feature_dim(), 10, hidden=(16,), seed=5)

        # full-batch local steps remove mini-batch-order noise so the client-
        # drift effect of eq. (2) dominates the measured divergence
        iid_report = weight_divergence_experiment(factory, iid, 10, rounds=2,
                                                  local_steps=10, lr=0.1,
                                                  batch_size=200, seed=0)
        non_iid_report = weight_divergence_experiment(factory, non_iid, 10, rounds=2,
                                                      local_steps=10, lr=0.1,
                                                      batch_size=200, seed=0)
        assert non_iid_report.emd_clients_to_population > iid_report.emd_clients_to_population
        assert non_iid_report.weight_divergence > iid_report.weight_divergence

    def test_invalid_arguments(self):
        gen, datasets = self._client_datasets([[2] * 10])
        factory = lambda: MLP(gen.flat_feature_dim(), 10, seed=0)
        with pytest.raises(ValueError):
            weight_divergence_experiment(factory, [], 10)
        with pytest.raises(ValueError):
            weight_divergence_experiment(factory, datasets, 10, rounds=0)

        calls = [0]

        def bad_factory():
            calls[0] += 1
            return MLP(gen.flat_feature_dim(), 10, seed=calls[0])

        with pytest.raises(ValueError):
            weight_divergence_experiment(bad_factory, datasets, 10)
