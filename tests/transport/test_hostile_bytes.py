"""Fuzzing the server's trust boundary with hostile byte streams.

Whatever a peer writes into the socket — a frame cut off mid-header, a
length prefix promising gigabytes, random bit-flips over a valid frame, or
plain noise — the server must (1) never crash its event loop, (2) never
hang a reader task, (3) answer decodable-but-damaged frames with a
structured :class:`~repro.transport.messages.ErrorNotice` and a counted
decode failure, and (4) keep serving well-formed clients on fresh
connections.  Hypothesis drives the hostile inputs; after every example the
same live server must still complete a full register handshake.
"""

import socket

import pytest
from _hypothesis_support import scaled_max_examples
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import TransportConfig
from repro.transport import SocketTransport
from repro.transport.messages import (
    Register,
    RegisterAck,
    decode_message,
    encode_message,
)
from repro.transport.wire import frame_header

#: a sacrificial id space for the fuzzer's handshake probes, far away from
#: any id the hostile frames might carry
_PROBE_ID = 900_000

VALID_FRAME = encode_message(Register(7, 10, 64))


@pytest.fixture(scope="module")
def transport():
    transport = SocketTransport(TransportConfig(
        kind="socket", connect_timeout=10.0, max_frame_bytes=1 << 20))
    transport.start()
    yield transport
    transport.close()


def assert_still_serving(transport, probe_id):
    """The liveness oracle: a fresh, valid handshake must still succeed."""
    sock = socket.create_connection(transport.address, timeout=10.0)
    try:
        sock.sendall(encode_message(Register(probe_id, 10, 8)))
        sock.settimeout(10.0)
        data = b""
        while len(data) < 8:
            chunk = sock.recv(8 - len(data))
            assert chunk, "server closed a healthy connection"
            data += chunk
        _, length = frame_header(data, 1 << 20)
        while len(data) < 8 + length + 4:
            chunk = sock.recv(8 + length + 4 - len(data))
            assert chunk, "server truncated its own reply"
            data += chunk
        ack, _ = decode_message(data)
        assert isinstance(ack, RegisterAck) and ack.client_id == probe_id
    finally:
        sock.close()


def send_hostile(transport, payload):
    sock = socket.create_connection(transport.address, timeout=10.0)
    try:
        sock.sendall(payload)
        # give the server a moment to reply (ErrorNotice) or hang up; we
        # don't parse the reply — hostile senders rarely do.  A short drain
        # window is enough: the liveness probe that follows is the oracle.
        sock.settimeout(0.25)
        try:
            while sock.recv(4096):
                pass
        except (socket.timeout, ConnectionError, OSError):
            pass
    finally:
        sock.close()


class TestHostileBytes:
    @settings(max_examples=scaled_max_examples(20), deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cut=st.integers(min_value=0, max_value=len(VALID_FRAME) - 1),
           probe=st.integers(min_value=0, max_value=1 << 16))
    def test_mid_frame_truncation_never_wedges_the_server(
            self, transport, cut, probe):
        # a peer that dies mid-frame: header, length prefix, or payload cut
        send_hostile(transport, VALID_FRAME[:cut])
        assert_still_serving(transport, _PROBE_ID + probe)

    @settings(max_examples=scaled_max_examples(20), deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(length=st.integers(min_value=(1 << 20) + 1, max_value=1 << 40),
           probe=st.integers(min_value=0, max_value=1 << 16))
    def test_oversized_length_prefix_is_rejected_before_allocation(
            self, transport, length, probe):
        hostile = bytearray(VALID_FRAME[:8])
        hostile[4:8] = (length & 0xFFFFFFFF).to_bytes(4, "big")
        before = dict(transport.decode_failures)
        send_hostile(transport, bytes(hostile))
        assert_still_serving(transport, _PROBE_ID + probe)
        if (length & 0xFFFFFFFF) > (1 << 20):
            # an in-range-but-over-cap announcement is a counted decode
            # failure on the unidentified-peer key, not a silent drop
            assert transport.decode_failures.get(-1, 0) > before.get(-1, 0)

    @settings(max_examples=scaled_max_examples(30), deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(bit=st.integers(min_value=0, max_value=len(VALID_FRAME) * 8 - 1),
           probe=st.integers(min_value=0, max_value=1 << 16))
    def test_single_bit_flips_never_crash_or_hang(self, transport, bit, probe):
        damaged = bytearray(VALID_FRAME)
        damaged[bit // 8] ^= 1 << (bit % 8)
        send_hostile(transport, bytes(damaged))
        assert_still_serving(transport, _PROBE_ID + probe)

    @settings(max_examples=scaled_max_examples(20), deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(noise=st.binary(min_size=1, max_size=256),
           probe=st.integers(min_value=0, max_value=1 << 16))
    def test_arbitrary_noise_never_crashes_the_loop(self, transport, noise,
                                                    probe):
        send_hostile(transport, noise)
        assert_still_serving(transport, _PROBE_ID + probe)


class TestDecodeFailureTelemetry:
    def test_corrupt_frame_from_a_registered_client_is_attributed(self):
        transport = SocketTransport(TransportConfig(
            kind="socket", connect_timeout=10.0))
        transport.start()
        try:
            sock = socket.create_connection(transport.address, timeout=10.0)
            sock.sendall(encode_message(Register(5, 10, 8)))
            # flip a payload bit of the *next* frame: the CRC catches it
            damaged = bytearray(encode_message(Register(5, 10, 8)))
            damaged[-6] ^= 0x10
            sock.sendall(bytes(damaged))
            sock.settimeout(5.0)
            try:
                while sock.recv(4096):
                    pass
            except (socket.timeout, ConnectionError, OSError):
                pass
            sock.close()
            # attributed to client 5 (it registered first), and the
            # disconnect cause names the corruption
            assert transport.decode_failures.get(5) == 1
            assert transport.disconnects.get(5) == "corrupt_frame"
        finally:
            transport.close()
