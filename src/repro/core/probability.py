"""Participation-probability calculation (eq. (6)–(8) of the paper).

After the overall registry ``R_A`` is decrypted by the clients, each client
``k`` in category ``u`` computes its own participation probability

``P^(t,k) = min(1, K / (R_A(u) · ||R_A||₀))``

where ``R_A(u)`` is the number of clients registered in the same category and
``||R_A||₀`` the number of non-empty categories.  Two identities follow and
are verified by the tests and the property-based suite:

* the expected number of participants is exactly ``K`` (eq. (7)), provided
  ``K < ||R_A||₀ · min_u R_A(u)`` so no probability saturates at 1;
* the expected number of participants *per category* is ``K / ||R_A||₀``
  (eq. (8)), which is what equalises the frequency of each class appearing as
  a dominating class and thereby flattens the population distribution.

:func:`participation_probabilities` is fully vectorised: for N clients it is
one gather and a handful of array ops over a contiguous float64 registry —
no per-client Python work — and accepts either the original
``list[RegistrationResult]``, a scaled :class:`~repro.core.registry.BatchRegistration`,
or a bare integer index array.  The scalar :func:`participation_probability`
is kept as the readable single-client reference the property suite compares
against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .registry import BatchRegistration, RegistrationResult, RegistryCodebook

__all__ = [
    "participation_probability",
    "participation_probabilities",
    "expected_participants",
    "expected_category_count",
    "bernoulli_participation",
]

Registrations = Union[BatchRegistration, Sequence[RegistrationResult], np.ndarray]


def participation_probability(overall_registry: np.ndarray, category_index: int,
                              participants_per_round: int) -> float:
    """Eq. (6) for a single client given its category's flat registry index.

    Example
    -------
    >>> import numpy as np
    >>> participation_probability(np.array([2.0, 0.0, 2.0]), 0, 2)
    0.5
    """
    overall = np.asarray(overall_registry, dtype=float)
    if participants_per_round < 1:
        raise ValueError("participants_per_round must be positive")
    if not 0 <= category_index < overall.size:
        raise IndexError("category index out of range")
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    count_in_category = overall[category_index]
    if count_in_category <= 0:
        # the client's own registration guarantees R_A(u) >= 1 in a consistent
        # protocol; a zero here means the caller passed mismatched inputs
        raise ValueError("category has no registered clients in the overall registry")
    return float(min(1.0, participants_per_round / (count_in_category * support)))


def _registration_indices(registrations: Registrations) -> np.ndarray:
    """Flat registry indices of a registration collection as int64."""
    if isinstance(registrations, BatchRegistration):
        return registrations.indices
    if isinstance(registrations, np.ndarray):
        return np.ascontiguousarray(registrations, dtype=np.int64)
    return np.array([reg.index for reg in registrations], dtype=np.int64)


def participation_probabilities(codebook: RegistryCodebook,
                                registrations: Registrations,
                                overall_registry: np.ndarray,
                                participants_per_round: int) -> np.ndarray:
    """Eq. (6) evaluated for every registered client, vectorised.

    One gather of ``R_A`` at each client's slot followed by array ops —
    bit-identical to calling :func:`participation_probability` per client
    (same divisions in the same order per element), which the scale
    equivalence suite asserts at N = 10^5.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.config import DubheConfig
    >>> config = DubheConfig(num_classes=2, reference_set=(1, 2),
    ...                      thresholds={1: 0.9, 2: 0.0})
    >>> codebook = RegistryCodebook(config)
    >>> overall = np.array([2.0, 0.0, 2.0])
    >>> participation_probabilities(codebook, np.array([0, 0, 2, 2]), overall, 2)
    array([0.5, 0.5, 0.5, 0.5])
    """
    overall = np.ascontiguousarray(overall_registry, dtype=np.float64)
    if participants_per_round < 1:
        raise ValueError("participants_per_round must be positive")
    indices = _registration_indices(registrations)
    if indices.size == 0:
        return np.empty(0, dtype=np.float64)
    if indices.min() < 0 or indices.max() >= overall.size:
        raise IndexError("category index out of range")
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    counts = overall[indices]
    if np.any(counts <= 0):
        raise ValueError("category has no registered clients in the overall registry")
    probs = participants_per_round / (counts * support)
    np.minimum(probs, 1.0, out=probs)
    return probs


def expected_participants(overall_registry: np.ndarray, participants_per_round: int) -> float:
    """Eq. (7): the expected size of the selection pool ``E|S_t|``.

    Equals ``K`` exactly when no category's probability saturates at 1;
    saturated categories contribute their full client count instead.
    Vectorised over the registry's occupied slots.

    Example
    -------
    >>> import numpy as np
    >>> expected_participants(np.array([3.0, 0.0, 5.0]), 4)
    4.0
    """
    overall = np.asarray(overall_registry, dtype=float)
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    counts = overall[overall > 0]
    probs = np.minimum(1.0, participants_per_round / (counts * support))
    return float(np.sum(counts * probs))


def expected_category_count(overall_registry: np.ndarray, category_index: int,
                            participants_per_round: int) -> float:
    """Eq. (8): the expected number of participants from one category.

    Example
    -------
    >>> import numpy as np
    >>> expected_category_count(np.array([3.0, 0.0, 5.0]), 0, 4)
    2.0
    """
    overall = np.asarray(overall_registry, dtype=float)
    support = int(np.count_nonzero(overall))
    if support == 0:
        raise ValueError("overall registry is empty")
    count = overall[category_index]
    if count <= 0:
        return 0.0
    p = min(1.0, participants_per_round / (count * support))
    return float(count * p)


def bernoulli_participation(probabilities: np.ndarray,
                            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Each client independently decides to participate (client autonomy).

    Returns the indices of clients whose Bernoulli draw succeeded.  This is
    the step where Dubhe's "clients proactively participate" property lives:
    the server never picks specific clients, it only learns who volunteered.

    Example
    -------
    >>> import numpy as np
    >>> volunteers = bernoulli_participation(np.array([1.0, 0.0, 1.0]))
    >>> volunteers.tolist()
    [0, 2]
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if np.any(probabilities < 0) or np.any(probabilities > 1):
        raise ValueError("probabilities must lie in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    draws = rng.random(probabilities.shape)
    return np.flatnonzero(draws < probabilities)
