"""Gradient checks: every layer's backward pass against numerical differentiation."""

import numpy as np
import pytest

from repro.nn.conv import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sequential
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f with respect to array x."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer: Module, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare analytic input gradients with numerical ones for sum(output)."""
    out = layer(x)
    analytic = layer.backward(np.ones_like(out))

    def loss():
        return float(layer(x).sum())

    numeric = numerical_gradient(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_parameter_gradients(layer: Module, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare analytic parameter gradients with numerical ones for sum(output)."""
    layer.zero_grad()
    out = layer(x)
    layer.backward(np.ones_like(out))
    for name, p in layer.named_parameters():
        def loss():
            return float(layer(x).sum())

        numeric = numerical_gradient(loss, p.value)
        np.testing.assert_allclose(p.grad, numeric, atol=atol, err_msg=name)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(6, 4, seed=0)
        assert layer(rng.normal(size=(3, 6))).shape == (3, 4)

    def test_input_gradient(self, rng):
        check_input_gradient(Linear(5, 3, seed=0), rng.normal(size=(4, 5)))

    def test_parameter_gradients(self, rng):
        check_parameter_gradients(Linear(5, 3, seed=0), rng.normal(size=(4, 5)))

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, seed=0)
        assert layer.bias is None
        check_parameter_gradients(layer, rng.normal(size=(3, 4)))

    def test_wrong_input_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 2, seed=0)(rng.normal(size=(3, 5)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Linear(4, 2, seed=0).backward(np.zeros((3, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestActivationsAndShaping:
    def test_relu_gradient(self, rng):
        check_input_gradient(ReLU(), rng.normal(size=(4, 6)) + 0.05)

    def test_relu_zeroes_negatives(self):
        out = ReLU()(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 48)
        np.testing.assert_allclose(layer.backward(out), x)

    def test_dropout_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer(x), x)

    def test_dropout_train_mode_masks(self, rng):
        layer = Dropout(0.5, seed=0)
        x = np.ones((200, 10))
        out = layer(x)
        dropped = (out == 0).mean()
        assert 0.3 < dropped < 0.7
        # surviving entries are scaled by 1/keep
        assert np.allclose(out[out != 0], 2.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_before_forward_errors(self):
        for layer in (ReLU(), Flatten()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 1)))


class TestSequential:
    def test_forward_backward_chain(self, rng):
        model = Sequential(Linear(6, 5, seed=0), ReLU(), Linear(5, 2, seed=1))
        check_input_gradient(model, rng.normal(size=(3, 6)))

    def test_len_and_getitem(self):
        model = Sequential(Linear(3, 3, seed=0), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential()


class TestConv2d:
    def test_forward_shape(self, rng):
        conv = Conv2d(2, 4, kernel_size=3, padding=1, seed=0)
        assert conv(rng.normal(size=(2, 2, 6, 6))).shape == (2, 4, 6, 6)

    def test_forward_shape_stride(self, rng):
        conv = Conv2d(1, 3, kernel_size=3, stride=2, seed=0)
        assert conv(rng.normal(size=(2, 1, 7, 7))).shape == (2, 3, 3, 3)

    def test_input_gradient(self, rng):
        check_input_gradient(Conv2d(2, 3, kernel_size=3, padding=1, seed=0),
                             rng.normal(size=(2, 2, 4, 4)))

    def test_parameter_gradients(self, rng):
        check_parameter_gradients(Conv2d(2, 2, kernel_size=3, padding=1, seed=0),
                                  rng.normal(size=(2, 2, 4, 4)))

    def test_matches_manual_convolution(self):
        conv = Conv2d(1, 1, kernel_size=2, bias=False, seed=0)
        conv.weight.value = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv(x)
        expected = np.array([[[[0 - 4, 1 - 5], [3 - 7, 4 - 8]]]], dtype=float)
        np.testing.assert_allclose(out, expected)

    def test_wrong_channels_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 2, kernel_size=3)(rng.normal(size=(1, 1, 4, 4)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=3, stride=0)


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out, [[[[5, 7], [13, 15]]]])

    def test_maxpool_input_gradient(self, rng):
        # add tiny noise so no ties make the subgradient ambiguous
        x = rng.normal(size=(2, 2, 4, 4)) * 10
        check_input_gradient(MaxPool2d(2), x)

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avgpool_input_gradient(self, rng):
        check_input_gradient(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_indivisible_size_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(3)(rng.normal(size=(1, 1, 4, 4)))
        with pytest.raises(ValueError):
            AvgPool2d(3)(rng.normal(size=(1, 1, 4, 4)))


class TestCrossEntropyGradient:
    def test_loss_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(5, 4))
        targets = np.array([0, 3, 1, 2, 2])
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn(logits, targets)

        def loss():
            return loss_fn(logits, targets)[0]

        numeric = numerical_gradient(loss, logits)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_weighted_loss_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        loss_fn = CrossEntropyLoss(class_weights=np.array([1.0, 2.0, 0.5]))
        _, grad = loss_fn(logits, targets)

        def loss():
            return loss_fn(logits, targets)[0]

        numeric = numerical_gradient(loss, logits)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)
