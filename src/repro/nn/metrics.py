"""Evaluation metrics for classification models.

The paper reports top-1 test accuracy on a class-balanced test set; the
per-class breakdown and confusion matrix feed the analysis of which classes
suffer under biased client participation (Figure 10 discussion).
"""

from __future__ import annotations

import numpy as np

from ..data.dataloader import DataLoader
from ..data.dataset import ArrayDataset
from .module import Module

__all__ = ["accuracy", "per_class_accuracy", "confusion_matrix", "evaluate_model"]


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a batch of logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if len(logits) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((logits.argmax(axis=1) == targets).mean())


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class *i* predicted as *j*."""
    predictions = np.asarray(predictions, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, targets: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Recall of each class; classes with no test samples report NaN."""
    matrix = confusion_matrix(predictions, targets, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def evaluate_model(model: Module, dataset: ArrayDataset, batch_size: int = 64) -> dict:
    """Evaluate *model* on *dataset*; returns accuracy and per-class stats."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    predictions: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for xb, yb in loader:
        logits = model(xb)
        predictions.append(logits.argmax(axis=1))
        targets.append(yb)
    model.train()
    pred = np.concatenate(predictions) if predictions else np.empty(0, dtype=int)
    target = np.concatenate(targets) if targets else np.empty(0, dtype=int)
    if len(pred) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return {
        "accuracy": float((pred == target).mean()),
        "per_class_accuracy": per_class_accuracy(pred, target, dataset.num_classes),
        "confusion_matrix": confusion_matrix(pred, target, dataset.num_classes),
        "n_samples": int(len(pred)),
    }
