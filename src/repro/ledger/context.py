"""Benchmark and machine context recorded next to every ledger run.

A metric trajectory is only interpretable together with the code revision
and hardware it was measured on, so every run row stores the current git
SHA, the CPU count, the Python/NumPy versions and the committed
``BENCH_*.json`` payloads found at the repository root.  The
``benchmarks/compare_bench.py --ledger`` mode reads these back to print how
the gated throughput ratios moved across recorded runs.

Everything here degrades gracefully: no git binary, no repository, or no
benchmark files simply produce ``None``/missing keys — recording a run must
never fail because the machine lacks benchmarking context.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["benchmark_context", "find_bench_files", "git_sha"]

#: File-name prefix of the committed benchmark baselines at the repo root.
_BENCH_GLOB = "BENCH_*.json"

#: Keep embedded benchmark payloads small: anything above this many bytes is
#: summarised to its file name and size instead of inlined.
_MAX_EMBED_BYTES = 64 * 1024


def git_sha(root: "Optional[str | os.PathLike]" = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repository.

    Example
    -------
    >>> sha = git_sha()
    >>> sha is None or len(sha) == 40
    True
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if root is None else os.fspath(root),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and len(sha) == 40 else None


def find_bench_files(root: "Optional[str | os.PathLike]" = None,
                     ) -> "list[Path]":
    """Committed ``BENCH_*.json`` files at (or above) the search root.

    Searches *root* (default: the working directory) and then the package's
    own repository checkout, so both in-repo runs and installed-package runs
    find whatever baselines exist.

    Example
    -------
    >>> isinstance(find_bench_files("/nonexistent"), list)
    True
    """
    candidates: list[Path] = []
    roots = []
    if root is not None:
        roots.append(Path(os.fspath(root)))
    else:
        roots.append(Path.cwd())
        # src/repro/ledger/context.py -> src/repro -> src -> repo root
        roots.append(Path(__file__).resolve().parents[3])
    seen: set[Path] = set()
    for base in roots:
        try:
            matches = sorted(base.glob(_BENCH_GLOB))
        except OSError:
            continue
        for match in matches:
            resolved = match.resolve()
            if resolved not in seen:
                seen.add(resolved)
                candidates.append(resolved)
    return candidates


def benchmark_context(root: "Optional[str | os.PathLike]" = None) -> dict:
    """Everything needed to interpret a run's numbers later.

    Returns a JSON-ready dict with the git SHA, CPU count, platform and
    library versions, plus the parsed payload of every committed
    ``BENCH_*.json`` (keyed by file stem) so
    ``benchmarks/compare_bench.py --ledger`` can extract ratio trajectories
    straight from the ledger.

    Example
    -------
    >>> context = benchmark_context()
    >>> context["cpu_count"] >= 1
    True
    """
    bench: dict[str, dict] = {}
    for path in find_bench_files(root):
        try:
            size = path.stat().st_size
            if size > _MAX_EMBED_BYTES:
                bench[path.stem] = {"skipped": True, "path": str(path),
                                    "bytes": int(size)}
                continue
            bench[path.stem] = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
    return {
        "git_sha": git_sha(root),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "bench": bench,
    }
