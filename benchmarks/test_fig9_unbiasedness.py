"""Figure 9 — data unbiasedness versus participation rate.

Paper setup: the MNIST/CIFAR10-10/1.5 federation (N = 1000, ρ = 10,
EMD_avg = 1.5); for each participation count K ∈ {10, 20, 50, 100, 200, 500,
1000} run 100 repeated selections with random / Dubhe / greedy and plot the
mean and standard deviation of ``||p_o − p_u||₁``.  Headline numbers: Dubhe
suppresses the bias at low participation rates even under heavy global skew,
reducing ``||p_o − p_u||₁`` by up to 64.4 % relative to random selection; the
"Base Line" is the bias of full participation, ``||p_g − p_u||₁``.

This benchmark runs at the paper's federation size (selection is cheap — no
training involved) with a reduced repetition count.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table
from repro.analysis.unbiasedness import bias_reduction, run_unbiasedness_sweep
from repro.core import DubheConfig
from repro.data import EMDTargetPartitioner, half_normal_class_proportions

N_CLIENTS = 1000
RHO = 10.0
EMD_AVG = 1.5
PARTICIPATION = (10, 20, 50, 100, 200, 500, 1000)
REPETITIONS = 30
PAPER_THRESHOLDS = {1: 0.7, 2: 0.1, 10: 0.0}


def paper_scale() -> dict:
    return {"n_clients": 1000, "repetitions": 100,
            "participation": (10, 20, 50, 100, 200, 500, 1000),
            "paper_claim": "||p_o - p_u||_1 reduced by 64.4% (Dubhe vs random)"}


@pytest.mark.benchmark(group="fig9")
def test_fig9_unbiasedness_sweep(benchmark):
    global_dist = half_normal_class_proportions(10, RHO)
    partition = EMDTargetPartitioner(N_CLIENTS, 128, EMD_AVG, seed=7).partition(global_dist)
    distributions = partition.client_distributions()

    def config_factory(k: int) -> DubheConfig:
        return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                           thresholds=PAPER_THRESHOLDS, participants_per_round=k,
                           tentative_selections=1, seed=7)

    def experiment():
        return run_unbiasedness_sweep(
            distributions,
            participation_counts=PARTICIPATION,
            config_factory=config_factory,
            repetitions=REPETITIONS,
            seed=7,
            include_greedy=True,
        )

    sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for i, k in enumerate(sweep.participation_counts):
        rows.append({
            "K": k,
            "random_mean": round(sweep.mean_series("random")[i], 3),
            "random_std": round(sweep.std_series("random")[i], 3),
            "dubhe_mean": round(sweep.mean_series("dubhe")[i], 3),
            "dubhe_std": round(sweep.std_series("dubhe")[i], 3),
            "greedy_mean": round(sweep.mean_series("greedy")[i], 3),
            "greedy_std": round(sweep.std_series("greedy")[i], 3),
        })
    print_table(f"Figure 9: mean/std of ||p_o − p_u||₁ (MNIST/CIFAR10-{RHO:g}/{EMD_AVG:g})", rows)
    reduction = bias_reduction(sweep, "dubhe", "random")
    print(f"\nbase line ||p_g − p_u||₁      : {sweep.baseline_bias:.3f}")
    print(f"max Dubhe bias reduction vs random: {reduction * 100:.1f}% (paper: 64.4%)")

    random_mean = sweep.mean_series("random")
    dubhe_mean = sweep.mean_series("dubhe")
    greedy_mean = sweep.mean_series("greedy")
    random_std = sweep.std_series("random")

    # random selection hovers around the global-skew baseline at every K
    assert np.all(np.abs(random_mean - sweep.baseline_bias) < 0.25)
    # Dubhe suppresses the bias at low participation rates
    low = PARTICIPATION.index(20)
    assert dubhe_mean[low] < random_mean[low]
    # greedy is near-perfect at low K and converges to the global bias at K = N
    assert greedy_mean[0] < 0.25
    assert abs(greedy_mean[-1] - sweep.baseline_bias) < 0.1
    # at full participation every method has zero variance and equals the baseline
    assert sweep.std_series("random")[-1] == pytest.approx(0.0, abs=1e-9)
    assert abs(dubhe_mean[-1] - sweep.baseline_bias) < 0.1
    # the random std decreases as participation grows
    assert random_std[0] > random_std[-2]
    # the headline claim: a substantial relative reduction at some K
    assert reduction > 0.3
