"""Figure 8 — FEMNIST: accuracy curves and the participated class proportion.

Paper setup: FEMNIST letters (52 classes), 8962 clients, K = 20,
G = {1, 52}, CNN, ~1500 rounds.  Results: random 31.0 %, Dubhe 36.4 %,
greedy 37.4 % test accuracy; the population class proportion under Dubhe is
visibly flatter than under random selection (which follows the skewed global
distribution).

Reduced scale: the synthetic FEMNIST-like federation (same ρ, 52 classes,
writer-style concentration), N = 250 clients, K = 15, an MLP and a
35-round horizon.  Reproduced claims: the ordering
greedy ≥ Dubhe ≥ random in accuracy (within noise) and Dubhe's population
distribution is closer to uniform than random's.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table, run_training
from repro.core import DubheConfig, DubheSelector, GreedySelector, RandomSelector
from repro.core.parameter_search import search_thresholds
from repro.data import make_femnist_federation

from helpers import BenchFederation

N_CLIENTS = 250
K = 15
ROUNDS = 35
TAIL = 6


def paper_scale() -> dict:
    return {"dataset": "FEMNIST letters", "num_classes": 52, "n_clients": 8962,
            "k": 20, "reference_set": (1, 52), "rounds": 1500,
            "paper_accuracy": {"random": 0.310, "dubhe": 0.364, "greedy": 0.374}}


@pytest.mark.benchmark(group="fig8")
def test_fig8_femnist(benchmark):
    def experiment():
        federation = make_femnist_federation(n_clients=N_CLIENTS, samples_per_client=32, seed=6)
        distributions = federation.partition.client_distributions()
        fed = BenchFederation(
            partition=federation.partition,
            generator=federation.generator,
            distributions=distributions,
            name="FEMNIST",
        )
        unsettled = DubheConfig(num_classes=52, reference_set=(1, 52),
                                participants_per_round=K, tentative_selections=3, seed=6)
        settled = search_thresholds(distributions, unsettled,
                                    sigma_grid=(0.1, 0.2, 0.3, 0.5), seed=6)
        selectors = {
            "random": RandomSelector(distributions, K, seed=6),
            "dubhe": DubheSelector(distributions, settled.config, seed=6),
            "greedy": GreedySelector(distributions, K, seed=6),
        }
        histories = {}
        for name, selector in selectors.items():
            histories[name] = run_training(fed, selector, rounds=ROUNDS, k=K, model="mlp",
                                           eval_every=3, learning_rate=3e-3,
                                           test_samples_per_class=6, seed=6)
        return fed, histories

    fed, histories = benchmark.pedantic(experiment, rounds=1, iterations=1)

    paper = paper_scale()["paper_accuracy"]
    rows = []
    for name, history in histories.items():
        rows.append({
            "selector": name,
            "tail_acc": round(history.tail_average_accuracy(TAIL), 3),
            "final_acc": round(history.final_accuracy(), 3),
            "mean_bias": round(history.mean_population_bias(), 3),
            "paper_acc": paper[name],
        })
    print_table(f"Figure 8: FEMNIST-like run (N={N_CLIENTS}, K={K}, rounds={ROUNDS})", rows)

    uniform = np.full(52, 1 / 52)
    rand_pop = histories["random"].average_population_distribution()
    dubhe_pop = histories["dubhe"].average_population_distribution()
    print("\nparticipated class proportion, distance from uniform:")
    print(f"  random: {np.abs(rand_pop - uniform).sum():.3f}")
    print(f"  dubhe : {np.abs(dubhe_pop - uniform).sum():.3f}")

    # population balancing: Dubhe flattens the participated class proportion
    assert np.abs(dubhe_pop - uniform).sum() < np.abs(rand_pop - uniform).sum()
    # accuracy ordering within noise: dubhe/greedy are not worse than random
    acc = {n: h.tail_average_accuracy(TAIL) for n, h in histories.items()}
    assert acc["dubhe"] >= acc["random"] - 0.05
    assert acc["greedy"] >= acc["random"] - 0.05
