"""Convolution and pooling layers (im2col-based) for the NumPy NN substrate.

The paper trains the CNN of Reddi et al. on MNIST/FEMNIST and ResNet18 on
CIFAR10.  These layers provide the convolutional building blocks needed for
the reproduction's stand-in models.  Convolution is implemented with the
standard im2col/col2im trick so the heavy lifting is one large matrix
multiplication per layer — the idiomatic way to keep a pure-NumPy
implementation fast (vectorise, avoid Python-level pixel loops).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .init import kaiming_uniform, zeros
from .module import Module, Parameter, seeded_rng

__all__ = ["Conv2d", "MaxPool2d", "AvgPool2d", "im2col", "col2im"]


def _output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel * kernel)``.
    out_h, out_w:
        Spatial size of the convolution output.
    """
    n, c, h, w = x.shape
    out_h = _output_size(h, kernel, stride, padding)
    out_w = _output_size(w, kernel, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # gather patches with stride tricks-free fancy indexing (clear and fast enough)
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_max:stride, kx:x_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kernel: int,
           stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter column gradients back to image space."""
    n, c, h, w = x_shape
    out_h = _output_size(h, kernel, stride, padding)
    out_w = _output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """2-D convolution with square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 seed: Optional[int] = None):
        if in_channels < 1 or out_channels < 1 or kernel_size < 1:
            raise ValueError("channels and kernel_size must be positive")
        if stride < 1 or padding < 0:
            raise ValueError("invalid stride/padding")
        rng = seeded_rng(seed)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(zeros((out_channels,))) if bias else None
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_flat.T
        if self.bias is not None:
            out = out + self.bias.value
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        n, _, out_h, out_w = grad_output.shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad_flat.T @ cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_flat
        return col2im(grad_cols, x_shape, self.kernel_size, self.stride, self.padding)


class MaxPool2d(Module):
    """Max pooling with square windows (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"input spatial size {h}x{w} not divisible by pool {k}")
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        out = reshaped.max(axis=(3, 5))
        # argmax mask for the backward pass
        mask = reshaped == out[:, :, :, None, :, None]
        self._cache = (x.shape, mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        k = self.kernel_size
        grad = mask * grad_output[:, :, :, None, :, None]
        # when several entries tie for the max, split the gradient between them
        # (tie counts cast to the gradient dtype: int-array division would
        # promote float32 cohort gradients to float64)
        counts = mask.sum(axis=(3, 5), keepdims=True)
        grad = grad / np.maximum(counts, 1).astype(grad.dtype)
        return grad.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with square windows (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._shape: Optional[tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"input spatial size {h}x{w} not divisible by pool {k}")
        self._shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        k = self.kernel_size
        grad = grad_output[:, :, :, None, :, None] / (k * k)
        return np.broadcast_to(grad, (n, c, h // k, k, w // k, k)).reshape(n, c, h, w)
