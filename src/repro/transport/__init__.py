"""The Dubhe service layer: typed protocol messages over real sockets.

The paper describes a client/server protocol — encrypted registration,
probability broadcast, selection, update collection — and this package
promotes it from an in-process simulation loop to an actual networked
service, following FedLab's separation of *process* from *role*:

* :mod:`repro.transport.wire` — the versioned, length-prefixed, CRC-checked
  binary frame format, with codecs for model state dicts and BatchCrypt-style
  :class:`~repro.crypto.packing.PackedEncryptedVector` payloads;
* :mod:`repro.transport.messages` — the typed round-protocol messages
  (Register, PackedCiphertextUpload, ProbabilityBroadcast, SelectionNotice,
  ModelDelta, RoundResult, ...);
* :mod:`repro.transport.base` — the :class:`Transport` seam the simulation
  speaks to, and :class:`InProcessTransport` wrapping the existing
  sequential / vectorized / parallel executors;
* :mod:`repro.transport.server` — :class:`SocketTransport`, the asyncio TCP
  server driving rounds with bounded send queues, timeouts and partial-round
  completion;
* :mod:`repro.transport.client` — :class:`TransportClient`, a
  :class:`~repro.federated.client.FederatedClient` behind a socket, with
  capped-backoff reconnection and session resumption;
* :mod:`repro.transport.chaos` — :class:`ChaosProxy`, a seeded TCP relay
  that injects the network faults a
  :class:`~repro.scenarios.spec.NetworkSpec` declares (latency, bit-flips,
  truncation, resets, partitions) deterministically per
  ``(round, client, direction, frame)``.

A fault-free localhost round under float64 is bit-identical to the
in-process sequential run — the transport moves bytes, never arithmetic.
"""

from .base import InProcessTransport, Transport, build_transport
from .chaos import ChaosProxy
from .client import TransportClient
from .messages import (
    MESSAGE_TYPES,
    ErrorNotice,
    Heartbeat,
    HeartbeatAck,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    decode_message,
    encode_message,
)
from .server import SocketTransport, TransportClosedError, TransportError
from .wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    CorruptFrameError,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ChaosProxy",
    "CorruptFrameError",
    "ErrorNotice",
    "Heartbeat",
    "HeartbeatAck",
    "InProcessTransport",
    "MESSAGE_TYPES",
    "ModelDelta",
    "PackedCiphertextUpload",
    "ProbabilityBroadcast",
    "Register",
    "RegisterAck",
    "RoundResult",
    "SelectionNotice",
    "Shutdown",
    "SocketTransport",
    "Transport",
    "TransportClient",
    "TransportClosedError",
    "TransportError",
    "TruncatedFrameError",
    "VersionMismatchError",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "build_transport",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
]
