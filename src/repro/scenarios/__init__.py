"""Scenario engine: fault injection for federated runs (churn, stragglers,
dropouts, label drift) with partial-round aggregation.

Public API
----------
* :class:`ScenarioSpec` and its parts — :class:`AvailabilitySpec`,
  :class:`ChurnSpec`, :class:`StragglerSpec`, :class:`DropoutSpec`,
  :class:`DriftSpec`, :class:`NetworkSpec` — declarative, validated fault
  descriptions (``NetworkSpec`` drives the chaos proxy on real sockets).
* :class:`FaultInjector`, :class:`RoundPlan`, :class:`ClientFault`,
  :class:`CohortFaults`, :data:`FAILURE_CAUSES` — the seeded engine that
  turns a spec into reproducible per-round decisions.
* :func:`run_scenario`, :func:`compare_selectors`,
  :class:`ScenarioReport` — robustness measured in the paper's own metrics
  (population EMD, accuracy per selection strategy).

A :class:`ScenarioSpec` plugs into
:class:`repro.federated.FederatedConfig(scenario=...)
<repro.federated.FederatedConfig>`; the round loop consults the injector,
the executor drops late/failed clients, and the server aggregates the
partial round (or skips it below the participation threshold).  The empty
``ScenarioSpec()`` is guaranteed to leave every executor back-end
bit-identical to a scenario-free run.
"""

from .engine import (
    FAILURE_CAUSES,
    ClientFault,
    CohortFaults,
    FaultInjector,
    RoundPlan,
)
from .report import ScenarioReport, compare_selectors, run_scenario
from .spec import (
    PARTITION_DIRECTIONS,
    AvailabilitySpec,
    ChurnSpec,
    DriftSpec,
    DropoutSpec,
    NetworkSpec,
    ScenarioSpec,
    StragglerSpec,
)

__all__ = [
    "AvailabilitySpec",
    "ChurnSpec",
    "ClientFault",
    "CohortFaults",
    "DriftSpec",
    "DropoutSpec",
    "FAILURE_CAUSES",
    "FaultInjector",
    "NetworkSpec",
    "PARTITION_DIRECTIONS",
    "RoundPlan",
    "ScenarioReport",
    "ScenarioSpec",
    "StragglerSpec",
    "compare_selectors",
    "run_scenario",
]
