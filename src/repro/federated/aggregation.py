"""Model aggregation rules.

The paper adopts the FedVC convention (eq. (1)): because every virtual client
holds the same number of samples and takes the same number of optimisation
steps, the global model is the **plain average** of the selected clients'
models.  The classical sample-weighted FedAvg is provided as well (used by an
ablation benchmark comparing the two).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "StackedClientStates",
    "average_states",
    "partial_round_weights",
    "weighted_average_states",
    "state_difference_norm",
]

StateDict = dict[str, np.ndarray]


class StackedClientStates(list):
    """Per-client state dicts that are zero-copy views into stacked arrays.

    The vectorized executor trains all K clients inside ``(K, *shape)``
    parameter stacks; this container presents them as the usual list of
    per-client state dicts (each entry a dict of views, no copies) while
    keeping the stacks around so aggregation can run as a single ``mean``
    over the client axis instead of re-stacking K dicts.

    Lifetime: with the round-persistent workspace these views alias pools
    the *next* vectorized round of the same executor reuses and overwrites.
    Aggregate (or deep-copy the arrays) before running another round — the
    simulation's round loop does exactly that; only callers that retain
    per-round states across rounds need the copy.

    Example
    -------
    >>> import numpy as np
    >>> stacked = {"w": np.arange(6.0).reshape(3, 2)}  # 3 clients
    >>> states = StackedClientStates([{"w": stacked["w"][k]} for k in range(3)],
    ...                              stacked)
    >>> len(states), states[1]["w"].tolist()
    (3, [2.0, 3.0])
    """

    def __init__(self, per_client: Sequence[StateDict], stacked: StateDict):
        super().__init__(per_client)
        #: parameter name -> ``(K, *shape)`` array holding every client's value
        self.stacked = dict(stacked)


def _check_states(states: Sequence[StateDict]) -> None:
    if not states:
        raise ValueError("cannot aggregate an empty list of model states")
    reference = states[0]
    for state in states[1:]:
        if set(state) != set(reference):
            raise KeyError("model states have different parameter names")
        for key in reference:
            if state[key].shape != reference[key].shape:
                raise ValueError(f"shape mismatch for parameter {key!r}")


def average_states(states: Sequence[StateDict]) -> StateDict:
    """Uniform average of model states — eq. (1) of the paper (FedVC-style).

    :class:`StackedClientStates` take a fast path: their per-client values
    already live in one ``(K, *shape)`` array per parameter, so the average
    is a single ``mean`` over the client axis — the same reduction
    ``np.mean`` performs after stacking a list of states, hence numerically
    identical.

    Example
    -------
    >>> import numpy as np
    >>> average_states([{"w": np.array([0.0, 2.0])},
    ...                 {"w": np.array([2.0, 4.0])}])["w"].tolist()
    [1.0, 3.0]
    """
    if isinstance(states, StackedClientStates):
        return {k: v.mean(axis=0) for k, v in states.stacked.items()}
    _check_states(states)
    keys = states[0].keys()
    return {k: np.mean([s[k] for s in states], axis=0) for k in keys}


def partial_round_weights(sample_counts: Sequence[float],
                          survivors: Optional[Sequence[int]] = None) -> np.ndarray:
    """Normalised aggregation weights of a (possibly partial) round.

    This is FedAvg's sample-count weighting restricted to the survivors of a
    faulted round: *sample_counts* holds every planned client's sample
    count, *survivors* the positions whose updates actually arrived (``None``
    = everyone).  The returned weights cover exactly the survivor subset and
    always sum to 1 — so when every client survives they equal the
    full-cohort FedAvg weights, and a partial round remains a convex
    combination of the updates it did receive (no silent down-scaling of the
    global model).  With equal sample counts (the paper's FedVC virtual
    clients) this reduces to the plain average over survivors.

    Example
    -------
    >>> partial_round_weights([8, 8, 16], survivors=[0, 2]).tolist()
    [0.3333333333333333, 0.6666666666666666]
    >>> partial_round_weights([8, 8]).tolist()
    [0.5, 0.5]
    """
    counts = np.asarray(list(sample_counts), dtype=float)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("sample_counts must be a non-empty 1-D sequence")
    if np.any(counts < 0):
        raise ValueError("sample counts must be non-negative")
    if survivors is not None:
        idx = np.asarray(list(survivors), dtype=int)
        if idx.size == 0:
            raise ValueError("a partial round needs at least one survivor")
        if np.unique(idx).size != idx.size:
            raise ValueError("survivor positions must be unique")
        if np.any(idx < 0) or np.any(idx >= counts.size):
            raise ValueError("survivor positions out of range")
        counts = counts[idx]
    total = counts.sum()
    if total <= 0:
        raise ValueError("surviving sample counts must not all be zero")
    return counts / total


def weighted_average_states(states: Sequence[StateDict],
                            weights: Sequence[float]) -> StateDict:
    """Sample-count-weighted FedAvg average (the original McMahan et al. rule).

    Example
    -------
    >>> import numpy as np
    >>> weighted_average_states([{"w": np.array([0.0])},
    ...                          {"w": np.array([4.0])}],
    ...                         weights=[3, 1])["w"].tolist()
    [1.0]
    """
    _check_states(states)
    weights_arr = np.asarray(list(weights), dtype=float)
    if weights_arr.size != len(states):
        raise ValueError("need exactly one weight per model state")
    if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    weights_arr = weights_arr / weights_arr.sum()
    keys = states[0].keys()
    return {
        k: np.sum([w * s[k] for w, s in zip(weights_arr, states)], axis=0) for k in keys
    }


def state_difference_norm(a: StateDict, b: StateDict) -> float:
    """L2 norm of the difference between two model states (weight divergence).

    Example
    -------
    >>> import numpy as np
    >>> state_difference_norm({"w": np.array([3.0, 0.0])},
    ...                       {"w": np.array([0.0, 4.0])})
    5.0
    """
    if set(a) != set(b):
        raise KeyError("model states have different parameter names")
    total = 0.0
    for key in a:
        diff = a[key] - b[key]
        total += float(np.sum(diff * diff))
    return float(np.sqrt(total))
