"""Pytest configuration for the benchmark harness.

Makes the ``helpers`` module importable from every benchmark file regardless
of how pytest sets up ``sys.path`` (the benchmarks directory is not a
package on purpose — each file is a standalone experiment).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
