#!/usr/bin/env python
"""Service-layer smoke: a federated run over real localhost TCP sockets.

Starts the asyncio transport server, connects one ``TransportClient`` per
federation member over loopback, and drives a full run through
``repro.api.Session``.  Two contracts are asserted end to end:

* **bit-identity** — the fault-free socket run reproduces the in-process
  sequential run exactly (same selected cohorts, same accuracies, and
  ``np.array_equal`` on every parameter of the final global model);
* **real partial rounds** — with ``--straggler``, one client is delayed past
  the round deadline for real (no fault injector), and the resulting round
  record must show a ``"straggler"`` failure, a reduced actual cohort and
  an actual-population bias, exactly like the simulated fault path.

Run it with::

    python examples/transport_run.py
    python examples/transport_run.py --clients 8 --rounds 3 --straggler

Used as the CI transport-smoke gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.transport import TransportClient

RECIPE_TARGET = "repro.ledger.recipes:quick_mlp"


def make_session(args: argparse.Namespace, transport=None) -> Session:
    config = FederatedConfig(
        rounds=args.rounds, eval_every=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
        transport=transport,
    )
    return Session(config).with_recipe(
        RECIPE_TARGET, n_clients=args.clients,
        participants=args.participants,
        samples_per_client=args.samples, seed=0)


def start_clients(donor, host, port, n_clients, delays=None):
    """One client thread per federation member, replicas seeded from *donor*
    (an identically-built in-process simulation that never runs)."""
    peers, threads = [], []
    for client_id in range(n_clients):
        delay = (delays or {}).get(client_id, 0.0)
        peer = TransportClient(
            donor.client(client_id), donor.server.new_client_model,
            host, port, delay=delay, delay_round=1 if delay else None,
        )
        thread = threading.Thread(target=peer.run, daemon=True)
        thread.start()
        peers.append(peer)
        threads.append(thread)
    return peers, threads


def join_all(threads, timeout=30.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "client thread leaked past shutdown"


def run_fault_free(args: argparse.Namespace) -> None:
    print(f"fault-free: {args.clients} clients, {args.rounds} rounds, "
          f"{args.participants} participants/round")
    reference = make_session(args)
    ref_history = reference.run().history
    ref_state = reference.simulation.server.global_state()

    donor = make_session(args)
    donor_sim = donor.build()
    session = make_session(args, TransportConfig(
        kind="socket", round_timeout=args.round_timeout))
    simulation = session.build()
    host, port = simulation.transport.start()
    print(f"  server listening on {host}:{port}")
    peers, threads = start_clients(donor_sim, host, port, args.clients)
    try:
        history = simulation.run()
        state = simulation.server.global_state()
    finally:
        session.close()
    join_all(threads)
    donor.close()
    reference.close()

    assert len(history) == len(ref_history) == args.rounds
    for record, ref_record in zip(history.records, ref_history.records):
        assert record.selected_clients == ref_record.selected_clients, (
            f"round {record.round_index}: cohort diverged")
        assert record.test_accuracy == ref_record.test_accuracy, (
            f"round {record.round_index}: accuracy diverged")
        assert record.failures == {}
        print(f"  round {record.round_index}: cohort "
              f"{record.selected_clients}, accuracy "
              f"{record.test_accuracy:.3f} (== in-process)")
    for name in ref_state:
        assert np.array_equal(state[name], ref_state[name]), (
            f"socket run diverged from in-process at parameter {name!r}")
    trained = sum(1 for peer in peers if peer.rounds_trained)
    print(f"  OK: bit-identical final model across "
          f"{len(ref_state)} parameters; {trained} clients trained")


def run_straggler(args: argparse.Namespace) -> None:
    # learn round 1's deterministic cohort from an in-process replica,
    # then make its first member miss the socket deadline for real
    probe = make_session(args)
    straggler = probe.run().history.records[1].selected_clients[0]
    probe.close()
    print(f"straggler: delaying client {straggler} by "
          f"{args.delay:.1f}s against a {args.deadline:.1f}s round deadline")

    donor = make_session(args)
    donor_sim = donor.build()
    session = make_session(args, TransportConfig(
        kind="socket", round_timeout=args.deadline, connect_timeout=15.0))
    simulation = session.build()
    host, port = simulation.transport.start()
    peers, threads = start_clients(donor_sim, host, port, args.clients,
                                   delays={straggler: args.delay})
    try:
        history = simulation.run(rounds=2)
    finally:
        session.close()
    join_all(threads)
    donor.close()

    clean, partial = history.records
    assert clean.failures == {}, f"round 0 should be clean: {clean.failures}"
    assert partial.failures == {straggler: "straggler"}, (
        f"expected a straggler partial round, got {partial.failures}")
    assert straggler not in partial.actual_clients
    assert len(partial.actual_clients) == len(partial.selected_clients) - 1
    assert not partial.aggregation_skipped
    assert partial.actual_population_bias is not None
    print(f"  round 1: planned {partial.selected_clients}, aggregated "
          f"{partial.actual_clients} — client {straggler} timed out "
          f"({partial.failures[straggler]})")
    print(f"  OK: real deadline miss produced a partial round "
          f"(actual bias {partial.actual_population_bias:.4f})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--participants", type=int, default=3)
    parser.add_argument("--samples", type=int, default=12,
                        help="training samples per client")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--round-timeout", type=float, default=60.0,
                        help="fault-free phase round deadline (generous)")
    parser.add_argument("--straggler", action="store_true",
                        help="also run the injected-timeout partial round")
    parser.add_argument("--deadline", type=float, default=2.0,
                        help="straggler phase round deadline")
    parser.add_argument("--delay", type=float, default=6.0,
                        help="how late the straggling client is")
    args = parser.parse_args()

    run_fault_free(args)
    if args.straggler:
        run_straggler(args)
    print("transport smoke passed")


if __name__ == "__main__":
    main()
