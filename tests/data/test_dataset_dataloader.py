"""Tests for ArrayDataset, Subset, train_test_split and DataLoader."""

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset, Subset, train_test_split


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(100, 1, 4, 4)).astype(np.float32)
    y = np.repeat(np.arange(5), 20)
    return ArrayDataset(x, y)


class TestArrayDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 100
        x, y = dataset[3]
        assert x.shape == (1, 4, 4)
        assert y == dataset.y[3]

    def test_num_classes_inferred(self, dataset):
        assert dataset.num_classes == 5

    def test_class_counts_and_distribution(self, dataset):
        np.testing.assert_array_equal(dataset.class_counts(), [20] * 5)
        np.testing.assert_allclose(dataset.class_distribution(), [0.2] * 5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int))

    def test_labels_exceeding_num_classes_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.array([0, 1, 5]), num_classes=3)


class TestSubset:
    def test_subset_view(self, dataset):
        sub = dataset.subset([0, 1, 2, 20])
        assert isinstance(sub, Subset)
        assert len(sub) == 4
        np.testing.assert_array_equal(sub.y, dataset.y[[0, 1, 2, 20]])

    def test_nested_subset(self, dataset):
        sub = dataset.subset(np.arange(50)).subset([0, 49])
        np.testing.assert_array_equal(sub.y, dataset.y[[0, 49]])

    def test_out_of_range_rejected(self, dataset):
        with pytest.raises(IndexError):
            dataset.subset([1000])

    def test_subset_class_distribution(self, dataset):
        sub = dataset.subset(np.arange(20))  # all class 0
        np.testing.assert_allclose(sub.class_distribution(), [1, 0, 0, 0, 0])


class TestTrainTestSplit:
    def test_sizes(self, dataset):
        train, test = train_test_split(dataset, 0.2, rng=np.random.default_rng(0))
        assert len(train) + len(test) == len(dataset)
        assert len(test) == 20

    def test_stratification(self, dataset):
        _, test = train_test_split(dataset, 0.25, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(test.class_counts(), [5] * 5)

    def test_no_overlap(self, dataset):
        train, test = train_test_split(dataset, 0.3, rng=np.random.default_rng(1))
        assert set(train.indices).isdisjoint(set(test.indices))

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0)


class TestDataLoader:
    def test_number_of_batches(self, dataset):
        loader = DataLoader(dataset, batch_size=8, shuffle=False)
        assert len(loader) == 13
        batches = list(loader)
        assert len(batches) == 13
        assert batches[0][0].shape == (8, 1, 4, 4)
        assert batches[-1][0].shape[0] == 4

    def test_drop_last(self, dataset):
        loader = DataLoader(dataset, batch_size=8, drop_last=True, shuffle=False)
        assert len(loader) == 12
        assert all(xb.shape[0] == 8 for xb, _ in loader)

    def test_covers_all_samples(self, dataset):
        loader = DataLoader(dataset, batch_size=16, shuffle=True, seed=0)
        ys = np.concatenate([yb for _, yb in loader])
        np.testing.assert_array_equal(np.sort(ys), np.sort(dataset.y))

    def test_seeded_shuffle_reproducible(self, dataset):
        a = np.concatenate([yb for _, yb in DataLoader(dataset, 16, seed=3)])
        b = np.concatenate([yb for _, yb in DataLoader(dataset, 16, seed=3)])
        np.testing.assert_array_equal(a, b)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)
