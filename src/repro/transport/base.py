"""The :class:`Transport` interface and its in-process implementation.

A *transport* is the single seam between :class:`~repro.federated.simulation.
FederatedSimulation` and wherever the selected clients actually run.  Its
contract mirrors :meth:`repro.federated.executor.LocalUpdateExecutor.run_round`
exactly — same arguments, same survivor-ordering semantics, same telemetry
attributes — so the simulation's round loop is transport-agnostic:

* :class:`InProcessTransport` wraps the existing
  :class:`~repro.federated.executor.LocalUpdateExecutor` (sequential /
  thread / process / vectorized / parallel back-ends) with zero overhead;
* :class:`~repro.transport.server.SocketTransport` drives the same round
  over localhost (or real) TCP sockets against
  :class:`~repro.transport.client.TransportClient` peers.

Both produce bit-identical survivor states under float64 on a fault-free
round — the contract the loopback tests assert.

:func:`build_transport` maps a :class:`~repro.core.config.TransportConfig`
(plus the executor knobs) to the right implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.config import ExecutorConfig, TransportConfig
from ..federated.client import FederatedClient, LocalTrainingConfig
from ..federated.executor import LocalUpdateExecutor
from ..nn.module import Module

__all__ = ["InProcessTransport", "Transport", "build_transport"]

StateDict = dict[str, np.ndarray]


class Transport(ABC):
    """Where a round's local updates run: in process, or across sockets.

    Implementations must honour the executor contract: ``run_round`` returns
    the *survivors'* states in cohort order, and the telemetry attributes
    :attr:`last_round_failures` (cohort position → failure cause),
    :attr:`last_round_delay` (simulated/observed round duration) and
    :attr:`last_fallback_reason` describe the most recent round.

    Example
    -------
    >>> from repro.core.config import TransportConfig
    >>> transport = build_transport(TransportConfig(kind="inprocess"))
    >>> transport.last_round_failures
    {}
    """

    def __init__(self) -> None:
        #: failures of the most recent round: cohort position -> cause
        self.last_round_failures: dict[int, str] = {}
        #: duration of the most recent round (simulated delay in process,
        #: wall-clock straggler time over sockets)
        self.last_round_delay: float = 0.0
        #: why the most recent round fell back to a slower back-end (or None)
        self.last_fallback_reason: Optional[str] = None
        #: undecodable frames of the most recent round: client id -> count
        #: (-1 keys frames from peers that never finished registering);
        #: always empty in process
        self.last_round_decode_failures: dict[int, int] = {}
        #: connection losses of the most recent round: client id -> cause;
        #: always empty in process
        self.last_round_disconnects: dict[int, str] = {}

    @abstractmethod
    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0,
                  faults=None) -> "list[StateDict]":
        """Train the cohort from *global_state*; return the survivors' states.

        *faults* is an optional :class:`repro.scenarios.engine.CohortFaults`
        plan (position-keyed); implementations must resolve it to the same
        survivor set the in-process executor would, so scenario outcomes are
        back-end independent.
        """

    @abstractmethod
    def close(self) -> None:
        """Release the transport's resources.  Idempotent."""

    def broadcast_probabilities(self, round_index: int,
                                probabilities: Sequence[float]) -> None:
        """Announce this round's selection probabilities ``q_k`` (optional).

        A no-op in process (every role shares memory); the socket transport
        overrides it with a real
        :class:`~repro.transport.messages.ProbabilityBroadcast`.
        """

    def on_round_complete(self, record) -> None:
        """Observe a finished round's :class:`~repro.federated.history.RoundRecord`.

        A no-op in process; the socket transport overrides it to broadcast
        the :class:`~repro.transport.messages.RoundResult` to every client.
        """

    def __enter__(self) -> "Transport":
        """Context-manager entry: the transport itself.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> with build_transport(TransportConfig()) as transport:
        ...     transport.last_round_delay
        0.0
        """
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the transport."""
        self.close()


class InProcessTransport(Transport):
    """The existing simulation back-ends behind the :class:`Transport` seam.

    Wraps one :class:`~repro.federated.executor.LocalUpdateExecutor` and
    forwards ``run_round`` verbatim, then mirrors its telemetry — the
    fault-free code path is byte-for-byte the pre-transport behaviour.  The
    wrapped executor stays reachable as :attr:`executor` (the simulation and
    its tests introspect scheduler/workspace state through it).

    Example
    -------
    >>> transport = InProcessTransport(LocalUpdateExecutor("sequential"))
    >>> from repro.federated.client import LocalTrainingConfig
    >>> transport.run_round([], lambda: None, {}, LocalTrainingConfig())
    []
    """

    def __init__(self, executor: LocalUpdateExecutor):
        super().__init__()
        #: the wrapped executor (scheduler/workspace telemetry lives here)
        self.executor = executor

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0,
                  faults=None) -> "list[StateDict]":
        """Delegate to the wrapped executor and mirror its telemetry.

        Example
        -------
        >>> transport = InProcessTransport(LocalUpdateExecutor())
        >>> transport.run_round([], lambda: None, {},
        ...                     LocalTrainingConfig())
        []
        """
        states = self.executor.run_round(clients, model_factory, global_state,
                                         config, round_index=round_index,
                                         faults=faults)
        self.last_round_failures = self.executor.last_round_failures
        self.last_round_delay = self.executor.last_round_delay
        self.last_fallback_reason = self.executor.last_fallback_reason
        return states

    def close(self) -> None:
        """Shut down the wrapped executor (idempotent).

        Example
        -------
        >>> transport = InProcessTransport(LocalUpdateExecutor())
        >>> transport.close(); transport.close()
        """
        self.executor.close()


def build_transport(config: Optional[TransportConfig] = None,
                    executor: Optional[ExecutorConfig] = None,
                    network=None, chaos_seed: int = 0) -> Transport:
    """Build the transport a config pair asks for.

    ``kind="inprocess"`` wraps a fresh
    :class:`~repro.federated.executor.LocalUpdateExecutor` configured from
    *executor*; ``kind="socket"`` starts a
    :class:`~repro.transport.server.SocketTransport` listening on
    ``config.host:config.port`` (port 0 picks a free port).  *network* (a
    :class:`~repro.scenarios.spec.NetworkSpec`) interposes a
    :class:`~repro.transport.chaos.ChaosProxy` seeded with *chaos_seed* in
    front of the socket server; it requires ``kind="socket"``.

    Example
    -------
    >>> from repro.core.config import ExecutorConfig, TransportConfig
    >>> transport = build_transport(TransportConfig(kind="inprocess"),
    ...                             ExecutorConfig(mode="sequential"))
    >>> transport.executor.mode
    'sequential'
    """
    config = config or TransportConfig()
    executor = executor or ExecutorConfig()
    if config.kind == "socket":
        from .server import SocketTransport

        return SocketTransport(config, network=network, chaos_seed=chaos_seed)
    if network is not None:
        raise ValueError(
            "a NetworkSpec needs real sockets: use TransportConfig(kind='socket')")
    return InProcessTransport(LocalUpdateExecutor(
        mode=executor.mode,
        dtype=executor.dtype,
        num_workers=executor.num_workers,
        shard_policy=executor.shard_policy,
        scheduler_timeout=executor.scheduler_timeout,
    ))
