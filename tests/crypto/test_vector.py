"""Tests for EncryptedVector — the wire format of Dubhe registries."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.crypto.paillier import generate_keypair
from repro.crypto.vector import EncryptedVector, plaintext_vector_bytes


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=128, rng=random.Random(555))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


class TestEncryptDecrypt:
    def test_roundtrip_registry_like_vector(self, pk, sk):
        registry = np.zeros(56)
        registry[17] = 1.0
        out = EncryptedVector.encrypt(pk, registry).decrypt(sk)
        np.testing.assert_allclose(out, registry, atol=1e-9)

    def test_roundtrip_distribution_vector(self, pk, sk):
        p = np.array([0.1, 0.2, 0.3, 0.4])
        out = EncryptedVector.encrypt(pk, p).decrypt(sk)
        np.testing.assert_allclose(out, p, atol=1e-9)

    def test_len(self, pk):
        assert len(EncryptedVector.encrypt(pk, [1, 2, 3])) == 3

    def test_wrong_key_rejected(self, pk):
        other = generate_keypair(key_size=128, rng=random.Random(9)).private_key
        with pytest.raises(ValueError):
            EncryptedVector.encrypt(pk, [1.0]).decrypt(other)


class TestHomomorphicAggregation:
    def test_sum_of_registries_counts_categories(self, pk, sk):
        # three clients register: two in slot 1, one in slot 4
        r1 = [0, 1, 0, 0, 0]
        r2 = [0, 1, 0, 0, 0]
        r3 = [0, 0, 0, 0, 1]
        total = EncryptedVector.sum([EncryptedVector.encrypt(pk, r) for r in (r1, r2, r3)])
        np.testing.assert_allclose(total.decrypt(sk), [0, 2, 0, 0, 1], atol=1e-9)

    def test_add_two_distributions(self, pk, sk):
        a = EncryptedVector.encrypt(pk, [0.5, 0.5])
        b = EncryptedVector.encrypt(pk, [0.25, 0.75])
        np.testing.assert_allclose((a + b).decrypt(sk), [0.75, 1.25], atol=1e-9)

    def test_scale_by_int(self, pk, sk):
        a = EncryptedVector.encrypt(pk, [0.5, 1.5])
        np.testing.assert_allclose(a.scale(3).decrypt(sk), [1.5, 4.5], atol=1e-9)

    def test_scale_by_float_rejected(self, pk):
        with pytest.raises(TypeError):
            EncryptedVector.encrypt(pk, [1.0]).scale(0.5)

    def test_length_mismatch_rejected(self, pk):
        with pytest.raises(ValueError):
            EncryptedVector.encrypt(pk, [1.0]) + EncryptedVector.encrypt(pk, [1.0, 2.0])

    def test_key_mismatch_rejected(self, pk):
        other_pk = generate_keypair(key_size=128, rng=random.Random(3)).public_key
        with pytest.raises(ValueError):
            EncryptedVector.encrypt(pk, [1.0]) + EncryptedVector.encrypt(other_pk, [1.0])

    def test_empty_sum_rejected(self):
        with pytest.raises(ValueError):
            EncryptedVector.sum([])

    def test_add_notimplemented_for_other_types(self, pk):
        assert EncryptedVector.encrypt(pk, [1.0]).__add__(3) is NotImplemented


class TestSizesAndSerialization:
    def test_ciphertext_larger_than_plaintext(self, pk):
        values = np.full(56, 1.0 / 56)
        enc = EncryptedVector.encrypt(pk, values)
        assert enc.nbytes() > plaintext_vector_bytes(values)

    def test_nbytes_formula(self, pk):
        enc = EncryptedVector.encrypt(pk, [0.0] * 7)
        assert enc.nbytes() == 7 * pk.ciphertext_bytes()

    def test_serialization_roundtrip(self, pk, sk):
        values = np.array([0.0, 0.25, 1.0, 0.5])
        enc = EncryptedVector.encrypt(pk, values)
        restored = EncryptedVector.from_bytes(pk, enc.to_bytes())
        np.testing.assert_allclose(restored.decrypt(sk), values, atol=1e-9)

    def test_plaintext_bytes_positive(self):
        assert plaintext_vector_bytes([0.1] * 56) > 0


@settings(max_examples=scaled_max_examples(15), deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0, max_value=1, allow_nan=False), min_size=1, max_size=8
    )
)
def test_property_vector_sum_matches_numpy(values):
    """Homomorphic sum of vectors equals the numpy sum of plaintexts."""
    kp = generate_keypair(key_size=128, rng=random.Random(13))
    a = EncryptedVector.encrypt(kp.public_key, values)
    b = EncryptedVector.encrypt(kp.public_key, values[::-1])
    out = (a + b).decrypt(kp.private_key)
    np.testing.assert_allclose(out, np.asarray(values) + np.asarray(values[::-1]), atol=1e-8)
