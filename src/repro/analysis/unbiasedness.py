"""The Figure 9 experiment: unbiasedness versus participation rate.

For a fixed federation, sweep the participation count ``K`` and measure the
mean and standard deviation of ``||p_o − p_u||₁`` over repeated selections
for each strategy (random, greedy, Dubhe).  The paper's headline claim —
Dubhe reduces the population bias by up to 64.4 % relative to random
selection on the most skewed dataset — is computed from exactly these
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.config import DubheConfig
from ..core.parameter_search import search_thresholds
from ..core.selectors import DubheSelector, GreedySelector, RandomSelector
from .emd import SelectionBiasStats, baseline_global_bias, measure_selection_bias

__all__ = ["UnbiasednessSweep", "run_unbiasedness_sweep", "bias_reduction"]


@dataclass(frozen=True)
class UnbiasednessSweep:
    """Results of sweeping K for every selection strategy."""

    participation_counts: tuple[int, ...]
    stats: dict[str, tuple[SelectionBiasStats, ...]]   # strategy → per-K stats
    baseline_bias: float                                # ||p_g − p_u||₁

    def mean_series(self, strategy: str) -> np.ndarray:
        return np.array([s.mean_bias for s in self.stats[strategy]])

    def std_series(self, strategy: str) -> np.ndarray:
        return np.array([s.std_bias for s in self.stats[strategy]])

    def as_rows(self) -> list[dict]:
        rows = []
        for strategy, series in self.stats.items():
            for stat in series:
                rows.append(stat.as_row() | {"strategy": strategy})
        return rows


def bias_reduction(sweep: UnbiasednessSweep, strategy: str = "dubhe",
                   reference: str = "random") -> float:
    """Largest relative reduction of mean bias of *strategy* vs *reference*.

    The paper reports 64.4 % for Dubhe vs random on MNIST/CIFAR10-10/1.5.
    """
    target = sweep.mean_series(strategy)
    base = sweep.mean_series(reference)
    with np.errstate(divide="ignore", invalid="ignore"):
        reductions = np.where(base > 0, 1.0 - target / base, 0.0)
    return float(np.max(reductions))


def run_unbiasedness_sweep(
    client_distributions: np.ndarray,
    participation_counts: Sequence[int],
    config_factory: Callable[[int], DubheConfig],
    repetitions: int = 100,
    seed: Optional[int] = None,
    include_greedy: bool = True,
) -> UnbiasednessSweep:
    """Measure bias statistics for every strategy at every participation count.

    Parameters
    ----------
    client_distributions:
        Label distributions of the federation, shape ``(N, C)``.
    participation_counts:
        The values of ``K`` to sweep (Figure 9 uses 10…1000 of 1000).
    config_factory:
        ``config_factory(K)`` returns the :class:`DubheConfig` to use at that
        participation count.  Thresholds are found by parameter search when
        the returned config has none.
    repetitions:
        Number of repeated selections per point (the paper uses 100).
    """
    distributions = np.asarray(client_distributions, dtype=float)
    if distributions.ndim != 2:
        raise ValueError("client_distributions must be 2-D")
    n_clients = distributions.shape[0]
    counts = tuple(int(k) for k in participation_counts)
    if any(k < 1 or k > n_clients for k in counts):
        raise ValueError("participation counts must lie in [1, n_clients]")

    strategies: dict[str, list[SelectionBiasStats]] = {"random": [], "dubhe": []}
    if include_greedy:
        strategies["greedy"] = []

    for i, k in enumerate(counts):
        seed_k = None if seed is None else seed + 1000 * i
        random_selector = RandomSelector(distributions, k, seed=seed_k)
        strategies["random"].append(
            measure_selection_bias(random_selector, distributions, repetitions)
        )
        if include_greedy:
            greedy_selector = GreedySelector(distributions, k, seed=seed_k)
            strategies["greedy"].append(
                measure_selection_bias(greedy_selector, distributions, repetitions)
            )
        config = config_factory(k)
        if not config.has_all_thresholds():
            config = search_thresholds(distributions, config, seed=seed_k).config
        dubhe_selector = DubheSelector(distributions, config, seed=seed_k)
        strategies["dubhe"].append(
            measure_selection_bias(dubhe_selector, distributions, repetitions)
        )

    return UnbiasednessSweep(
        participation_counts=counts,
        stats={name: tuple(series) for name, series in strategies.items()},
        baseline_bias=baseline_global_bias(distributions),
    )
