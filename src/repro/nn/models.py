"""Model architectures used by the reproduction.

The paper trains:

* the CNN of Reddi et al. ("Adaptive federated optimization") for MNIST and
  FEMNIST — two conv layers, max pooling, two dense layers;
* ResNet18 for CIFAR10.

A full ResNet18 is far too slow for a pure-NumPy substrate at benchmark
scale, so :class:`CifarCNN` is a compact convolutional network standing in
for it (documented substitution in DESIGN.md): the selection-method
comparison only needs a model whose accuracy responds to population-
distribution bias, which any trainable CNN does.  :class:`MLP` is a cheaper
alternative used by fast tests and reduced-scale benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .conv import Conv2d, MaxPool2d
from .layers import Dropout, Flatten, Linear, ReLU, Sequential
from .module import Module

__all__ = ["MLP", "MnistCNN", "CifarCNN", "build_model"]


class MLP(Module):
    """A small multi-layer perceptron over flattened inputs."""

    def __init__(self, in_features: int, num_classes: int,
                 hidden: Sequence[int] = (64,), seed: Optional[int] = None):
        if in_features < 1 or num_classes < 2:
            raise ValueError("invalid MLP dimensions")
        layers: list[Module] = [Flatten()]
        prev = in_features
        for i, width in enumerate(hidden):
            layers.append(Linear(prev, width, seed=None if seed is None else seed + i))
            layers.append(ReLU())
            prev = width
        layers.append(Linear(prev, num_classes, seed=None if seed is None else seed + 100))
        self.net = Sequential(*layers)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)


class MnistCNN(Module):
    """The two-conv CNN of Reddi et al., scaled to the synthetic image size.

    conv(32, 3x3) → ReLU → conv(64, 3x3) → ReLU → maxpool(2) → dense(128) →
    dropout → dense(C).  Channel widths can be narrowed for fast tests.
    """

    def __init__(self, in_channels: int = 1, image_size: int = 8, num_classes: int = 10,
                 channels: tuple[int, int] = (16, 32), hidden: int = 64,
                 dropout: float = 0.25, seed: Optional[int] = None):
        if image_size < 4:
            raise ValueError("image_size too small for two 3x3 convolutions + pooling")
        s = (lambda off: None) if seed is None else (lambda off: seed + off)
        c1, c2 = channels
        self.conv1 = Conv2d(in_channels, c1, kernel_size=3, padding=1, seed=s(1))
        self.relu1 = ReLU()
        self.conv2 = Conv2d(c1, c2, kernel_size=3, padding=1, seed=s(2))
        self.relu2 = ReLU()
        self.pool = MaxPool2d(2)
        self.flatten = Flatten()
        feat = c2 * (image_size // 2) * (image_size // 2)
        self.fc1 = Linear(feat, hidden, seed=s(3))
        self.relu3 = ReLU()
        self.dropout = Dropout(dropout, seed=0 if seed is None else seed + 4)
        self.fc2 = Linear(hidden, num_classes, seed=s(5))
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.relu1(self.conv1(x))
        x = self.relu2(self.conv2(x))
        x = self.pool(x)
        x = self.flatten(x)
        x = self.relu3(self.fc1(x))
        x = self.dropout(x)
        return self.fc2(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.fc2.backward(grad_output)
        grad = self.dropout.backward(grad)
        grad = self.relu3.backward(grad)
        grad = self.fc1.backward(grad)
        grad = self.flatten.backward(grad)
        grad = self.pool.backward(grad)
        grad = self.relu2.backward(grad)
        grad = self.conv2.backward(grad)
        grad = self.relu1.backward(grad)
        return self.conv1.backward(grad)


class CifarCNN(Module):
    """Compact conv net standing in for ResNet18 on the CIFAR-like task.

    Three conv blocks with pooling followed by a two-layer classifier.  Deep
    enough that the harder CIFAR-like synthetic task separates the selection
    methods, shallow enough to train in seconds on CPU.
    """

    def __init__(self, in_channels: int = 3, image_size: int = 8, num_classes: int = 10,
                 channels: tuple[int, int, int] = (16, 32, 32), hidden: int = 64,
                 seed: Optional[int] = None):
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4 (two 2x pools)")
        s = (lambda off: None) if seed is None else (lambda off: seed + off)
        c1, c2, c3 = channels
        self.conv1 = Conv2d(in_channels, c1, kernel_size=3, padding=1, seed=s(1))
        self.relu1 = ReLU()
        self.conv2 = Conv2d(c1, c2, kernel_size=3, padding=1, seed=s(2))
        self.relu2 = ReLU()
        self.pool1 = MaxPool2d(2)
        self.conv3 = Conv2d(c2, c3, kernel_size=3, padding=1, seed=s(3))
        self.relu3 = ReLU()
        self.pool2 = MaxPool2d(2)
        self.flatten = Flatten()
        feat = c3 * (image_size // 4) * (image_size // 4)
        self.fc1 = Linear(feat, hidden, seed=s(4))
        self.relu4 = ReLU()
        self.fc2 = Linear(hidden, num_classes, seed=s(5))
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.relu1(self.conv1(x))
        x = self.relu2(self.conv2(x))
        x = self.pool1(x)
        x = self.relu3(self.conv3(x))
        x = self.pool2(x)
        x = self.flatten(x)
        x = self.relu4(self.fc1(x))
        return self.fc2(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.fc2.backward(grad_output)
        grad = self.relu4.backward(grad)
        grad = self.fc1.backward(grad)
        grad = self.flatten.backward(grad)
        grad = self.pool2.backward(grad)
        grad = self.relu3.backward(grad)
        grad = self.conv3.backward(grad)
        grad = self.pool1.backward(grad)
        grad = self.relu2.backward(grad)
        grad = self.conv2.backward(grad)
        grad = self.relu1.backward(grad)
        return self.conv1.backward(grad)


def build_model(name: str, in_channels: int, image_size: int, num_classes: int,
                seed: Optional[int] = None) -> Module:
    """Factory used by the experiment harness and examples.

    ``name`` is one of ``"mlp"``, ``"mnist_cnn"``, ``"cifar_cnn"``.
    """
    name = name.lower()
    if name == "mlp":
        return MLP(in_channels * image_size * image_size, num_classes, seed=seed)
    if name == "mnist_cnn":
        return MnistCNN(in_channels, image_size, num_classes, seed=seed)
    if name == "cifar_cnn":
        return CifarCNN(in_channels, image_size, num_classes, seed=seed)
    raise ValueError(f"unknown model name: {name!r}")
