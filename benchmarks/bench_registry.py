#!/usr/bin/env python
"""Registry scale benchmark: the million-client registration/selection path.

Sweeps N ∈ {10^4, 10^5, 10^6} (configurable) over the four scaled paths this
repo ships and records ``BENCH_registry.json``:

* **registration** — vectorised Algorithm 1 (`RegistryCodebook.register_batch`)
  streamed in chunks, with the per-client Python loop (`register_many`) as the
  capped reference; the two are asserted index-identical before timing counts.
* **probability** — the vectorised eq. (6) over all N against the scalar
  per-client reference, asserted bit-identical.
* **selection** — `DubheSelector` construction + one multi-time selection at
  K = min(1000, N/10), H = 4, all on the batch path.
* **memory** — `tracemalloc` peaks: streaming registration (batch generator,
  nothing materialised) vs the materialised `register_many` path at a capped
  N, yielding the memory-reduction ratio the CI gate watches.
* **tree** — fold-depth of the streaming tree aggregator at the full N
  (flat depth is N − 1, tree depth is O(log N)), probed without crypto.
* **secure** — a real encrypted round at ``--secure-clients`` (Paillier cost
  is per-ciphertext, so the full N would take days; the capped run is the
  *same code path* streaming runs at any N): `run()` vs `run_stream()` flat
  vs tree, asserted to decrypt bit-identically, with the count-packing
  ciphertext reduction recorded.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_registry.py

CI smoke uses ``--sizes 10000`` and gates the ratios via
``benchmarks/compare_bench.py``; the nightly workflow runs the full sweep.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tracemalloc
from time import perf_counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")) and \
        os.path.join(_REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.core.config import DubheConfig  # noqa: E402  (sys.path setup above)
from repro.core.probability import (  # noqa: E402
    participation_probabilities,
    participation_probability,
)
from repro.core.registry import RegistryCodebook  # noqa: E402
from repro.core.secure import SecureRegistrationRound  # noqa: E402
from repro.core.selectors import DubheSelector  # noqa: E402
from repro.crypto.packing import (  # noqa: E402
    PackingScheme,
    StreamingTreeAggregator,
)

#: Dirichlet concentration of the synthetic non-IID population (≈ the
#: paper's skewed MNIST splits: most clients have 1–2 dominating classes).
DIRICHLET_ALPHA = 0.3

#: Cap on the per-client reference loops (register_many / scalar eq. (6)):
#: the point of the reference is the speedup ratio and the equivalence
#: assert, both of which 10^4 clients establish; looping 10^6 would just
#: make the sweep take minutes for no extra information.
LOOP_CAP = 10_000

#: Cap on the materialised-memory reference (one RegistrationResult + one
#: one-hot vector per client) — at 10^5 it already costs ~100 MB.
MATERIALIZE_CAP = 10_000

#: Documented peak-allocation ceiling for streaming registration at any N
#: (see docs/scaling.md): O(batch), so the same bound holds at N = 10^6.
STREAMING_PEAK_CEILING_MB = 64.0


def bench_config(participants: int, batch_size: int, key_size: int = 128,
                 tries: int = 4) -> DubheConfig:
    """The paper's 10-class group-1 configuration at benchmark scale."""
    return DubheConfig(
        num_classes=10, reference_set=(1, 2, 10),
        thresholds={1: 0.7, 2: 0.1, 10: 0.0},
        participants_per_round=participants, tentative_selections=tries,
        key_size=key_size, registration_batch_size=batch_size,
    )


def population(n: int, num_classes: int, seed: int) -> np.ndarray:
    """N skewed client label distributions, deterministic per (n, seed)."""
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.full(num_classes, DIRICHLET_ALPHA), size=n)


class _DepthProbe:
    """A zero-cost stand-in ciphertext: lets the tree aggregator's depth be
    measured at N = 10^6 without a single modular multiplication."""

    __slots__ = ()

    def copy(self) -> "_DepthProbe":
        return self

    def add_(self, other: "_DepthProbe") -> "_DepthProbe":
        return self


def bench_size(n: int, batch_size: int, arity: int, seed: int = 0) -> dict:
    """All plaintext-side sections of the sweep at one population size."""
    k = max(1, min(1000, n // 10))
    config = bench_config(k, batch_size)
    codebook = RegistryCodebook(config)
    distributions = population(n, config.num_classes, seed)

    # -- registration: vectorised Algorithm 1, streamed in chunks -----------
    start = perf_counter()
    batch = codebook.register_batch(distributions)
    batch_s = perf_counter() - start

    loop_clients = min(n, LOOP_CAP)
    start = perf_counter()
    loop_results = codebook.register_many(distributions[:loop_clients])
    loop_s = perf_counter() - start
    loop_indices = np.array([r.index for r in loop_results])
    if not np.array_equal(batch.indices[:loop_clients], loop_indices):
        raise AssertionError(f"register_batch diverged from register at n={n}")
    # per-client cost ratio: both averaged over >= 10^4 clients
    register_speedup = (loop_s / loop_clients) / (batch_s / n)

    # -- probability: vectorised eq. (6) over all N --------------------------
    overall = batch.overall_registry()
    start = perf_counter()
    probabilities = participation_probabilities(codebook, batch, overall, k)
    prob_vec_s = perf_counter() - start
    start = perf_counter()
    prob_ref = np.array([
        participation_probability(overall, int(i), k)
        for i in batch.indices[:loop_clients]
    ])
    prob_loop_s = perf_counter() - start
    if not np.array_equal(probabilities[:loop_clients], prob_ref):
        raise AssertionError(f"vectorised probabilities diverged at n={n}")

    # -- selection: DubheSelector end-to-end on the batch path ---------------
    start = perf_counter()
    selector = DubheSelector(distributions, config, seed=seed)
    init_s = perf_counter() - start
    start = perf_counter()
    selected = selector.select(0)
    select_s = perf_counter() - start
    if len(selected) != k:
        raise AssertionError(f"selection returned {len(selected)} != K={k}")

    # -- memory: streaming vs materialised peaks -----------------------------
    rng = np.random.default_rng(seed)
    counts = np.zeros(codebook.length)
    tracemalloc.start()
    tracemalloc.reset_peak()
    remaining = n
    while remaining:
        b = min(batch_size, remaining)
        chunk = rng.dirichlet(np.full(config.num_classes, DIRICHLET_ALPHA), size=b)
        reg = codebook.register_batch(chunk)
        counts += np.bincount(reg.indices, minlength=codebook.length)
        remaining -= b
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if counts.sum() != n:
        raise AssertionError("streaming registration lost clients")

    mat_clients = min(n, MATERIALIZE_CAP)
    tracemalloc.start()
    tracemalloc.reset_peak()
    mat_distributions = population(mat_clients, config.num_classes, seed)
    mat_results = codebook.register_many(mat_distributions)
    _ = codebook.aggregate(mat_results)
    _, mat_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del mat_results
    # reduction is only a like-for-like ratio when both run the same N
    reduction = (mat_peak / stream_peak) if mat_clients == n else None

    # -- tree fold depth at the full N (no crypto needed) --------------------
    agg = StreamingTreeAggregator(arity=arity)
    probe = _DepthProbe()
    for _ in range(n):
        agg.push(probe)
    tree_depth = agg.depth

    return {
        "n": n,
        "batch_size": batch_size,
        "num_classes": config.num_classes,
        "codebook_length": codebook.length,
        "registration": {
            "batch_s": round(batch_s, 6),
            "clients_per_s": round(n / batch_s),
            "loop_clients": loop_clients,
            "loop_s": round(loop_s, 6),
        },
        "probability": {
            "vectorized_s": round(prob_vec_s, 6),
            "loop_clients": loop_clients,
            "loop_s": round(prob_loop_s, 6),
        },
        "selection": {
            "k": k,
            "tries": config.tentative_selections,
            "init_s": round(init_s, 6),
            "select_s": round(select_s, 6),
        },
        "memory": {
            "streaming_peak_mb": round(stream_peak / 2**20, 3),
            "materialized_clients": mat_clients,
            "materialized_peak_mb": round(mat_peak / 2**20, 3),
            "reduction": round(reduction, 1) if reduction is not None else None,
        },
        "tree": {
            "arity": arity,
            "fold_depth": tree_depth,
            "flat_depth": n - 1,
            "partials": agg.partials,
        },
        "speedup": {
            "register_batch": round(register_speedup, 1),
        },
    }


def bench_secure(n_clients: int, batch_size: int, arity: int,
                 key_size: int, seed: int = 0) -> dict:
    """One real encrypted round: run() vs streaming flat vs streaming tree.

    Paillier cost scales per-ciphertext, so the encrypted section runs at a
    capped client count — the code path (chunked encrypt, streaming fold) is
    exactly what any N runs through; only wall-clock differs.
    """
    config = bench_config(max(1, n_clients // 10), batch_size,
                          key_size=key_size)
    distributions = population(n_clients, config.num_classes, seed)

    start = perf_counter()
    overall_ref, _, stats_ref = SecureRegistrationRound(
        config, packed=True, precompute_noise=True).run(distributions)
    run_s = perf_counter() - start

    start = perf_counter()
    flat = SecureRegistrationRound(
        config, packed=True, precompute_noise=True,
        aggregation="flat").run_stream(distributions)
    stream_flat_s = perf_counter() - start

    start = perf_counter()
    tree = SecureRegistrationRound(
        config, packed=True, precompute_noise=True,
        aggregation="tree", arity=arity).run_stream(distributions)
    stream_tree_s = perf_counter() - start

    for label, streamed in (("flat", flat), ("tree", tree)):
        if not np.array_equal(streamed.overall, overall_ref):
            raise AssertionError(
                f"streaming ({label}) decrypted a different overall registry")

    codebook_length = flat.registration.length
    from repro.crypto.paillier import generate_keypair
    public, _ = generate_keypair(key_size)
    default_cts = PackingScheme(public, codebook_length,
                                max_weight=n_clients).num_ciphertexts
    count_cts = PackingScheme.for_counts(public, codebook_length,
                                         max_weight=n_clients).num_ciphertexts

    return {
        "n_clients": n_clients,
        "key_size": key_size,
        "batch_size": batch_size,
        "run_s": round(run_s, 3),
        "stream_flat_s": round(stream_flat_s, 3),
        "stream_tree_s": round(stream_tree_s, 3),
        "fold_depth": {"flat": flat.fold_depth, "tree": tree.fold_depth,
                       "arity": arity},
        "num_batches": flat.num_batches,
        "ciphertexts_per_client": {"default_packing": default_cts,
                                   "count_packing": count_cts},
        "ciphertext_mb": round(stats_ref.ciphertext_bytes / 2**20, 2),
        "stream_ciphertext_mb": round(flat.stats.ciphertext_bytes / 2**20, 2),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="10000,100000,1000000",
                        help="comma-separated population sizes N")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="streaming registration chunk size")
    parser.add_argument("--arity", type=int, default=2,
                        help="tree aggregation arity")
    parser.add_argument("--secure-clients", type=int, default=1024,
                        help="client count for the real encrypted round "
                             "(0 skips the secure section)")
    parser.add_argument("--secure-key-size", type=int, default=128,
                        help="Paillier modulus bits for the secure section")
    parser.add_argument("--out",
                        default=os.path.join(_REPO_ROOT, "BENCH_registry.json"),
                        help="output JSON path")
    parser.add_argument("--min-batch-speedup", type=float, default=None,
                        help="fail (exit 1) when register_batch's per-client "
                             "speedup over the loop falls below this factor")
    parser.add_argument("--max-peak-mb", type=float,
                        default=STREAMING_PEAK_CEILING_MB,
                        help="fail (exit 1) when any streaming peak exceeds "
                             "this many MB (0 disables)")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",")]
    results = []
    for n in sizes:
        print(f"benchmarking N={n} ...", flush=True)
        row = bench_size(n, args.batch_size, args.arity)
        results.append(row)
        print(f"  register_batch {row['registration']['batch_s']:.3f}s "
              f"({row['registration']['clients_per_s']} clients/s, "
              f"{row['speedup']['register_batch']}x over the loop), "
              f"selection {row['selection']['select_s']:.3f}s at "
              f"K={row['selection']['k']}, streaming peak "
              f"{row['memory']['streaming_peak_mb']} MB, tree depth "
              f"{row['tree']['fold_depth']} vs flat {row['tree']['flat_depth']}")

    secure = None
    if args.secure_clients > 0:
        print(f"secure round at {args.secure_clients} clients, "
              f"{args.secure_key_size}-bit keys ...", flush=True)
        secure = bench_secure(args.secure_clients, args.batch_size,
                              args.arity, args.secure_key_size)
        print(f"  run {secure['run_s']}s, stream flat "
              f"{secure['stream_flat_s']}s, stream tree "
              f"{secure['stream_tree_s']}s (depth "
              f"{secure['fold_depth']['tree']} vs "
              f"{secure['fold_depth']['flat']}), bit-identical")

    payload = {
        "benchmark": "registry_scale",
        "generated_by": "benchmarks/bench_registry.py",
        "machine": {"python": platform.python_version(),
                    "platform": platform.platform()},
        "workload": "Dirichlet(0.3) 10-class population; group-1 codebook",
        "streaming_peak_ceiling_mb": STREAMING_PEAK_CEILING_MB,
        "results": results,
        "secure": secure,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if args.min_batch_speedup is not None:
        achieved = results[0]["speedup"]["register_batch"]
        if achieved < args.min_batch_speedup:
            print(f"FAIL: register_batch speedup {achieved}x < required "
                  f"{args.min_batch_speedup}x", file=sys.stderr)
            failed = True
        else:
            print(f"OK: register_batch speedup {achieved}x >= "
                  f"{args.min_batch_speedup}x")
    if args.max_peak_mb:
        worst = max(row["memory"]["streaming_peak_mb"] for row in results)
        if worst > args.max_peak_mb:
            print(f"FAIL: streaming peak {worst} MB > ceiling "
                  f"{args.max_peak_mb} MB", file=sys.stderr)
            failed = True
        else:
            print(f"OK: streaming peaks <= {args.max_peak_mb} MB "
                  f"(worst {worst} MB)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
