"""Vectorized cohort execution: train K clients as one batched tensor program.

The sequential federated round trains the K selected clients one-by-one, each
with its own model clone and Python-level batch loop.  This module provides
the FedJAX-vmap-style alternative in pure NumPy: the template model's
parameters are broadcast to a leading *client axis*, client mini-batches are
stacked into ``(K, B, …)`` arrays, and every local SGD/Adam step for all K
clients runs as a handful of batched ``matmul`` ops instead of K Python
loops.

Numerical contract
------------------
Every client occupies an independent slice of every batched op, and each
batched kernel mirrors the arithmetic of its sequential counterpart
slice-for-slice (same reduction axes, same dtype promotion, same elementwise
formulas).  Per-client results therefore match the sequential back-end to
floating-point reproduction accuracy (the test-suite asserts ≤ 1e-10), so
selectors, figures and secure paths behave identically under either
back-end.

Dropout note: in the sequential back-end every client trains a *fresh*
factory-built model, so all K per-client dropout RNGs start from the same
seed and draw identical mask sequences.  :class:`BatchedDropout` reproduces
exactly that by drawing one ``(B, …)`` mask per step from the template
layer's RNG and broadcasting it across the client axis.

Extending
---------
Unknown layers/models raise :class:`UnvectorizableModelError` (callers such
as :class:`repro.federated.LocalUpdateExecutor` fall back to the sequential
back-end).  Register support for custom types with
:func:`register_layer_vectorizer` / :func:`register_cohort_chain`.  Custom
batched layers must follow the assign-not-accumulate gradient contract of
:meth:`BatchedLayer.backward` (unlike sequential layers, which ``+=`` into
grads): the training loop skips per-step ``zero_grad`` because every
built-in batched backward overwrites its parameter grads.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .conv import AvgPool2d, Conv2d, MaxPool2d, col2im, im2col
from .layers import Dropout, Flatten, Linear, ReLU, Sequential
from .models import MLP, CifarCNN, MnistCNN
from .module import Module, Parameter

__all__ = [
    "BatchedAdam",
    "BatchedModel",
    "BatchedParameter",
    "BatchedSGD",
    "UnvectorizableModelError",
    "batched_cross_entropy",
    "register_cohort_chain",
    "register_layer_vectorizer",
]


class UnvectorizableModelError(TypeError):
    """The model/layer has no registered batched (cohort) implementation."""


class BatchedParameter:
    """A stack of K clients' copies of one parameter: ``(K, *shape)`` value + grad.

    Freshly constructed instances hold a read-only broadcast view (every
    client aliasing the template value) and a lazily-allocated grad;
    :meth:`BatchedModel._repack_flat` rebinds both to writable contiguous
    views into the model's flat pools before any training step runs.

    Example
    -------
    >>> import numpy as np
    >>> stacked = BatchedParameter(np.zeros((3, 4, 2)))  # 3 clients
    >>> stacked.shape, stacked.size
    ((3, 4, 2), 24)
    """

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self._grad: Optional[np.ndarray] = None

    @property
    def grad(self) -> np.ndarray:
        """The stacked gradient array (allocated lazily, same shape as value)."""
        if self._grad is None:
            self._grad = np.zeros_like(self.value)
        return self._grad

    @grad.setter
    def grad(self, value: np.ndarray) -> None:
        self._grad = value

    @property
    def shape(self) -> tuple[int, ...]:
        """Full stacked shape ``(K, *parameter_shape)``."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Total scalars across all client copies."""
        return self.value.size

    def zero_grad(self) -> None:
        """Reset the stacked gradient to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchedParameter(clients={self.value.shape[0]}, shape={self.value.shape[1:]})"


def _stack_parameter(param: Parameter, num_clients: int) -> BatchedParameter:
    """Broadcast one template parameter to a ``(K, *shape)`` stack (zero-copy)."""
    return BatchedParameter(
        np.broadcast_to(param.value, (num_clients,) + param.value.shape)
    )


# -- batched layers ------------------------------------------------------------


class BatchedLayer:
    """Base class of batched layers: forward/backward over ``(K, B, …)`` inputs."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients, *assigning* (not accumulating) parameter grads.

        Contract — note this differs from the sequential layers' ``+=``
        convention: batched backward runs exactly once per optimisation step
        and must *overwrite* each ``BatchedParameter.grad`` (e.g. via
        ``np.matmul(..., out=p.grad)``).  The cohort training loop relies on
        this to skip the per-step ``zero_grad`` pass; a custom layer that
        accumulates instead would silently sum gradients across steps.
        """
        raise NotImplementedError

    def param_pairs(self) -> list[tuple[Parameter, BatchedParameter]]:
        """``(template parameter, batched parameter)`` pairs of this layer."""
        return []

    def set_training(self, training: bool) -> None:
        """Switch train/eval mode (wrappers propagate to wrapped layers)."""
        self.training = training

    def rebind(self, layer: Module) -> bool:
        """Adopt a fresh template *layer* for a new round without reallocation.

        Round-persistent workspaces reuse one batched program across rounds;
        each round the executor builds a fresh template model (exactly what
        every sequential client receives) and rebinds it into the existing
        stacks.  A layer returns ``True`` when *layer* is structurally
        identical to the one it was built from — after adopting whatever
        per-round state matters (e.g. the dropout RNG, which must restart
        from the factory-fresh stream every round to mirror sequential
        clients).  ``False`` forces the caller to rebuild the whole batched
        model; this conservative default covers custom registered layers.
        """
        return False


class BatchedLinear(BatchedLayer):
    """Per-client ``y_k = x_k W_k^T + b_k`` as one batched matmul."""

    def __init__(self, layer: Linear, num_clients: int):
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self.weight = _stack_parameter(layer.weight, num_clients)
        self.bias = None if layer.bias is None else _stack_parameter(layer.bias, num_clients)
        self._template = layer
        self._input: Optional[np.ndarray] = None

    def param_pairs(self) -> list[tuple[Parameter, BatchedParameter]]:
        pairs = [(self._template.weight, self.weight)]
        if self.bias is not None:
            pairs.append((self._template.bias, self.bias))
        return pairs

    def rebind(self, layer: Module) -> bool:
        if (not isinstance(layer, Linear)
                or layer.in_features != self.in_features
                or layer.out_features != self.out_features
                or (layer.bias is None) != (self.bias is None)):
            return False
        self._template = layer
        self._input = None
        return True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"BatchedLinear expected input of shape (K, B, {self.in_features}), "
                f"got {x.shape}"
            )
        self._input = x
        out = np.matmul(x, np.swapaxes(self.weight.value, 1, 2))
        if self.bias is not None:
            out += self.bias.value[:, None, :]  # in place: matmul result is fresh
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        # single-shot assignment (cohort backward runs once per step): writing
        # straight into the contiguous grad views skips the zero-fill pass,
        # the matmul temporary and the `+=` read that accumulation would cost
        np.matmul(np.swapaxes(grad_output, 1, 2), x, out=self.weight.grad)
        if self.bias is not None:
            np.sum(grad_output, axis=1, out=self.bias.grad)
        return np.matmul(grad_output, self.weight.value)


class BatchedConv2d(BatchedLayer):
    """Per-client 2-D convolution: shared im2col, one batched matmul."""

    def __init__(self, layer: Conv2d, num_clients: int):
        self.in_channels = layer.in_channels
        self.out_channels = layer.out_channels
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.weight = _stack_parameter(layer.weight, num_clients)
        self.bias = None if layer.bias is None else _stack_parameter(layer.bias, num_clients)
        self._template = layer
        self._cache: Optional[tuple] = None

    def param_pairs(self) -> list[tuple[Parameter, BatchedParameter]]:
        pairs = [(self._template.weight, self.weight)]
        if self.bias is not None:
            pairs.append((self._template.bias, self.bias))
        return pairs

    def rebind(self, layer: Module) -> bool:
        if (not isinstance(layer, Conv2d)
                or layer.in_channels != self.in_channels
                or layer.out_channels != self.out_channels
                or layer.kernel_size != self.kernel_size
                or layer.stride != self.stride
                or layer.padding != self.padding
                or (layer.bias is None) != (self.bias is None)):
            return False
        self._template = layer
        self._cache = None
        return True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"BatchedConv2d expected (K, B, {self.in_channels}, H, W), got {x.shape}"
            )
        k, b = x.shape[:2]
        folded = x.reshape((k * b,) + x.shape[2:])
        cols, out_h, out_w = im2col(folded, self.kernel_size, self.stride, self.padding)
        cols = cols.reshape(k, b * out_h * out_w, -1)
        w_flat = self.weight.value.reshape(k, self.out_channels, -1)
        out = np.matmul(cols, np.swapaxes(w_flat, 1, 2))
        if self.bias is not None:
            out = out + self.bias.value[:, None, :]
        out = out.reshape(k, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        k, b, _, out_h, out_w = grad_output.shape
        grad_flat = grad_output.transpose(0, 1, 3, 4, 2).reshape(
            k, b * out_h * out_w, self.out_channels
        )
        w_flat = self.weight.value.reshape(k, self.out_channels, -1)
        # single-shot assignment into the contiguous grad views (see BatchedLinear)
        np.matmul(np.swapaxes(grad_flat, 1, 2), cols,
                  out=self.weight.grad.reshape(k, self.out_channels, -1))
        if self.bias is not None:
            np.sum(grad_flat, axis=1, out=self.bias.grad)
        grad_cols = np.matmul(grad_flat, w_flat)
        folded_shape = (k * b,) + x_shape[2:]
        grad_x = col2im(grad_cols.reshape(k * b * out_h * out_w, -1), folded_shape,
                        self.kernel_size, self.stride, self.padding)
        return grad_x.reshape(x_shape)


class BatchedDropout(BatchedLayer):
    """Inverted dropout with one per-step mask shared across the client axis.

    Matches the sequential back-end, where every client's factory-fresh model
    seeds its dropout RNG identically and therefore draws the same masks.
    An *unseeded* active dropout layer has no such shared stream — sequential
    clients would draw independent masks — so it refuses vectorization and
    the executor falls back to the sequential loop.
    """

    def __init__(self, layer: Dropout, num_clients: int):
        if layer.p > 0 and getattr(layer, "seed", None) is None:
            raise UnvectorizableModelError(
                "Dropout without a deterministic seed draws independent masks "
                "per sequential client; the cohort back-end cannot reproduce "
                "that — construct the layer with an explicit seed"
            )
        self.p = layer.p
        self.rng = layer.rng  # the template model is factory-fresh, like each client's
        self._mask: Optional[np.ndarray] = None

    def rebind(self, layer: Module) -> bool:
        # adopting the fresh template's RNG restarts the mask stream exactly
        # like the factory-fresh models every sequential client trains
        if not isinstance(layer, Dropout) or (
                layer.p > 0 and getattr(layer, "seed", None) is None):
            return False
        self.p = layer.p
        self.rng = layer.rng
        self._mask = None
        return True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape[1:]) < keep) / keep
        # masks are drawn in float64 (matching the sequential layer's RNG
        # arithmetic exactly) and only cast when the cohort runs float32
        self._mask = mask if mask.dtype == x.dtype else mask.astype(x.dtype)
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class FoldedLayer(BatchedLayer):
    """Run a parameter-free per-sample layer with (K, B) folded into one batch.

    Exact for any layer whose forward/backward treat samples independently
    (ReLU, Flatten, max/avg pooling): folding the client axis into the batch
    axis leaves every per-sample computation untouched.
    """

    def __init__(self, layer: Module, num_clients: int):
        self.inner = layer

    def rebind(self, layer: Module) -> bool:
        if type(layer) is not type(self.inner):
            return False
        layer.training = self.inner.training
        self.inner = layer
        return True

    def set_training(self, training: bool) -> None:
        self.training = training
        self.inner.training = training

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, b = x.shape[:2]
        out = self.inner.forward(x.reshape((k * b,) + x.shape[2:]))
        return out.reshape((k, b) + out.shape[1:])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        k, b = grad_output.shape[:2]
        grad = self.inner.backward(grad_output.reshape((k * b,) + grad_output.shape[2:]))
        return grad.reshape((k, b) + grad.shape[1:])


class BatchedSequential(BatchedLayer):
    """A chain of batched layers applied in order."""

    def __init__(self, layer: Sequential, num_clients: int):
        self.layers = [vectorize_layer(child, num_clients) for child in layer.layers]

    def rebind(self, layer: Module) -> bool:
        if not isinstance(layer, Sequential) or len(layer.layers) != len(self.layers):
            return False
        return all(child.rebind(sub)
                   for child, sub in zip(self.layers, layer.layers))

    def param_pairs(self) -> list[tuple[Parameter, BatchedParameter]]:
        return [pair for child in self.layers for pair in child.param_pairs()]

    def set_training(self, training: bool) -> None:
        self.training = training
        for child in self.layers:
            child.set_training(training)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output


# -- vectorizer registries ------------------------------------------------------

_LAYER_VECTORIZERS: dict[type, Callable[[Module, int], BatchedLayer]] = {}

#: maps a model type to a function returning its layers as a flat forward chain
_MODEL_CHAINS: dict[type, Callable[[Module], list[Module]]] = {}


def register_layer_vectorizer(layer_type: type,
                              factory: Callable[[Module, int], BatchedLayer]) -> None:
    """Register a batched implementation for a layer type (subclasses inherit it).

    Example
    -------
    >>> from repro.nn.layers import ReLU
    >>> class MyReLU(ReLU):
    ...     pass
    >>> register_layer_vectorizer(MyReLU, FoldedLayer)  # subclasses inherit
    >>> type(vectorize_layer(MyReLU(), num_clients=4)).__name__
    'FoldedLayer'
    """
    _LAYER_VECTORIZERS[layer_type] = factory


def register_cohort_chain(model_type: type,
                          chain: Callable[[Module], list[Module]]) -> None:
    """Register how a model type decomposes into a flat chain of layers.

    Only models whose forward pass is a pure chain of registered layers can
    be vectorized; the chain function must list the layers in forward order.

    Example
    -------
    >>> from repro.nn.layers import Linear, ReLU, Sequential
    >>> from repro.nn.module import Module
    >>> class TwoLayer(Module):
    ...     def __init__(self):
    ...         self.a, self.r, self.b = Linear(4, 8), ReLU(), Linear(8, 2)
    ...     def forward(self, x):
    ...         return self.b(self.r(self.a(x)))
    >>> register_cohort_chain(TwoLayer, lambda m: [m.a, m.r, m.b])
    >>> BatchedModel(TwoLayer(), num_clients=3).num_clients
    3
    """
    _MODEL_CHAINS[model_type] = chain


def vectorize_layer(layer: Module, num_clients: int) -> BatchedLayer:
    """The batched counterpart of *layer* for a K-client cohort."""
    for cls in type(layer).__mro__:
        factory = _LAYER_VECTORIZERS.get(cls)
        if factory is not None:
            return factory(layer, num_clients)
    raise UnvectorizableModelError(
        f"no batched implementation registered for layer type {type(layer).__name__}"
    )


register_layer_vectorizer(Linear, BatchedLinear)
register_layer_vectorizer(Conv2d, BatchedConv2d)
register_layer_vectorizer(Dropout, BatchedDropout)
register_layer_vectorizer(ReLU, FoldedLayer)
register_layer_vectorizer(Flatten, FoldedLayer)
register_layer_vectorizer(MaxPool2d, FoldedLayer)
register_layer_vectorizer(AvgPool2d, FoldedLayer)
register_layer_vectorizer(Sequential, BatchedSequential)

register_cohort_chain(Sequential, lambda m: list(m.layers))
register_cohort_chain(MLP, lambda m: list(m.net.layers))
register_cohort_chain(MnistCNN, lambda m: [
    m.conv1, m.relu1, m.conv2, m.relu2, m.pool, m.flatten,
    m.fc1, m.relu3, m.dropout, m.fc2,
])
register_cohort_chain(CifarCNN, lambda m: [
    m.conv1, m.relu1, m.conv2, m.relu2, m.pool1, m.conv3, m.relu3, m.pool2,
    m.flatten, m.fc1, m.relu4, m.fc2,
])


def _resolve_chain(model: Module) -> list[Module]:
    for cls in type(model).__mro__:
        chain = _MODEL_CHAINS.get(cls)
        if chain is not None:
            return chain(model)
    raise UnvectorizableModelError(
        f"no cohort chain registered for model type {type(model).__name__}; "
        "register one with repro.nn.batched.register_cohort_chain"
    )


# -- the batched model -----------------------------------------------------------


class BatchedModel:
    """K clients' models stacked into one tensor program.

    Parameters live as ``(K, *shape)`` arrays; :meth:`forward` /
    :meth:`backward` run all K clients' passes at once on ``(K, B, …)``
    mini-batches.  Because :class:`BatchedParameter` exposes the same
    ``value`` / ``grad`` / ``zero_grad`` surface as :class:`Parameter` and
    every optimiser update is elementwise, the *standard* ``Adam`` / ``SGD``
    optimisers from :mod:`repro.nn.optim` work unchanged — the client axis is
    transparent to them, which is exactly what makes them the batched
    optimisers.

    The *template* must be a fresh model (e.g. straight from the server's
    model factory): its layer structure defines the program and its dropout
    RNG state stands in for every client's.

    ``dtype`` selects the precision of the flat value/grad pools (and
    therefore of every batched kernel).  ``float64`` — the default — keeps
    the bit-identical contract above; ``float32`` is the opt-in fast path:
    half the memory traffic through the pools, with per-client results
    matching the float64 reference only to single-precision tolerance.

    Example
    -------
    >>> import numpy as np
    >>> from repro.nn.models import MLP
    >>> model = BatchedModel(MLP(4, 2, hidden=(3,), seed=0), num_clients=5)
    >>> logits = model.forward(np.zeros((5, 8, 4)))  # (K, B, features)
    >>> logits.shape
    (5, 8, 2)
    >>> model.stacked_state()["net.layers.1.weight"].shape
    (5, 3, 4)
    """

    def __init__(self, template: Module, num_clients: int,
                 dtype: "str | np.dtype" = np.float64):
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float64 or float32, got {self.dtype}")
        self.template = template
        self.num_clients = num_clients
        chain = _resolve_chain(template)
        self.layers = [vectorize_layer(layer, num_clients) for layer in chain]
        mapping = {id(tp): bp for layer in self.layers for tp, bp in layer.param_pairs()}
        self._named: list[tuple[str, BatchedParameter]] = []
        for name, param in template.named_parameters():
            batched = mapping.get(id(param))
            if batched is None:
                raise UnvectorizableModelError(
                    f"parameter {name!r} of {type(template).__name__} is not covered "
                    "by its cohort chain"
                )
            self._named.append((name, batched))
        self.training = True
        self._repack_flat()

    def rebind(self, template: Module) -> bool:
        """Adopt a fresh *template* for a new round, reusing every pool.

        The round-persistent workspace calls this instead of rebuilding the
        batched program: when *template* (a factory-fresh model, exactly what
        each sequential client would train) is structurally identical —
        same chain, same layer geometry, same parameter names and shapes —
        the existing flat pools and layer stacks are kept and only per-round
        template state (dropout RNG streams, template references) is
        adopted.  Returns ``False`` when the structures differ, in which
        case the caller must construct a new :class:`BatchedModel`.
        Parameter *values* are not touched; the caller loads the round's
        global state with :meth:`load_state_dict_broadcast` as usual.
        """
        try:
            chain = _resolve_chain(template)
        except UnvectorizableModelError:
            return False
        if len(chain) != len(self.layers):
            return False
        if not all(batched.rebind(layer)
                   for batched, layer in zip(self.layers, chain)):
            return False
        named = list(template.named_parameters())
        if len(named) != len(self._named):
            return False
        for (name, param), (own_name, bp) in zip(named, self._named):
            if name != own_name or param.value.shape != bp.value.shape[1:]:
                return False
        self.template = template
        return True

    def _repack_flat(self) -> None:
        """Repack every parameter stack as a view into one flat 1-D pool.

        Layout is param-major — each parameter's whole ``(K, *shape)`` stack
        occupies one contiguous segment — so per-layer views stay contiguous
        (fast matmul accumulation) while the fused cohort optimisers
        (:class:`BatchedAdam` / :class:`BatchedSGD`) update the entire cohort
        with a handful of whole-pool array ops instead of per-parameter
        Python loops.  Elementwise updates are oblivious to how elements are
        grouped, so this changes no numerics.
        """
        total = sum(bp.value.size for _, bp in self._named)
        self.flat_values = np.zeros(total, dtype=self.dtype)
        self.flat_grads = np.zeros(total, dtype=self.dtype)
        offset = 0
        repacked: set[int] = set()
        for _, bp in self._named:
            if id(bp) in repacked:  # a parameter shared under two names
                continue
            repacked.add(id(bp))
            size = bp.value.size
            value_view = self.flat_values[offset : offset + size].reshape(bp.value.shape)
            grad_view = self.flat_grads[offset : offset + size].reshape(bp.value.shape)
            value_view[...] = bp.value
            bp.value = value_view
            bp.grad = grad_view
            offset += size

    # -- forward / backward ---------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """All K clients' forward passes over one ``(K, B, …)`` mini-batch."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through every layer, assigning parameter grads."""
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    # -- training mode --------------------------------------------------------

    def train(self) -> "BatchedModel":
        """Put the whole batched program into training mode."""
        self.training = True
        for layer in self.layers:
            layer.set_training(True)
        return self

    def eval(self) -> "BatchedModel":
        """Put the whole batched program into evaluation mode."""
        self.training = False
        for layer in self.layers:
            layer.set_training(False)
        return self

    # -- parameters -----------------------------------------------------------

    def named_parameters(self) -> list[tuple[str, BatchedParameter]]:
        """``(template name, batched parameter)`` pairs in template order."""
        return list(self._named)

    def parameters(self) -> list[BatchedParameter]:
        """All batched parameters (in template order)."""
        return [bp for _, bp in self._named]

    def zero_grad(self) -> None:
        """Zero the whole flat gradient pool in place."""
        self.flat_grads.fill(0.0)

    # -- state ----------------------------------------------------------------

    def load_state_dict_broadcast(self, state: dict[str, np.ndarray]) -> None:
        """Broadcast one (global) state dict to every client slice."""
        own = {name for name, _ in self._named}
        missing = own - set(state)
        unexpected = set(state) - own
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, bp in self._named:
            value = np.asarray(state[name], dtype=self.dtype)
            if value.shape != bp.value.shape[1:]:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {bp.value.shape[1:]}"
                )
            bp.value[...] = value[None]

    def stacked_state(self) -> dict[str, np.ndarray]:
        """Every parameter's ``(K, *shape)`` stack, keyed by template name."""
        return {name: bp.value for name, bp in self._named}

    def state_dicts(self) -> list[dict[str, np.ndarray]]:
        """Zero-copy per-client state dicts (views into the stacked arrays)."""
        return [
            {name: bp.value[k] for name, bp in self._named}
            for k in range(self.num_clients)
        ]

    def mean_state(self) -> dict[str, np.ndarray]:
        """Server aggregation in one op: the mean over the client axis."""
        return {name: bp.value.mean(axis=0) for name, bp in self._named}

    def num_parameters(self) -> int:
        """Total scalar parameters across the whole cohort."""
        return int(sum(p.size for p in self.parameters()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchedModel({type(self.template).__name__}, "
                f"clients={self.num_clients})")


# -- fused cohort optimisers ------------------------------------------------------
#
# The sequential optimisers loop over parameters and allocate ~7 temporaries
# per parameter per step; at cohort scale that Python/allocator overhead
# dominates the round.  These fused variants run the *identical* sequence of
# elementwise operations (same order, same scalar factors — hence bit-identical
# results) on the model's flat 1-D pools, using preallocated scratch buffers
# and `out=` everywhere.  Updates walk the pool in cache-sized blocks so all
# ~12 passes of a step hit L2 instead of DRAM; elementwise ops are
# independent per element, so blocking changes no numerics.

#: elements per optimiser block (~128 KiB of float64 per buffer)
_OPT_BLOCK = 16384


class BatchedSGD:
    """SGD over the cohort's flat parameter pool (optional momentum/decay).

    Bit-for-bit equivalent to running :class:`repro.nn.optim.SGD` on each
    client slice independently.

    Example
    -------
    >>> from repro.nn.models import MLP
    >>> model = BatchedModel(MLP(4, 2, hidden=(3,), seed=0), num_clients=2)
    >>> optimizer = BatchedSGD(model, lr=0.1, momentum=0.9)
    >>> optimizer.step()  # one fused update for both clients
    """

    def __init__(self, model: BatchedModel, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._values = model.flat_values
        self._grads = model.flat_grads
        self._velocity = np.zeros_like(self._values) if momentum else None
        self._scratch = np.empty(min(self._values.size, _OPT_BLOCK),
                                 dtype=self._values.dtype)

    def zero_grad(self) -> None:
        """Zero the model's flat gradient pool in place."""
        self._grads.fill(0.0)

    def reset(self) -> None:
        """Forget all optimiser state (fresh-optimiser semantics, no realloc).

        Round-persistent workspaces keep one optimiser alive across rounds;
        calling this at the top of a round makes it indistinguishable from a
        newly constructed one — which is what every sequential client gets.
        """
        if self._velocity is not None:
            self._velocity.fill(0.0)

    def step(self) -> None:
        """One fused SGD update over the whole cohort pool (cache-blocked)."""
        total = self._values.size
        for start in range(0, total, _OPT_BLOCK):
            block = slice(start, min(start + _OPT_BLOCK, total))
            values = self._values[block]
            s = self._scratch[: values.size]
            if self.weight_decay:
                np.multiply(values, self.weight_decay, out=s)
                s += self._grads[block]  # == grad + weight_decay * value
                grad = s
            else:
                grad = self._grads[block]
            if self.momentum:
                velocity = self._velocity[block]
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            if update is s:
                s *= self.lr
            else:
                np.multiply(update, self.lr, out=s)
            values -= s  # == p -= lr * update


class BatchedAdam:
    """Adam over the cohort's flat parameter pool — the paper's optimiser.

    One fused update for all K clients per step; every element sees the exact
    operation sequence of :class:`repro.nn.optim.Adam`, so per-client results
    are bit-identical to the sequential back-end.

    Example
    -------
    >>> from repro.nn.models import MLP
    >>> model = BatchedModel(MLP(4, 2, hidden=(3,), seed=0), num_clients=2)
    >>> optimizer = BatchedAdam(model, lr=1e-4)
    >>> optimizer.step()
    >>> optimizer.reset()  # fresh-optimiser semantics, no reallocation
    """

    def __init__(self, model: BatchedModel, lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.model = model
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._values = model.flat_values
        self._grads = model.flat_grads
        self._m = np.zeros_like(self._values)
        self._v = np.zeros_like(self._values)
        scratch = min(self._values.size, _OPT_BLOCK)
        self._s1 = np.empty(scratch, dtype=self._values.dtype)
        self._s2 = np.empty(scratch, dtype=self._values.dtype)
        self._t = 0

    def zero_grad(self) -> None:
        """Zero the model's flat gradient pool in place."""
        self._grads.fill(0.0)

    def reset(self) -> None:
        """Forget all optimiser state (fresh-optimiser semantics, no realloc).

        Zeroes the first/second-moment pools and the step counter in place so
        a round-persistent optimiser behaves exactly like the fresh ``Adam``
        every sequential client constructs at the top of its local update.
        """
        self._m.fill(0.0)
        self._v.fill(0.0)
        self._t = 0

    def step(self) -> None:
        """One fused Adam update over the whole cohort pool (cache-blocked)."""
        self._t += 1
        bias1 = 1 - self.beta1**self._t
        bias2 = 1 - self.beta2**self._t
        total = self._values.size
        for start in range(0, total, _OPT_BLOCK):
            block = slice(start, min(start + _OPT_BLOCK, total))
            values = self._values[block]
            m = self._m[block]
            v = self._v[block]
            s1 = self._s1[: values.size]
            s2 = self._s2[: values.size]
            if self.weight_decay:
                np.multiply(values, self.weight_decay, out=s2)
                s2 += self._grads[block]  # == grad + weight_decay * value
                grad = s2
            else:
                grad = self._grads[block]
            m *= self.beta1
            np.multiply(grad, 1 - self.beta1, out=s1)
            m += s1  # == m += (1 - beta1) * grad
            v *= self.beta2
            np.multiply(grad, 1 - self.beta2, out=s1)
            s1 *= grad
            v += s1  # == v += (1 - beta2) * grad * grad
            np.divide(m, bias1, out=s1)  # m_hat
            s1 *= self.lr  # lr * m_hat first: `lr * m_hat / (...)` binds left-to-right
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 /= s2
            values -= s1  # == p -= lr * m_hat / (sqrt(v_hat) + eps)


# -- batched loss ----------------------------------------------------------------


def batched_cross_entropy(logits: np.ndarray, targets: np.ndarray,
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Per-client mean cross-entropy over a ``(K, B, C)`` logits cohort.

    Returns ``(losses, grad_logits)`` where ``losses`` has shape ``(K,)`` and
    ``grad_logits`` is ready for :meth:`BatchedModel.backward`.  Slice ``k``
    reproduces ``CrossEntropyLoss()(logits[k], targets[k])`` exactly (same
    log-sum-exp arithmetic, same mean normalisation).

    Example
    -------
    >>> import numpy as np
    >>> logits = np.zeros((2, 4, 3))  # K=2 clients, B=4, C=3: uniform
    >>> losses, grad = batched_cross_entropy(logits, np.zeros((2, 4), dtype=int))
    >>> np.allclose(losses, np.log(3)), grad.shape
    (True, (2, 4, 3))
    """
    logits = np.asarray(logits)
    if logits.dtype != np.float32:  # float32 cohorts keep their precision
        logits = logits.astype(np.float64, copy=False)
    targets = np.asarray(targets, dtype=int)
    if logits.ndim != 3:
        raise ValueError(f"logits must be 3-D (K, B, C), got shape {logits.shape}")
    k, b, num_classes = logits.shape
    if targets.shape != (k, b):
        raise ValueError(f"targets must have shape ({k}, {b}), got {targets.shape}")
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("targets out of range")
    shifted = logits - logits.max(axis=2, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=2, keepdims=True))
    probs = np.exp(log_probs)
    clients = np.arange(k)[:, None]
    samples = np.arange(b)[None, :]
    picked = log_probs[clients, samples, targets]
    losses = -picked.sum(axis=1) / b
    grad = probs.copy()
    grad[clients, samples, targets] -= 1.0
    grad /= b
    return losses, grad
